//===- analysis/AbsInt.h - Abstract interpretation over QUIL ---*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A forward abstract-interpretation framework over lowered QUIL chains.
/// Where ConstRange.cpp used to ask "does this operand fold to a
/// literal?", this framework propagates *facts* — integer intervals,
/// nonzero-ness, constant doubles, three-valued booleans, and per-operator
/// cardinality bounds — through both the operator chain and the expression
/// trees inside each operator. Chains are straight-line (no loops in the
/// operator string), so the transfer functions run in one forward pass; a
/// widening operator is still provided for the interval domain because the
/// unit tests pin its int64-boundary behavior and future fixpoint clients
/// (nested-fold accumulators) will need it.
///
/// The facts feed three consumers:
///   * analysis::runConstRange — the ST3xxx lints, now derived from
///     cardinality/predicate facts instead of syntactic constant folding;
///   * quil::rewriteChain — the certificate-gated plan rewriter
///     (dead-operator elimination, predicate dropping/reordering,
///     Take/Skip folding);
///   * trap elision — a division site whose divisor interval excludes 0
///     (and cannot hit the INT64_MIN / -1 overflow corner) is marked
///     divSafe() so codegen emits plain `/` instead of rt::ckdiv.
///
/// Soundness conventions:
///   * Interval arithmetic never wraps: any transfer whose exact result
///     would overflow int64 saturates to the full interval (top), so a
///     derived bound is always a true bound on the runtime value.
///   * Cardinality intervals over-approximate the number of elements an
///     operator can observe; INT64_MAX as an upper bound means
///     "unbounded".
///   * meet() returns nullopt for an empty intersection — the caller
///     learns the refined path is infeasible (e.g. a predicate that can
///     never be true for any reachable element).
///
//===----------------------------------------------------------------------===//

#ifndef STENO_ANALYSIS_ABSINT_H
#define STENO_ANALYSIS_ABSINT_H

#include "analysis/Diagnostics.h"
#include "expr/Expr.h"
#include "expr/Lambda.h"
#include "quil/Quil.h"

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace steno {
namespace analysis {
namespace absint {

/// A non-empty inclusive int64 interval [Lo, Hi]. The empty interval is
/// not representable; operations that would produce it (meet) signal via
/// std::optional instead.
struct Interval {
  std::int64_t Lo = INT64_MIN;
  std::int64_t Hi = INT64_MAX;

  static Interval full() { return Interval(); }
  static Interval constant(std::int64_t V) { return Interval{V, V}; }
  static Interval of(std::int64_t Lo, std::int64_t Hi) {
    return Interval{Lo, Hi};
  }
  /// The cardinality top: [0, unbounded].
  static Interval card() { return Interval{0, INT64_MAX}; }

  bool isFull() const { return Lo == INT64_MIN && Hi == INT64_MAX; }
  bool isConst() const { return Lo == Hi; }
  bool contains(std::int64_t V) const { return Lo <= V && V <= Hi; }
  bool excludesZero() const { return Lo > 0 || Hi < 0; }

  friend bool operator==(const Interval &A, const Interval &B) {
    return A.Lo == B.Lo && A.Hi == B.Hi;
  }
  friend bool operator!=(const Interval &A, const Interval &B) {
    return !(A == B);
  }

  /// Convex hull (the lattice join).
  static Interval join(const Interval &A, const Interval &B);
  /// Intersection; nullopt when empty (infeasible).
  static std::optional<Interval> meet(const Interval &A, const Interval &B);
  /// Standard interval widening: a bound that moved since \p Prev is
  /// dropped to the corresponding int64 extreme.
  static Interval widen(const Interval &Prev, const Interval &Next);

  // Transfer functions. Every one saturates to full() when the exact
  // result could overflow int64 (wrapping would make the bounds lies).
  static Interval add(const Interval &A, const Interval &B);
  static Interval sub(const Interval &A, const Interval &B);
  static Interval neg(const Interval &A);
  static Interval mul(const Interval &A, const Interval &B);
  /// C++ truncating division. Returns full() when \p B contains 0 (the
  /// trap analysis handles that case separately) or the INT64_MIN / -1
  /// corner is reachable.
  static Interval div(const Interval &A, const Interval &B);
  /// C++ remainder; full() when \p B contains 0.
  static Interval rem(const Interval &A, const Interval &B);
  static Interval absI(const Interval &A);
  static Interval minI(const Interval &A, const Interval &B);
  static Interval maxI(const Interval &A, const Interval &B);

  std::string str() const;
};

/// Three-valued boolean.
enum class Tri { False, True, Unknown };

inline Tri triNot(Tri T) {
  return T == Tri::Unknown ? Tri::Unknown
                           : (T == Tri::True ? Tri::False : Tri::True);
}

/// An abstract value: what the framework knows about one expression or
/// one element slot.
struct AbsVal {
  enum class Kind { Top, Int, Bool, Dbl };

  Kind K = Kind::Top;
  /// Int payload.
  Interval I = Interval::full();
  /// Int payload: proven nonzero even when I still spans 0 (e.g. learned
  /// from an `x != 0` refinement).
  bool NonZero = false;
  /// Bool payload.
  Tri B = Tri::Unknown;
  /// Dbl payload: constant value when HasD.
  bool HasD = false;
  double D = 0.0;

  static AbsVal top() { return AbsVal(); }
  /// Typed top for a lambda parameter / element slot.
  static AbsVal topFor(const expr::TypeRef &Ty);
  static AbsVal fromInterval(Interval IV, bool NonZeroFlag = false) {
    AbsVal V;
    V.K = Kind::Int;
    V.I = IV;
    V.NonZero = NonZeroFlag || IV.excludesZero();
    return V;
  }
  static AbsVal fromInt(std::int64_t C) {
    return fromInterval(Interval::constant(C));
  }
  static AbsVal fromTri(Tri T) {
    AbsVal V;
    V.K = Kind::Bool;
    V.B = T;
    return V;
  }
  static AbsVal fromBool(bool B) {
    return fromTri(B ? Tri::True : Tri::False);
  }
  static AbsVal fromDouble(double C) {
    AbsVal V;
    V.K = Kind::Dbl;
    V.HasD = true;
    V.D = C;
    return V;
  }
  static AbsVal unknownDouble() {
    AbsVal V;
    V.K = Kind::Dbl;
    return V;
  }

  bool isInt() const { return K == Kind::Int; }
  bool knownNonZero() const {
    return K == Kind::Int && (NonZero || I.excludesZero());
  }
  std::optional<std::int64_t> constInt() const {
    if (K == Kind::Int && I.isConst())
      return I.Lo;
    return std::nullopt;
  }

  static AbsVal join(const AbsVal &A, const AbsVal &B);

  std::string str() const;
};

/// Abstract environment: lambda-parameter name -> abstract value.
using Env = std::map<std::string, AbsVal>;

/// Abstractly evaluates \p E under \p E nv. Total: unknown constructs
/// evaluate to (typed) top.
AbsVal absEval(const expr::ExprRef &E, const Env &Environment);

/// Refines \p Environment by assuming boolean expression \p Cond
/// evaluates to \p Assume. Narrows interval bindings of parameters that
/// appear as a bare comparison operand, pushes through Not / short-circuit
/// And / Or, and learns nonzero-ness from `!= 0` tests. Returns false when
/// the assumption is infeasible under the environment (the refined
/// program point is unreachable).
bool refine(Env &Environment, const expr::ExprRef &Cond, bool Assume);

/// One int64 division/modulo site found while scanning a chain.
struct DivSite {
  DiagLoc Loc;               ///< Operator + role + operand path.
  Interval Divisor;          ///< Abstract divisor.
  bool DivisorNonZero = false; ///< Includes the NonZero refinement flag.
  Interval Dividend;         ///< Abstract dividend.
  /// Proven unable to trap: divisor excludes 0 AND the INT64_MIN / -1
  /// overflow corner is excluded.
  bool Safe = false;
};

/// True when a division with abstract \p Dividend / \p Divisor can be
/// proven not to trap (see DivSite::Safe).
bool divisionIsSafe(const AbsVal &Dividend, const AbsVal &Divisor);

/// Per-operator facts from the forward pass.
struct OpFacts {
  Interval CardIn = Interval::card(); ///< Elements the op can observe.
  Interval CardOut = Interval::card();
  AbsVal ElemIn;  ///< Abstract incoming element.
  AbsVal ElemOut; ///< Abstract outgoing element.
  /// For Pred ops with a predicate lambda: the predicate's truth over all
  /// reachable incoming elements.
  Tri Pred = Tri::Unknown;
  /// For Take/Skip: the count, when its interval is a single constant.
  std::optional<std::int64_t> Count;
  /// Every int64 division site in this operator (role expressions and
  /// any nested chain) is proven unable to trap. Gates rewrites that
  /// skip or reorder the operator's evaluation.
  bool TrapFree = true;
};

struct ChainFacts;
using ChainFactsRef = std::shared_ptr<const ChainFacts>;

/// Whole-chain facts: one OpFacts per operator, the division-site
/// inventory (including nested chains, with full DiagLoc paths), and the
/// facts of each nested chain keyed by the carrying operator's index.
struct ChainFacts {
  std::vector<OpFacts> Ops;
  std::vector<DivSite> Divs;
  std::map<unsigned, ChainFactsRef> Nested;
  Interval CardOut = Interval::card(); ///< Result cardinality ([1,1] scalar).
  AbsVal ElemOut;                      ///< Abstract result element.
};

/// Runs the forward pass over \p C. \p Outer binds free parameters of a
/// nested chain (the outer element); \p Prefix is the DiagLoc nesting
/// prefix for division sites.
ChainFacts analyzeChainFacts(const quil::Chain &C, const Env &Outer = Env(),
                             const std::vector<unsigned> &Prefix = {});

/// The abstract environment under which \p Role 's expression of \p O is
/// evaluated: \p Outer plus the role's parameter bindings (element
/// parameters bind to \p ElemIn; accumulator and combiner parameters
/// bind to typed top).
Env roleEnv(const quil::Op &O, ExprRole Role, const AbsVal &ElemIn,
            const Env &Outer);

/// Rebuilds \p E with every int64 Div/Mod node whose operands prove safe
/// under \p Environment marked divSafe() (codegen then emits plain `/`
/// `%` instead of the ckdiv/ckmod trap). Appends one human-readable fact
/// string per newly marked site to \p Facts when non-null. Returns \p E
/// unchanged when nothing was proven.
expr::ExprRef markSafeDivisions(const expr::ExprRef &E,
                                const Env &Environment,
                                std::vector<std::string> *Facts);

} // namespace absint
} // namespace analysis
} // namespace steno

#endif // STENO_ANALYSIS_ABSINT_H
