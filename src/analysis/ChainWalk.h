//===- analysis/ChainWalk.h - Shared traversal helpers ---------*- C++ -*-===//
///
/// \file
/// Internal helpers shared by the analysis passes: enumeration of every
/// expression a quil::Op carries (tagged with its ExprRole), and recursive
/// expression walks that track the operand path for diagnostics. Not part
/// of the public analysis API.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_ANALYSIS_CHAINWALK_H
#define STENO_ANALYSIS_CHAINWALK_H

#include "analysis/Diagnostics.h"
#include "quil/Quil.h"

#include <functional>
#include <vector>

namespace steno {
namespace analysis {
namespace detail {

/// One expression attached to an operator. Lambda roles carry L (the
/// expression is L->body()); bare-expression roles carry E.
struct RoleExpr {
  ExprRole Role;
  const expr::Lambda *L = nullptr;
  const expr::ExprRef *E = nullptr;

  const expr::ExprRef &expr() const { return L ? L->body() : *E; }
};

/// Every valid expression of \p O, in a fixed role order.
inline std::vector<RoleExpr> roleExprs(const quil::Op &O) {
  std::vector<RoleExpr> Out;
  auto AddL = [&](ExprRole R, const expr::Lambda &L) {
    if (L.valid())
      Out.push_back(RoleExpr{R, &L, nullptr});
  };
  auto AddE = [&](ExprRole R, const expr::ExprRef &E) {
    if (E)
      Out.push_back(RoleExpr{R, nullptr, &E});
  };
  AddL(ExprRole::Fn, O.Fn);
  AddL(ExprRole::Fn2, O.Fn2);
  AddL(ExprRole::Fn3, O.Fn3);
  AddL(ExprRole::Combine, O.Combine);
  AddL(ExprRole::StopWhen, O.StopWhen);
  AddE(ExprRole::Seed, O.Seed);
  AddE(ExprRole::DenseKeys, O.DenseKeys);
  if (O.S == quil::Sym::Src) {
    AddE(ExprRole::SrcStart, O.Src.Start);
    AddE(ExprRole::SrcCount, O.Src.CountE);
    AddE(ExprRole::SrcVec, O.Src.Vec);
  }
  return Out;
}

/// Depth-first walk of \p E calling \p Fn(node, operand-path-from-root).
inline void
walkExpr(const expr::ExprRef &E, std::vector<unsigned> &Path,
         const std::function<void(const expr::Expr &,
                                  const std::vector<unsigned> &)> &Fn) {
  Fn(*E, Path);
  for (unsigned I = 0; I != E->operands().size(); ++I) {
    Path.push_back(I);
    walkExpr(E->operand(I), Path, Fn);
    Path.pop_back();
  }
}

/// DiagLoc for operator \p OpIdx under \p OuterPath (the nesting prefix).
inline DiagLoc opLoc(const std::vector<unsigned> &OuterPath, unsigned OpIdx,
                     ExprRole Role = ExprRole::None,
                     std::vector<unsigned> ExprPath = {}) {
  DiagLoc Loc;
  Loc.OpPath = OuterPath;
  Loc.OpPath.push_back(OpIdx);
  Loc.Role = Role;
  Loc.ExprPath = std::move(ExprPath);
  return Loc;
}

} // namespace detail
} // namespace analysis
} // namespace steno

#endif // STENO_ANALYSIS_CHAINWALK_H
