//===- analysis/ConstRange.cpp - Constant/range analysis (ST3xxx) -*- C++ -*-//
///
/// \file
/// The ST3xxx shape lints, derived from the abstract-interpretation
/// framework (analysis/AbsInt.h) rather than syntactic constant folding:
/// negative Take/Skip counts (an error — the runtime semantics would be
/// nonsense), predicates whose truth value is decided for every reachable
/// element (always-false empties the chain, always-true is a no-op
/// filter), Take(0), and every operator downstream of a provably empty
/// prefix (dead — it can never observe an element).
///
/// Because the facts flow through the whole chain, the lints fire not just
/// on literal constants but on anything the framework can decide — e.g. a
/// `Where x > 100` after a `Range(0, 10)` source is flagged always-false,
/// and emptiness stops propagating at a dense GroupByAggregate sink (which
/// emits one row per key even on empty input).
///
//===----------------------------------------------------------------------===//

#include "analysis/AbsInt.h"
#include "analysis/Analysis.h"
#include "analysis/ChainWalk.h"
#include "support/StringUtil.h"

#include <cstdint>

using namespace steno;
using namespace steno::analysis;
using namespace steno::analysis::absint;
using namespace steno::analysis::detail;
using quil::Chain;
using quil::Op;
using quil::PredOp;
using quil::Sym;

namespace {

class ConstRangeAnalyzer {
public:
  explicit ConstRangeAnalyzer(DiagnosticBag &Diags) : Diags(Diags) {}

  void run(const Chain &C) { walkChain(C, analyzeChainFacts(C)); }

private:
  DiagnosticBag &Diags;
  std::vector<unsigned> Path;

  void walkChain(const Chain &C, const ChainFacts &Facts) {
    for (unsigned I = 0; I != C.Ops.size(); ++I) {
      const Op &O = C.Ops[I];
      const OpFacts &F = Facts.Ops[I];

      // Dead operator: the upstream provably delivers zero elements. Agg
      // still produces its seed and Ret still returns, so they are
      // excluded (as is Src, which has no upstream).
      if (F.CardIn == Interval::constant(0) && O.S != Sym::Agg &&
          O.S != Sym::Ret && O.S != Sym::Src)
        Diags.report(DiagCode::DeadOperator, Severity::Note, opLoc(Path, I),
                     "unreachable: the upstream provably produces no "
                     "elements");

      switch (O.S) {
      case Sym::Src:
        if (O.Src.CountE) {
          // Negative counts are DEFINED as empty by the Range semantics
          // (the interp edge tests pin this down), so this is a lint,
          // not a rejection — unlike negative Take/Skip below.
          auto N = absEval(O.Src.CountE, Env()).constInt();
          if (N && *N < 0)
            Diags.report(DiagCode::NegativeCount, Severity::Warning,
                         opLoc(Path, I, ExprRole::SrcCount),
                         support::strFormat(
                             "Range count is a negative constant (%lld); "
                             "the source is empty",
                             static_cast<long long>(*N)));
        }
        break;

      case Sym::Pred:
        switch (O.P) {
        case PredOp::Where:
        case PredOp::TakeWhile:
        case PredOp::SkipWhile: {
          if (!O.Fn.valid())
            break;
          // For SkipWhile the roles invert: constant-true drops every
          // element, constant-false never skips.
          bool Empties = O.P == PredOp::SkipWhile ? F.Pred == Tri::True
                                                  : F.Pred == Tri::False;
          bool NoOp = O.P == PredOp::SkipWhile ? F.Pred == Tri::False
                                               : F.Pred == Tri::True;
          if (Empties)
            Diags.report(
                DiagCode::AlwaysFalsePred, Severity::Warning,
                opLoc(Path, I, ExprRole::Fn),
                O.P == PredOp::SkipWhile
                    ? "predicate is constant true: SkipWhile drops "
                      "every element"
                    : "predicate is constant false: no element can "
                      "pass");
          else if (NoOp)
            Diags.report(
                DiagCode::AlwaysTruePred, Severity::Warning,
                opLoc(Path, I, ExprRole::Fn),
                O.P == PredOp::SkipWhile
                    ? "predicate is constant false: SkipWhile never "
                      "skips and has no effect"
                    : "predicate is constant: the filter has no "
                      "effect");
          break;
        }
        case PredOp::Take:
        case PredOp::Skip:
          if (F.Count) {
            if (*F.Count < 0)
              Diags.report(DiagCode::NegativeCount, Severity::Error,
                           opLoc(Path, I, ExprRole::Seed),
                           support::strFormat(
                               "%s count is a negative constant (%lld)",
                               O.P == PredOp::Take ? "Take" : "Skip",
                               static_cast<long long>(*F.Count)));
            else if (*F.Count == 0 && O.P == PredOp::Take)
              Diags.report(DiagCode::TakeZero, Severity::Warning,
                           opLoc(Path, I, ExprRole::Seed),
                           "Take(0) produces no elements");
          }
          break;
        }
        break;

      case Sym::Nested:
        if (O.NestedChain) {
          auto It = Facts.Nested.find(I);
          if (It != Facts.Nested.end()) {
            Path.push_back(I);
            walkChain(*O.NestedChain, *It->second);
            Path.pop_back();
          }
        }
        break;

      default:
        break;
      }
    }
  }
};

} // namespace

void analysis::runConstRange(const Chain &C, DiagnosticBag &Diags) {
  ConstRangeAnalyzer(Diags).run(C);
}
