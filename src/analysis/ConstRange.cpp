//===- analysis/ConstRange.cpp - Constant/range analysis (ST3xxx) -*- C++ -*-//
///
/// \file
/// Constant-folds the control operands of each operator and flags queries
/// whose shape is decided before any element flows: negative Take/Skip
/// counts (an error — the runtime semantics would be nonsense), constant
/// predicates (always-false empties the chain, always-true is a no-op
/// filter), Take(0), and every operator downstream of a provably empty
/// prefix (dead — it can never observe an element).
///
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "analysis/ChainWalk.h"
#include "expr/Fold.h"
#include "support/StringUtil.h"

#include <cstdint>
#include <optional>

using namespace steno;
using namespace steno::analysis;
using namespace steno::analysis::detail;
using expr::ExprKind;
using expr::ExprRef;
using quil::Chain;
using quil::Op;
using quil::PredOp;
using quil::Sym;

namespace {

/// Folded boolean value of a predicate body, if it is constant.
std::optional<bool> constPred(const expr::Lambda &L) {
  if (!L.valid() || !L.resultType()->isBool())
    return std::nullopt;
  ExprRef Folded = expr::foldConstants(L.body());
  if (Folded->kind() != ExprKind::Const)
    return std::nullopt;
  return std::get<bool>(Folded->constValue());
}

/// Folded int64 value of \p E, if it is constant.
std::optional<std::int64_t> constCount(const ExprRef &E) {
  if (!E || !E->type()->isInt64())
    return std::nullopt;
  ExprRef Folded = expr::foldConstants(E);
  if (Folded->kind() != ExprKind::Const)
    return std::nullopt;
  return std::get<std::int64_t>(Folded->constValue());
}

class ConstRangeAnalyzer {
public:
  explicit ConstRangeAnalyzer(DiagnosticBag &Diags) : Diags(Diags) {}

  void run(const Chain &C) { walkChain(C); }

private:
  DiagnosticBag &Diags;
  std::vector<unsigned> Path;

  void walkChain(const Chain &C) {
    // Set once the prefix provably yields no elements; everything after
    // (bar Agg, which still produces its seed, and Ret) is dead.
    bool Empty = false;

    for (unsigned I = 0; I != C.Ops.size(); ++I) {
      const Op &O = C.Ops[I];

      if (Empty && O.S != Sym::Agg && O.S != Sym::Ret && O.S != Sym::Src)
        Diags.report(DiagCode::DeadOperator, Severity::Note, opLoc(Path, I),
                     "unreachable: the upstream provably produces no "
                     "elements");

      switch (O.S) {
      case Sym::Src:
        if (auto N = constCount(O.Src.CountE)) {
          // Negative counts are DEFINED as empty by the Range semantics
          // (the interp edge tests pin this down), so this is a lint,
          // not a rejection — unlike negative Take/Skip below.
          if (*N < 0)
            Diags.report(DiagCode::NegativeCount, Severity::Warning,
                         opLoc(Path, I, ExprRole::SrcCount),
                         support::strFormat(
                             "Range count is a negative constant (%lld); "
                             "the source is empty",
                             static_cast<long long>(*N)));
          if (*N <= 0)
            Empty = true;
        }
        break;

      case Sym::Pred:
        switch (O.P) {
        case PredOp::Where:
        case PredOp::TakeWhile:
        case PredOp::SkipWhile:
          if (auto V = constPred(O.Fn)) {
            bool Empties = (O.P == PredOp::SkipWhile) ? *V : !*V;
            if (Empties) {
              Diags.report(
                  DiagCode::AlwaysFalsePred, Severity::Warning,
                  opLoc(Path, I, ExprRole::Fn),
                  O.P == PredOp::SkipWhile
                      ? "predicate is constant true: SkipWhile drops "
                        "every element"
                      : "predicate is constant false: no element can "
                        "pass");
              Empty = true;
            } else {
              Diags.report(
                  DiagCode::AlwaysTruePred, Severity::Warning,
                  opLoc(Path, I, ExprRole::Fn),
                  O.P == PredOp::SkipWhile
                      ? "predicate is constant false: SkipWhile never "
                        "skips and has no effect"
                      : "predicate is constant: the filter has no "
                        "effect");
            }
          }
          break;
        case PredOp::Take:
        case PredOp::Skip:
          if (auto N = constCount(O.Seed)) {
            if (*N < 0)
              Diags.report(DiagCode::NegativeCount, Severity::Error,
                           opLoc(Path, I, ExprRole::Seed),
                           support::strFormat(
                               "%s count is a negative constant (%lld)",
                               O.P == PredOp::Take ? "Take" : "Skip",
                               static_cast<long long>(*N)));
            else if (*N == 0 && O.P == PredOp::Take) {
              Diags.report(DiagCode::TakeZero, Severity::Warning,
                           opLoc(Path, I, ExprRole::Seed),
                           "Take(0) produces no elements");
              Empty = true;
            }
          }
          break;
        }
        break;

      case Sym::Nested:
        if (O.NestedChain) {
          Path.push_back(I);
          walkChain(*O.NestedChain);
          Path.pop_back();
        }
        break;

      default:
        break;
      }
    }
  }
};

} // namespace

void analysis::runConstRange(const Chain &C, DiagnosticBag &Diags) {
  ConstRangeAnalyzer(Diags).run(C);
}
