//===- analysis/Rewrite.cpp - Certificate-gated plan rewriter -*- C++ -*-===//

#include "analysis/Rewrite.h"
#include "analysis/AbsInt.h"
#include "analysis/ChainWalk.h"
#include "expr/Analysis.h"
#include "obs/Profile.h"
#include "support/StringUtil.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <variant>

using namespace steno;
using namespace steno::quil;
using namespace steno::analysis;
using namespace steno::analysis::absint;
using expr::BinaryOp;
using expr::Builtin;
using expr::Expr;
using expr::ExprKind;
using expr::ExprRef;

const char *quil::rewriteRuleName(RewriteRule Rule) {
  switch (Rule) {
  case RewriteRule::DropTruePred:
    return "drop-true-pred";
  case RewriteRule::CollapseFalsePred:
    return "collapse-false-pred";
  case RewriteRule::RemoveDeadOp:
    return "remove-dead-op";
  case RewriteRule::FoldConstCount:
    return "fold-const-count";
  case RewriteRule::MergeTakeTake:
    return "merge-take-take";
  case RewriteRule::MergeSkipSkip:
    return "merge-skip-skip";
  case RewriteRule::DropSkipZero:
    return "drop-skip-zero";
  case RewriteRule::DropRedundantTake:
    return "drop-redundant-take";
  case RewriteRule::ReorderPreds:
    return "reorder-preds";
  case RewriteRule::ElideDivTrap:
    return "elide-div-trap";
  }
  return "?";
}

std::string RewriteCertificate::str() const {
  std::string Out = rewriteRuleName(Rule);
  Out += " @ " + Loc.str();
  if (!Fact.empty())
    Out += " [" + Fact + "]";
  if (!Detail.empty())
    Out += ": " + Detail;
  return Out;
}

bool quil::rewriteEnvEnabled() {
  static const bool Enabled = [] {
    const char *E = std::getenv("STENO_REWRITE");
    if (!E)
      return true;
    return std::strcmp(E, "0") != 0 && std::strcmp(E, "off") != 0;
  }();
  return Enabled;
}

namespace {

std::optional<std::int64_t> constCount(const ExprRef &Seed) {
  if (Seed && Seed->kind() == ExprKind::Const &&
      std::holds_alternative<std::int64_t>(Seed->constValue()))
    return std::get<std::int64_t>(Seed->constValue());
  return std::nullopt;
}

bool isTakeZero(const Op &O) {
  if (O.S != Sym::Pred || O.P != PredOp::Take)
    return false;
  auto N = constCount(O.Seed);
  return N && *N == 0;
}

/// The canonical empty marker: Take 0 over the element type.
Op makeTakeZero(const expr::TypeRef &ElemTy) {
  Op N;
  N.S = Sym::Pred;
  N.P = PredOp::Take;
  N.Seed = Expr::constInt64(0);
  N.InElem = ElemTy;
  N.OutElem = ElemTy;
  return N;
}

std::int64_t satAddCount(std::int64_t A, std::int64_t B) {
  std::int64_t R;
  if (__builtin_add_overflow(A, B, &R))
    return INT64_MAX;
  return R;
}

/// Static per-node cost of evaluating a predicate body once: node count
/// with divisions and math calls weighted heavier (they dominate the
/// per-element cycle budget).
std::int64_t staticCost(const ExprRef &E) {
  std::int64_t C = 1;
  if (E->kind() == ExprKind::Binary &&
      (E->binaryOp() == BinaryOp::Div || E->binaryOp() == BinaryOp::Mod))
    C += 4;
  if (E->kind() == ExprKind::Call)
    C += 8;
  for (const ExprRef &Op : E->operands())
    C += staticCost(Op);
  return C;
}

/// Textbook selectivity estimate of a boolean expression (System R
/// defaults): comparisons 0.5, equality 0.25, inequality 0.75,
/// conjunction/disjunction under independence.
double staticSelectivity(const ExprRef &E) {
  switch (E->kind()) {
  case ExprKind::Const:
    if (std::holds_alternative<bool>(E->constValue()))
      return std::get<bool>(E->constValue()) ? 1.0 : 0.0;
    return 0.5;
  case ExprKind::Unary:
    if (E->unaryOp() == expr::UnaryOp::Not)
      return 1.0 - staticSelectivity(E->operand(0));
    return 0.5;
  case ExprKind::Binary: {
    BinaryOp Op = E->binaryOp();
    double L, R;
    switch (Op) {
    case BinaryOp::Eq:
      return 0.25;
    case BinaryOp::Ne:
      return 0.75;
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      return 0.5;
    case BinaryOp::And:
      L = staticSelectivity(E->operand(0));
      R = staticSelectivity(E->operand(1));
      return L * R;
    case BinaryOp::Or:
      L = staticSelectivity(E->operand(0));
      R = staticSelectivity(E->operand(1));
      return L + R - L * R;
    default:
      return 0.5;
    }
  }
  default:
    return 0.5;
  }
}

/// True when \p E (or a subexpression) is an int64 division or modulo —
/// a potential trap-elision site.
bool exprHasIntDiv(const expr::ExprRef &E) {
  if (!E)
    return false;
  if (E->kind() == expr::ExprKind::Binary &&
      (E->binaryOp() == expr::BinaryOp::Div ||
       E->binaryOp() == expr::BinaryOp::Mod) &&
      E->type() && E->type()->isInt64())
    return true;
  for (const expr::ExprRef &Op : E->operands())
    if (exprHasIntDiv(Op))
      return true;
  return false;
}

/// Conservative pre-scan: does \p C contain anything a rewrite rule
/// could fire on? Pred operators feed every structural rule, an int64
/// Div/Mod anywhere feeds trap elision, and a Range source with a
/// constant non-positive count makes downstream operators dead. Chains
/// with none of these (the common hot-compile shapes: select + aggregate
/// over arrays) skip the abstract-interpretation passes entirely.
bool hasRewriteTargets(const Chain &C) {
  return quil::chainHasRewriteTargets(C);
}

} // namespace

bool quil::chainHasRewriteTargets(const Chain &C) {
  for (const Op &O : C.Ops) {
    if (O.S == Sym::Pred)
      return true;
    if (O.S == Sym::Src && O.Src.CountE &&
        O.Src.CountE->kind() == expr::ExprKind::Const &&
        std::holds_alternative<std::int64_t>(O.Src.CountE->constValue()) &&
        std::get<std::int64_t>(O.Src.CountE->constValue()) <= 0)
      return true;
    for (const expr::Lambda *L :
         {&O.Fn, &O.Fn2, &O.Fn3, &O.Combine, &O.StopWhen})
      if (L->valid() && exprHasIntDiv(L->body()))
        return true;
    if (exprHasIntDiv(O.Seed) || exprHasIntDiv(O.DenseKeys))
      return true;
    if (O.NestedChain && chainHasRewriteTargets(*O.NestedChain))
      return true;
  }
  return false;
}

namespace {

struct Rewriter {
  const RewriteOptions &Opts;
  std::vector<RewriteCertificate> Certs;

  explicit Rewriter(const RewriteOptions &Opts) : Opts(Opts) {}

  void run(Chain &C) {
    // Fixpoint over the structural rules. Each applied rule invalidates
    // the facts, so they are recomputed per iteration; chains are tens
    // of operators at most, so the quadratic bound is irrelevant.
    for (int Iter = 0; Iter != 64; ++Iter) {
      ChainFacts Facts = analyzeChainFacts(C);
      if (!applyOne(C, Facts, {}))
        break;
    }
    if (Opts.ReorderPreds) {
      ChainFacts Facts = analyzeChainFacts(C);
      reorderPreds(C, Facts, {});
    }
    if (Opts.ElideTraps) {
      // Reordering narrows downstream element facts, so elision runs on
      // fresh facts last.
      ChainFacts Facts = analyzeChainFacts(C);
      elideTraps(C, Facts, Env(), {});
    }
  }

private:
  void cert(RewriteRule Rule, DiagLoc Loc, std::string Fact,
            std::string Detail) {
    Certs.push_back(RewriteCertificate{Rule, std::move(Loc),
                                       std::move(Fact), std::move(Detail)});
  }

  //===------------------------------------------------------------===//
  // Structural rules (one application per call)
  //===------------------------------------------------------------===//

  bool applyOne(Chain &C, const ChainFacts &Facts,
                const std::vector<unsigned> &Prefix) {
    for (unsigned I = 0; I != C.Ops.size(); ++I) {
      const Op &O = C.Ops[I];
      const OpFacts &F = Facts.Ops[I];

      // Rule: remove an operator that provably never sees an element.
      // Its expressions never evaluate at run time, so no trap-freedom
      // gate is needed; removal must preserve the element type.
      if (F.CardIn == Interval::constant(0) && removable(O)) {
        cert(RewriteRule::RemoveDeadOp, detail::opLoc(Prefix, I),
             "incoming cardinality = [0, 0]",
             std::string("removed dead ") + symName(O.S) + " operator");
        C.Ops.erase(C.Ops.begin() + I);
        return true;
      }

      if (O.S == Sym::Pred)
        if (applyPredRule(C, I, F, Prefix))
          return true;
    }

    // Recurse into nested chains (on a mutable copy; reinstall on
    // change).
    for (unsigned I = 0; I != C.Ops.size(); ++I) {
      Op &O = C.Ops[I];
      if (O.S != Sym::Nested || !O.NestedChain)
        continue;
      auto It = Facts.Nested.find(I);
      if (It == Facts.Nested.end())
        continue;
      Chain Copy = *O.NestedChain;
      std::vector<unsigned> NestedPrefix = Prefix;
      NestedPrefix.push_back(I);
      if (applyOne(Copy, *It->second, NestedPrefix)) {
        O.NestedChain = std::make_shared<Chain>(std::move(Copy));
        return true;
      }
    }
    return false;
  }

  static bool removable(const Op &O) {
    switch (O.S) {
    case Sym::Pred:
      return true; // preds are always type-preserving
    case Sym::Trans:
    case Sym::Nested:
      return expr::sameType(O.InElem, O.OutElem);
    default:
      return false; // Src/Sink/Agg/Ret anchor the chain's shape
    }
  }

  bool applyPredRule(Chain &C, unsigned I, const OpFacts &F,
                     const std::vector<unsigned> &Prefix) {
    Op &O = C.Ops[I];
    switch (O.P) {
    case PredOp::Where:
    case PredOp::TakeWhile:
    case PredOp::SkipWhile: {
      if (!O.Fn.valid())
        return false;
      // For SkipWhile the roles invert: constant-true drops everything,
      // constant-false is the no-op.
      bool Empties = O.P == PredOp::SkipWhile ? F.Pred == Tri::True
                                              : F.Pred == Tri::False;
      bool NoOp = O.P == PredOp::SkipWhile ? F.Pred == Tri::False
                                           : F.Pred == Tri::True;
      // Both rules skip evaluating the predicate body on elements that
      // do reach it, so the body must be proven unable to trap.
      if (Empties && F.TrapFree) {
        cert(RewriteRule::CollapseFalsePred,
             detail::opLoc(Prefix, I, ExprRole::Fn),
             std::string("pred = ") +
                 (O.P == PredOp::SkipWhile ? "true" : "false") +
                 " for every reachable element, body trap-free",
             "collapsed to the canonical empty marker Take 0");
        C.Ops[I] = makeTakeZero(O.InElem);
        return true;
      }
      if (NoOp && F.TrapFree) {
        cert(RewriteRule::DropTruePred,
             detail::opLoc(Prefix, I, ExprRole::Fn),
             std::string("pred = ") +
                 (O.P == PredOp::SkipWhile ? "false" : "true") +
                 " for every reachable element, body trap-free",
             "removed no-op predicate");
        C.Ops.erase(C.Ops.begin() + I);
        return true;
      }
      return false;
    }
    case PredOp::Take:
    case PredOp::Skip: {
      const bool IsTake = O.P == PredOp::Take;
      auto Const = constCount(O.Seed);
      if (!Const && F.Count) {
        // The count expression is not a literal but the framework proved
        // it constant: fold it so downstream rules (and codegen) see the
        // literal.
        cert(RewriteRule::FoldConstCount,
             detail::opLoc(Prefix, I, ExprRole::Seed),
             "count interval = " + Interval::constant(*F.Count).str(),
             support::strFormat("folded %s count to %lld",
                                IsTake ? "Take" : "Skip",
                                static_cast<long long>(*F.Count)));
        O.Seed = Expr::constInt64(*F.Count);
        return true;
      }
      if (!Const)
        return false;
      std::int64_t N = *Const;
      if (IsTake && N < 0) {
        // Runtime semantics: a negative Take count produces no elements.
        cert(RewriteRule::FoldConstCount,
             detail::opLoc(Prefix, I, ExprRole::Seed),
             support::strFormat("Take count = %lld < 0",
                                static_cast<long long>(N)),
             "normalized negative Take to the empty marker Take 0");
        O.Seed = Expr::constInt64(0);
        return true;
      }
      if (!IsTake && N <= 0) {
        // Skip of zero (or a negative count, which the runtime treats as
        // zero) passes every element through.
        cert(RewriteRule::DropSkipZero,
             detail::opLoc(Prefix, I, ExprRole::Seed),
             support::strFormat("Skip count = %lld <= 0",
                                static_cast<long long>(N)),
             "removed no-op Skip");
        C.Ops.erase(C.Ops.begin() + I);
        return true;
      }
      // Merge with an adjacent same-kind constant count.
      if (I + 1 < C.Ops.size() && C.Ops[I + 1].S == Sym::Pred &&
          C.Ops[I + 1].P == O.P) {
        if (auto M = constCount(C.Ops[I + 1].Seed)) {
          std::int64_t Merged =
              IsTake ? std::min(N, std::max<std::int64_t>(*M, 0))
                     : satAddCount(N, std::max<std::int64_t>(*M, 0));
          cert(IsTake ? RewriteRule::MergeTakeTake
                      : RewriteRule::MergeSkipSkip,
               detail::opLoc(Prefix, I, ExprRole::Seed),
               support::strFormat("adjacent constant counts %lld, %lld",
                                  static_cast<long long>(N),
                                  static_cast<long long>(*M)),
               support::strFormat("merged into one %s %lld",
                                  IsTake ? "Take" : "Skip",
                                  static_cast<long long>(Merged)));
          O.Seed = Expr::constInt64(Merged);
          C.Ops.erase(C.Ops.begin() + I + 1);
          return true;
        }
      }
      // A Take the upstream can never exceed is a no-op.
      if (IsTake && N > 0 && F.CardIn.Hi != INT64_MAX && F.CardIn.Hi <= N) {
        cert(RewriteRule::DropRedundantTake,
             detail::opLoc(Prefix, I, ExprRole::Seed),
             support::strFormat("incoming cardinality %s <= Take %lld",
                                F.CardIn.str().c_str(),
                                static_cast<long long>(N)),
             "removed redundant Take");
        C.Ops.erase(C.Ops.begin() + I);
        return true;
      }
      return false;
    }
    }
    return false;
  }

  //===------------------------------------------------------------===//
  // Predicate reordering
  //===------------------------------------------------------------===//

  void reorderPreds(Chain &C, const ChainFacts &Facts,
                    const std::vector<unsigned> &Prefix) {
    // Observed selectivities keyed by predicate identity (hashLambda),
    // resolved through rewrite provenance. Only consulted when the
    // profile actually has runs.
    std::map<std::uint64_t, double> Observed;
    if (Opts.Profile && Prefix.empty())
      Observed = observedSelectivities(C);

    for (unsigned I = 0; I != C.Ops.size();) {
      // A maximal run of adjacent stateless trap-free Where ops.
      unsigned J = I;
      while (J < C.Ops.size() && C.Ops[J].S == Sym::Pred &&
             C.Ops[J].P == PredOp::Where && C.Ops[J].Fn.valid() &&
             Facts.Ops[J].TrapFree)
        ++J;
      if (J - I >= 2)
        reorderRun(C, I, J, Observed, Prefix);
      I = J > I ? J : I + 1;
    }

    // Nested chains.
    for (unsigned I = 0; I != C.Ops.size(); ++I) {
      Op &O = C.Ops[I];
      if (O.S != Sym::Nested || !O.NestedChain)
        continue;
      auto It = Facts.Nested.find(I);
      if (It == Facts.Nested.end())
        continue;
      std::size_t Before = Certs.size();
      Chain Copy = *O.NestedChain;
      std::vector<unsigned> NestedPrefix = Prefix;
      NestedPrefix.push_back(I);
      reorderPreds(Copy, *It->second, NestedPrefix);
      if (Certs.size() != Before)
        O.NestedChain = std::make_shared<Chain>(std::move(Copy));
    }
  }

  std::map<std::uint64_t, double> observedSelectivities(const Chain &C) {
    std::map<std::uint64_t, double> Out;
    auto Snap = Opts.Profile->snapshotResolved(hashChain(C));
    if (!Snap || !Snap->Runs)
      return Out;
    for (const obs::OpProfile &O : Snap->Ops)
      if (O.Label == "Where" && O.OpId && O.selectivity() >= 0)
        Out[O.OpId] = O.selectivity();
    return Out;
  }

  void reorderRun(Chain &C, unsigned Begin, unsigned End,
                  const std::map<std::uint64_t, double> &Observed,
                  const std::vector<unsigned> &Prefix) {
    struct Ranked {
      unsigned Idx;
      double Sel;
      double Cost;
      bool FromProfile;
      bool FromFeedback;
      double rank() const { return (Sel - 1.0) / Cost; }
    };
    // Feedback mode: when the adapt layer supplied decayed observed
    // stats for EVERY predicate in the run, rank by observed
    // cost×selectivity (cost in nanos-per-row). Mixed runs fall back to
    // the profile/static path — observed-nanos and static node counts
    // are not commensurable units.
    bool AllFeedback = !Opts.Observed.empty();
    for (unsigned I = Begin; I != End && AllFeedback; ++I)
      AllFeedback = Opts.Observed.count(expr::hashLambda(C.Ops[I].Fn)) != 0;

    std::vector<Ranked> Run;
    for (unsigned I = Begin; I != End; ++I) {
      const Op &O = C.Ops[I];
      Ranked R;
      R.Idx = I;
      R.FromFeedback = AllFeedback;
      if (AllFeedback) {
        const ObservedPredStats &S =
            Opts.Observed.at(expr::hashLambda(O.Fn));
        R.Sel = S.Sel;
        R.Cost = std::max(S.CostNanos, 1e-3);
        R.FromProfile = true;
      } else {
        R.Cost = static_cast<double>(staticCost(O.Fn.body()));
        auto It = Observed.find(expr::hashLambda(O.Fn));
        R.FromProfile = It != Observed.end();
        R.Sel = R.FromProfile ? It->second : staticSelectivity(O.Fn.body());
      }
      Run.push_back(R);
    }
    // Most negative rank first: cheap, highly selective filters lead.
    std::stable_sort(Run.begin(), Run.end(),
                     [](const Ranked &A, const Ranked &B) {
                       return A.rank() < B.rank();
                     });
    bool Changed = false;
    for (unsigned K = 0; K != Run.size(); ++K)
      Changed = Changed || Run[K].Idx != Begin + K;
    if (!Changed)
      return;

    std::vector<Op> NewOps;
    NewOps.reserve(Run.size());
    std::string Fact = AllFeedback
                           ? "rank = (selectivity - 1) / cost, feedback:"
                           : "rank = (selectivity - 1) / cost:";
    for (const Ranked &R : Run) {
      NewOps.push_back(C.Ops[R.Idx]);
      if (R.FromFeedback)
        Fact += support::strFormat(" #%u(sel=%.4f*,cost=%.4gns)", R.Idx,
                                   R.Sel, R.Cost);
      else
        Fact += support::strFormat(" #%u(sel=%.4f%s,cost=%lld)", R.Idx,
                                   R.Sel, R.FromProfile ? "*" : "",
                                   static_cast<long long>(R.Cost));
    }
    if (std::any_of(Run.begin(), Run.end(),
                    [](const Ranked &R) { return R.FromProfile; }))
      Fact += " (* = observed)";
    for (unsigned K = 0; K != NewOps.size(); ++K)
      C.Ops[Begin + K] = std::move(NewOps[K]);
    cert(RewriteRule::ReorderPreds, detail::opLoc(Prefix, Begin),
         std::move(Fact),
         support::strFormat("reordered %zu adjacent Where predicates",
                            Run.size()));
  }

  //===------------------------------------------------------------===//
  // Trap elision
  //===------------------------------------------------------------===//

  void elideTraps(Chain &C, const ChainFacts &Facts, const Env &Outer,
                  const std::vector<unsigned> &Prefix) {
    for (unsigned I = 0; I != C.Ops.size(); ++I) {
      Op &O = C.Ops[I];
      const AbsVal &ElemIn = Facts.Ops[I].ElemIn;

      auto MarkLambda = [&](expr::Lambda &L, ExprRole Role) {
        if (!L.valid())
          return;
        Env E = roleEnv(O, Role, ElemIn, Outer);
        std::vector<std::string> Marked;
        ExprRef NewBody = markSafeDivisions(L.body(), E, &Marked);
        if (Marked.empty())
          return;
        for (const std::string &F : Marked)
          cert(RewriteRule::ElideDivTrap, detail::opLoc(Prefix, I, Role), F,
               "elided ckdiv/ckmod trap check");
        L = expr::Lambda(L.params(), NewBody);
      };
      auto MarkExpr = [&](ExprRef &E, ExprRole Role) {
        if (!E)
          return;
        Env En = roleEnv(O, Role, ElemIn, Outer);
        std::vector<std::string> Marked;
        ExprRef NewE = markSafeDivisions(E, En, &Marked);
        if (Marked.empty())
          return;
        for (const std::string &F : Marked)
          cert(RewriteRule::ElideDivTrap, detail::opLoc(Prefix, I, Role), F,
               "elided ckdiv/ckmod trap check");
        E = NewE;
      };

      MarkLambda(O.Fn, ExprRole::Fn);
      MarkLambda(O.Fn2, ExprRole::Fn2);
      MarkLambda(O.Fn3, ExprRole::Fn3);
      MarkLambda(O.Combine, ExprRole::Combine);
      MarkLambda(O.StopWhen, ExprRole::StopWhen);
      MarkExpr(O.Seed, ExprRole::Seed);
      MarkExpr(O.DenseKeys, ExprRole::DenseKeys);
      if (O.S == Sym::Src) {
        MarkExpr(O.Src.Start, ExprRole::SrcStart);
        MarkExpr(O.Src.CountE, ExprRole::SrcCount);
        MarkExpr(O.Src.Vec, ExprRole::SrcVec);
      }

      if (O.S == Sym::Nested && O.NestedChain) {
        auto It = Facts.Nested.find(I);
        if (It == Facts.Nested.end())
          continue;
        Env NestedOuter = Outer;
        if (!O.OuterParam.empty())
          NestedOuter[O.OuterParam] = ElemIn;
        std::size_t Before = Certs.size();
        Chain Copy = *O.NestedChain;
        std::vector<unsigned> NestedPrefix = Prefix;
        NestedPrefix.push_back(I);
        elideTraps(Copy, *It->second, NestedOuter, NestedPrefix);
        if (Certs.size() != Before)
          O.NestedChain = std::make_shared<Chain>(std::move(Copy));
      }
    }
  }
};

} // namespace

RewriteResult quil::rewriteChain(const Chain &C,
                                 const RewriteOptions &Options) {
  RewriteResult R;
  R.OriginalHash = hashChain(C);
  R.Rewritten = C;
  if (!hasRewriteTargets(C)) {
    R.RewrittenHash = R.OriginalHash;
    return R;
  }
  Rewriter RW(Options);
  RW.run(R.Rewritten);
  R.Certs = std::move(RW.Certs);
  R.RewrittenHash = hashChain(R.Rewritten);
  R.Changed = !R.Certs.empty();
  return R;
}

bool quil::verifyCertificates(const Chain &Original, const RewriteResult &R,
                              const RewriteOptions &Options,
                              std::string *Err) {
  auto Fail = [&](std::string Msg) {
    if (Err)
      *Err = std::move(Msg);
    return false;
  };
  if (R.OriginalHash != hashChain(Original))
    return Fail("original-chain hash mismatch");
  if (auto V = validate(R.Rewritten))
    return Fail("rewritten chain fails validation: " + *V);
  // Deterministic replay: the same chain + options must reproduce the
  // exact certificate trail and the exact output chain.
  RewriteResult Replay = rewriteChain(Original, Options);
  if (Replay.RewrittenHash != R.RewrittenHash)
    return Fail("replay produced a different rewritten chain");
  if (Replay.Certs.size() != R.Certs.size())
    return Fail(support::strFormat(
        "replay produced %zu certificates, result carries %zu",
        Replay.Certs.size(), R.Certs.size()));
  for (std::size_t I = 0; I != R.Certs.size(); ++I) {
    const RewriteCertificate &A = R.Certs[I];
    const RewriteCertificate &B = Replay.Certs[I];
    if (A.Rule != B.Rule || !(A.Loc == B.Loc) || A.Fact != B.Fact)
      return Fail("certificate " + std::to_string(I) +
                  " does not replay: have [" + A.str() + "], replay [" +
                  B.str() + "]");
  }
  return true;
}
