//===- analysis/TypeCheck.cpp - Type/arity checker (ST1xxx) ----*- C++ -*-===//
///
/// \file
/// Verifies, before any lowering proceeds, everything the JIT'd C++
/// compiler would otherwise discover late and opaquely: lambda arities,
/// operand/element type agreement along the chain, seed/accumulator and
/// combiner shapes, parameter visibility (every free parameter must be
/// bound by the enclosing lambda or an outer nested-query parameter), and
/// capture/source-slot bounds. The paper assumes the C# compiler already
/// type-checked the query (§3.1); this pass is that compiler's stand-in
/// for hand-built or programmatically generated chains.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "analysis/ChainWalk.h"
#include "expr/Analysis.h"
#include "support/StringUtil.h"

#include <set>
#include <string>

using namespace steno;
using namespace steno::analysis;
using namespace steno::analysis::detail;
using expr::Lambda;
using expr::TypeRef;
using quil::Chain;
using quil::Op;
using quil::PredOp;
using quil::SinkOp;
using quil::Sym;

namespace {

class TypeChecker {
public:
  explicit TypeChecker(DiagnosticBag &Diags) : Diags(Diags) {}

  void check(const Chain &C) {
    std::set<std::string> NoOuter;
    checkChain(C, NoOuter);
  }

private:
  DiagnosticBag &Diags;
  std::vector<unsigned> Path; ///< Nesting prefix for DiagLocs.

  void error(DiagCode Code, DiagLoc Loc, std::string Msg) {
    Diags.report(Code, Severity::Error, std::move(Loc), std::move(Msg));
  }

  static std::string typeName(const TypeRef &Ty) {
    return Ty ? Ty->str() : "<null>";
  }

  /// Checks one lambda-shaped role: arity, parameter types, result type.
  /// Null entries in \p WantParams / a null \p WantResult skip that check.
  void checkLambda(unsigned I, ExprRole Role, const Lambda &L,
                   const std::vector<TypeRef> &WantParams,
                   const TypeRef &WantResult, DiagCode ResultCode,
                   const char *What) {
    if (!L.valid())
      return;
    if (L.arity() != WantParams.size()) {
      error(DiagCode::BadArity, opLoc(Path, I, Role),
            support::strFormat("%s takes %zu parameters, expected %zu",
                               What, L.arity(), WantParams.size()));
      return;
    }
    for (std::size_t P = 0; P != WantParams.size(); ++P) {
      if (!WantParams[P])
        continue;
      if (!expr::sameType(L.param(P).Ty, WantParams[P]))
        error(DiagCode::ParamTypeMismatch, opLoc(Path, I, Role),
              support::strFormat(
                  "%s parameter '%s' has type %s, expected %s", What,
                  L.param(P).Name.c_str(), typeName(L.param(P).Ty).c_str(),
                  typeName(WantParams[P]).c_str()));
    }
    if (WantResult && !expr::sameType(L.resultType(), WantResult))
      error(ResultCode, opLoc(Path, I, Role),
            support::strFormat("%s returns %s, expected %s", What,
                               typeName(L.resultType()).c_str(),
                               typeName(WantResult).c_str()));
  }

  /// Combiner shape: (acc, acc) -> acc.
  void checkCombiner(unsigned I, const Lambda &L, const TypeRef &Acc) {
    if (!L.valid())
      return;
    if (L.arity() != 2 || !expr::sameType(L.param(0).Ty, Acc) ||
        !expr::sameType(L.param(1).Ty, Acc) ||
        !expr::sameType(L.resultType(), Acc))
      error(DiagCode::BadCombiner, opLoc(Path, I, ExprRole::Combine),
            "combiner must be (" + typeName(Acc) + ", " + typeName(Acc) +
                ") -> " + typeName(Acc));
  }

  /// Free-parameter visibility and slot bounds for every expression of
  /// \p O. \p Visible holds outer-query parameter names.
  void checkExprEnvironment(unsigned I, const Op &O,
                            const std::set<std::string> &Visible) {
    for (const RoleExpr &RE : roleExprs(O)) {
      std::set<std::string> Bound = Visible;
      if (RE.L)
        for (const expr::LambdaParam &P : RE.L->params())
          Bound.insert(P.Name);
      for (const std::string &Name : expr::freeParams(*RE.expr()))
        if (!Bound.count(Name))
          error(DiagCode::UnboundParam, opLoc(Path, I, RE.Role),
                "references parameter '" + Name +
                    "' which no enclosing lambda binds");
      for (unsigned Slot : expr::usedCaptureSlots(*RE.expr()))
        if (Slot >= quil::MaxCaptureSlots)
          error(DiagCode::CaptureSlotOutOfBounds, opLoc(Path, I, RE.Role),
                support::strFormat("capture slot %u exceeds the limit %u",
                                   Slot, quil::MaxCaptureSlots));
      for (unsigned Slot : expr::usedSourceSlots(*RE.expr()))
        if (Slot >= quil::MaxSourceSlots)
          error(DiagCode::SourceSlotOutOfBounds, opLoc(Path, I, RE.Role),
                support::strFormat("source slot %u exceeds the limit %u",
                                   Slot, quil::MaxSourceSlots));
    }
  }

  void checkSrc(unsigned I, const Op &O) {
    const query::SourceDesc &Src = O.Src;
    switch (Src.Kind) {
    case query::SourceKind::DoubleArray:
    case query::SourceKind::Int64Array:
    case query::SourceKind::PointArray:
      if (Src.Slot >= quil::MaxSourceSlots)
        error(DiagCode::SourceSlotOutOfBounds, opLoc(Path, I),
              support::strFormat("source slot %u exceeds the limit %u",
                                 Src.Slot, quil::MaxSourceSlots));
      break;
    case query::SourceKind::Range:
      if (Src.Start && !Src.Start->type()->isInt64())
        error(DiagCode::ResultTypeMismatch,
              opLoc(Path, I, ExprRole::SrcStart),
              "Range start must be int64, got " +
                  typeName(Src.Start->type()));
      if (Src.CountE && !Src.CountE->type()->isInt64())
        error(DiagCode::ResultTypeMismatch,
              opLoc(Path, I, ExprRole::SrcCount),
              "Range count must be int64, got " +
                  typeName(Src.CountE->type()));
      break;
    case query::SourceKind::VecExpr:
      if (Src.Vec && !Src.Vec->type()->isVec())
        error(DiagCode::ResultTypeMismatch,
              opLoc(Path, I, ExprRole::SrcVec),
              "VecExpr source must be vec-typed, got " +
                  typeName(Src.Vec->type()));
      break;
    }
    if (O.OutElem && !expr::sameType(O.OutElem, Src.elemType()))
      error(DiagCode::ElemTypeMismatch, opLoc(Path, I),
            "Src produces " + typeName(Src.elemType()) +
                " elements but the operator declares " +
                typeName(O.OutElem));
  }

  void checkAggLike(unsigned I, const Op &O, const TypeRef &In,
                    bool IsGroupSink) {
    if (!O.Seed)
      return; // validate() already rejected the chain shape
    TypeRef Acc = O.Seed->type();
    // Step (acc, elem) -> acc. A mismatched first parameter means the
    // seed does not match the accumulator the step expects.
    if (O.Fn2.valid()) {
      if (O.Fn2.arity() != 2) {
        error(DiagCode::BadArity, opLoc(Path, I, ExprRole::Fn2),
              support::strFormat(
                  "aggregation step takes %zu parameters, expected 2",
                  O.Fn2.arity()));
      } else {
        if (!expr::sameType(O.Fn2.param(0).Ty, Acc))
          error(DiagCode::SeedTypeMismatch, opLoc(Path, I, ExprRole::Seed),
                "seed has type " + typeName(Acc) +
                    " but the step accumulates " +
                    typeName(O.Fn2.param(0).Ty));
        if (In && !expr::sameType(O.Fn2.param(1).Ty, In))
          error(DiagCode::ParamTypeMismatch, opLoc(Path, I, ExprRole::Fn2),
                "step consumes " + typeName(O.Fn2.param(1).Ty) +
                    " elements but the upstream produces " + typeName(In));
        if (!expr::sameType(O.Fn2.resultType(), O.Fn2.param(0).Ty))
          error(DiagCode::ResultTypeMismatch,
                opLoc(Path, I, ExprRole::Fn2),
                "step returns " + typeName(O.Fn2.resultType()) +
                    ", expected the accumulator type " +
                    typeName(O.Fn2.param(0).Ty));
      }
    }
    if (IsGroupSink) {
      // Result selector (key, acc) -> R.
      checkLambda(I, ExprRole::Fn3, O.Fn3,
                  {expr::Type::int64Ty(), Acc}, nullptr,
                  DiagCode::ResultTypeMismatch, "group result selector");
    } else {
      // Result selector (acc) -> R; without one, the operator must
      // produce the raw accumulator.
      if (O.Fn3.valid())
        checkLambda(I, ExprRole::Fn3, O.Fn3, {Acc}, O.OutElem,
                    DiagCode::ResultTypeMismatch, "result selector");
      else if (O.OutElem && !expr::sameType(O.OutElem, Acc))
        error(DiagCode::ResultTypeMismatch, opLoc(Path, I),
              "aggregate produces the accumulator (" + typeName(Acc) +
                  ") but the operator declares " + typeName(O.OutElem));
      checkLambda(I, ExprRole::StopWhen, O.StopWhen, {Acc},
                  expr::Type::boolTy(), DiagCode::PredicateNotBool,
                  "early-exit condition");
    }
    checkCombiner(I, O.Combine, Acc);
  }

  void checkOp(unsigned I, const Op &O, const TypeRef &In,
               const std::set<std::string> &Visible) {
    // Chain wiring: the recorded input type must match the upstream
    // output (Src has no input).
    if (O.S != Sym::Src && In && O.InElem &&
        !expr::sameType(O.InElem, In))
      error(DiagCode::ElemTypeMismatch, opLoc(Path, I),
            "operator consumes " + typeName(O.InElem) +
                " but the upstream produces " + typeName(In));

    switch (O.S) {
    case Sym::Src:
      checkSrc(I, O);
      break;
    case Sym::Trans:
      checkLambda(I, ExprRole::Fn, O.Fn, {In}, O.OutElem,
                  DiagCode::ResultTypeMismatch, "transformation");
      break;
    case Sym::Pred:
      if (O.P == PredOp::Take || O.P == PredOp::Skip) {
        if (O.Seed && !O.Seed->type()->isInt64())
          error(DiagCode::CountNotInt64, opLoc(Path, I, ExprRole::Seed),
                "Take/Skip count must be int64, got " +
                    typeName(O.Seed->type()));
      } else {
        checkLambda(I, ExprRole::Fn, O.Fn, {In}, expr::Type::boolTy(),
                    DiagCode::PredicateNotBool, "predicate");
      }
      break;
    case Sym::Sink:
      switch (O.K) {
      case SinkOp::GroupBy:
        checkLambda(I, ExprRole::Fn, O.Fn, {In}, expr::Type::int64Ty(),
                    DiagCode::KeyNotInt64, "group key selector");
        break;
      case SinkOp::GroupByAggregate:
        checkLambda(I, ExprRole::Fn, O.Fn, {In}, expr::Type::int64Ty(),
                    DiagCode::KeyNotInt64, "group key selector");
        if (O.DenseKeys && !O.DenseKeys->type()->isInt64())
          error(DiagCode::ResultTypeMismatch,
                opLoc(Path, I, ExprRole::DenseKeys),
                "dense key bound must be int64, got " +
                    typeName(O.DenseKeys->type()));
        checkAggLike(I, O, In, /*IsGroupSink=*/true);
        break;
      case SinkOp::OrderBy:
        if (O.Fn.valid()) {
          checkLambda(I, ExprRole::Fn, O.Fn, {In}, nullptr,
                      DiagCode::ResultTypeMismatch, "sort key selector");
          if (!O.Fn.resultType()->isNumeric())
            error(DiagCode::ResultTypeMismatch, opLoc(Path, I, ExprRole::Fn),
                  "sort key selector must return a numeric type, got " +
                      typeName(O.Fn.resultType()));
        }
        break;
      case SinkOp::ToArray:
        if (In && O.OutElem && !expr::sameType(O.OutElem, In))
          error(DiagCode::ElemTypeMismatch, opLoc(Path, I),
                "ToArray must preserve the element type");
        break;
      }
      break;
    case Sym::Agg:
      checkAggLike(I, O, In, /*IsGroupSink=*/false);
      break;
    case Sym::Nested: {
      if (!O.NestedChain)
        break;
      if (In && O.OuterParamTy && !expr::sameType(O.OuterParamTy, In))
        error(DiagCode::ParamTypeMismatch, opLoc(Path, I),
              "nested query binds outer parameter '" + O.OuterParam +
                  "' as " + typeName(O.OuterParamTy) +
                  " but the upstream produces " + typeName(In));
      std::set<std::string> Inner = Visible;
      if (!O.OuterParam.empty())
        Inner.insert(O.OuterParam);
      Path.push_back(I);
      checkChain(*O.NestedChain, Inner);
      Path.pop_back();
      break;
    }
    case Sym::Ret:
      break;
    }

    checkExprEnvironment(I, O, Visible);
  }

  void checkChain(const Chain &C, const std::set<std::string> &Visible) {
    TypeRef In; // element type flowing into the next operator
    for (unsigned I = 0; I != C.Ops.size(); ++I) {
      const Op &O = C.Ops[I];
      checkOp(I, O, In, Visible);
      In = O.OutElem;
    }
  }
};

} // namespace

void analysis::runTypeCheck(const Chain &C, DiagnosticBag &Diags) {
  TypeChecker(Diags).check(C);
}
