//===- analysis/Analysis.h - QUIL/expr static-analysis pipeline -*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static analysis over lowered QUIL chains, run as a first-class compile
/// phase (lower -> validate -> analyze -> specialize -> cse -> codegen).
/// Steno splices user lambdas into generated loops (§4.2) and fans queries
/// out across partitions (§6) on the assumption that they are well-typed
/// and effect-free; these passes certify both *before* lowering proceeds,
/// turning what used to be an opaque JIT compile failure (or a silent
/// parallel-semantics change) into an immediate structured diagnostic:
///
///   1. Type/arity checker — operand types, lambda arity, parameter
///      visibility, and capture/source-slot bounds (ST1xxx, all errors).
///   2. Effect/purity analysis — possible integer-division traps, order
///      sensitivity, FP-fold nondeterminism, and associativity
///      classification of every Agg combiner. Its verdict is the
///      SafetyCertificate that plinq::/dryad:: consult before fan-out.
///   3. Constant/range analysis — negative Take/Skip counts,
///      constant-false predicates (guaranteed-empty chains), dead
///      operators (ST3xxx).
///
/// The STENO_ANALYZE environment variable (off | warn | strict, default
/// strict) selects the enforcement mode for compileQuery/compileChain.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_ANALYSIS_ANALYSIS_H
#define STENO_ANALYSIS_ANALYSIS_H

#include "analysis/Diagnostics.h"
#include "quil/Quil.h"

#include <string>
#include <vector>

namespace steno {
namespace analysis {

/// Enforcement mode for the analyze phase.
enum class Mode {
  Off,   ///< Skip analysis entirely.
  Warn,  ///< Run and report; never reject.
  Strict ///< Run and reject queries with error-severity findings.
};

/// Reads STENO_ANALYZE (off | warn | strict); unset or unrecognized
/// values yield Strict, the safe default: a query this phase rejects
/// would have failed later inside the JIT'd C++ anyway, with a worse
/// message and after paying compiler latency.
Mode modeFromEnv();

/// Spelling for logs ("off" | "warn" | "strict").
const char *modeName(Mode M);

/// Associativity classification of one aggregation's combiner, used to
/// gate HomomorphicApply / partial aggregation (§6).
enum class AggClass {
  NoCombiner,      ///< No combiner at all: cannot be split.
  NonAssociative,  ///< Provably non-associative (e.g. a - b): must not
                   ///< be split.
  Trusted,         ///< User-supplied, shape not recognized: trusted as
                   ///< declared, flagged ST2006.
  Associative,     ///< Recognized associative (e.g. pairwise min-merge).
  AssociativeCommutative ///< Recognized associative and commutative
                   ///< (+, *, min, max, &&, ||, and pairs thereof).
};

const char *aggClassName(AggClass C);

/// The parallel-safety certificate: the effect pass's verdict on whether
/// fan-out over partitions preserves sequential semantics. dryad::
/// DistributedQuery (and its multi-core PLINQ path) refuse to parallelize
/// uncertified queries and fall back to sequential execution.
struct SafetyCertificate {
  /// No expression can trap at run time (integer division/modulo with a
  /// divisor not provably nonzero is the trap source in this language).
  bool Pure = true;
  /// Contains an operator whose meaning depends on global element order
  /// (Take/Skip/TakeWhile/SkipWhile; First without a total order).
  bool OrderSensitive = false;
  /// Parallel folding would reassociate floating-point accumulation;
  /// results remain deterministic for a fixed partition count but may
  /// differ from the sequential rounding (informational, not gating).
  bool FpReassociation = false;
  /// Classification of every Agg/GroupByAggregate combiner in the chain,
  /// top-level chain order.
  std::vector<AggClass> AggClasses;

  /// True when no combiner is provably non-associative.
  bool combinersAssociative() const {
    for (AggClass C : AggClasses)
      if (C == AggClass::NonAssociative)
        return false;
    return true;
  }

  /// The fan-out gate: pure, order-insensitive, and no provably broken
  /// combiner. (FpReassociation is reported but does not revoke the
  /// certificate — the paper's §6 semantics accept FP partial sums.)
  bool parallelSafe() const {
    return Pure && !OrderSensitive && combinersAssociative();
  }

  /// The cross-process split gate the shard router consults (§6 over
  /// processes instead of threads). Identical to parallelSafe(), except
  /// that a router running in strict-FP mode additionally refuses
  /// splits that would reassociate floating-point accumulation: within
  /// one process a fixed worker count keeps FP partials deterministic,
  /// but across a resizable shard fleet the partial count is an
  /// operational choice, so strict deployments can demand bit-equal
  /// results instead of §6's accept-the-reassociation default.
  bool shardSafe(bool StrictFp = false) const {
    return parallelSafe() && (!StrictFp || !FpReassociation);
  }

  /// Human-readable one-liner, e.g.
  /// "pure, order-insensitive, combiners ok -> parallel-safe".
  std::string str() const;
};

/// Everything the analyze phase produced.
struct AnalysisResult {
  DiagnosticBag Diags;
  SafetyCertificate Cert;

  bool ok() const { return !Diags.hasErrors(); }
};

/// Runs all three passes over a validated chain. The chain must have
/// passed quil::validate (the passes assume grammatical shape).
AnalysisResult analyzeChain(const quil::Chain &C);

//===--------------------------------------------------------------------===//
// Individual passes (exposed for targeted tests; analyzeChain runs all)
//===--------------------------------------------------------------------===//

void runTypeCheck(const quil::Chain &C, DiagnosticBag &Diags);
void runEffectAnalysis(const quil::Chain &C, DiagnosticBag &Diags,
                       SafetyCertificate &Cert);
void runConstRange(const quil::Chain &C, DiagnosticBag &Diags);

} // namespace analysis
} // namespace steno

#endif // STENO_ANALYSIS_ANALYSIS_H
