//===- analysis/Effects.cpp - Effect/purity analysis (ST2xxx) --*- C++ -*-===//
///
/// \file
/// Computes the SafetyCertificate: can this chain be fanned out across
/// partitions (paper §6) without changing its sequential meaning?
///
/// Three properties are derived:
///
///  - Purity: the only trap source in the expression language is integer
///    division/modulo (double division is IEEE-defined: inf/nan, no trap).
///    A divisor that is provably a nonzero constant is safe; a constant
///    zero is a hard error; anything else downgrades the chain to impure
///    with a warning — a trap inside one partition of a parallel run
///    tears down the process at a nondeterministic point.
///
///  - Order sensitivity: Take/Skip/TakeWhile/SkipWhile consume a global
///    element order that partitioning destroys. Only *top-level* operators
///    count: a nested query executes wholly within one outer element, so
///    its internal order survives fan-out intact.
///
///  - Combiner classification: each top-level aggregation's combiner is
///    structurally matched against shapes known associative (+, *, &&,
///    ||, min/max selects, and pairs thereof — exactly what Lower.cpp
///    synthesizes). A provably non-associative shape (a - b) revokes the
///    certificate; an unrecognized user shape is trusted but flagged.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "analysis/ChainWalk.h"
#include "expr/Fold.h"

#include <string>

using namespace steno;
using namespace steno::analysis;
using namespace steno::analysis::detail;
using expr::BinaryOp;
using expr::Expr;
using expr::ExprKind;
using expr::ExprRef;
using expr::Lambda;
using expr::TypeRef;
using quil::Chain;
using quil::Op;
using quil::PredOp;
using quil::SinkOp;
using quil::Sym;

namespace {

/// True when \p E is the combiner atom: \p Proj pair projections
/// (outermost first) applied to the parameter named \p Param.
bool isAtom(const ExprRef &E, const std::string &Param,
            const std::vector<ExprKind> &Proj) {
  const Expr *Cur = E.get();
  for (ExprKind K : Proj) {
    if (Cur->kind() != K)
      return false;
    Cur = Cur->operand(0).get();
  }
  return Cur->kind() == ExprKind::Param && Cur->paramName() == Param;
}

/// Weaker of two recognized classes (AssocComm beats Assoc).
AggClass meet(AggClass X, AggClass Y) {
  auto Rank = [](AggClass C) {
    switch (C) {
    case AggClass::AssociativeCommutative:
      return 4;
    case AggClass::Associative:
      return 3;
    case AggClass::Trusted:
      return 2;
    case AggClass::NonAssociative:
      return 1;
    case AggClass::NoCombiner:
      return 0;
    }
    return 0;
  };
  return Rank(X) <= Rank(Y) ? X : Y;
}

/// Structural classification of a combiner body whose "a" and "b" values
/// are \p Proj applied to the parameters \p A / \p B. Recursing into
/// PairNew prepends the component projection.
AggClass classifyBody(const ExprRef &E, const std::string &A,
                      const std::string &B, std::vector<ExprKind> Proj) {
  auto IsA = [&](const ExprRef &X) { return isAtom(X, A, Proj); };
  auto IsB = [&](const ExprRef &X) { return isAtom(X, B, Proj); };
  auto IsAtomPair = [&](const ExprRef &X, const ExprRef &Y) {
    return (IsA(X) && IsB(Y)) || (IsA(Y) && IsB(X));
  };

  switch (E->kind()) {
  case ExprKind::Binary: {
    const ExprRef &L = E->operand(0), &R = E->operand(1);
    if (!IsAtomPair(L, R))
      return AggClass::Trusted;
    switch (E->binaryOp()) {
    case BinaryOp::Add:
    case BinaryOp::Mul:
    case BinaryOp::And:
    case BinaryOp::Or:
      return AggClass::AssociativeCommutative;
    case BinaryOp::Sub:
    case BinaryOp::Div:
    case BinaryOp::Mod:
      return AggClass::NonAssociative;
    default:
      return AggClass::Trusted;
    }
  }
  case ExprKind::Call:
    // std::min / std::max over the two accumulators.
    if ((E->builtin() == expr::Builtin::Min ||
         E->builtin() == expr::Builtin::Max) &&
        E->operands().size() == 2 &&
        IsAtomPair(E->operand(0), E->operand(1)))
      return AggClass::AssociativeCommutative;
    return AggClass::Trusted;
  case ExprKind::Cond: {
    // cond(cmp(x, y), t, f) with {x,y} = {t,f} = {a,b}: a min/max select.
    const ExprRef &C = E->operand(0);
    if (C->kind() == ExprKind::Binary && expr::isComparison(C->binaryOp()) &&
        !(C->binaryOp() == BinaryOp::Eq || C->binaryOp() == BinaryOp::Ne) &&
        IsAtomPair(C->operand(0), C->operand(1)) &&
        IsAtomPair(E->operand(1), E->operand(2)))
      return AggClass::AssociativeCommutative;
    return AggClass::Trusted;
  }
  case ExprKind::PairNew: {
    std::vector<ExprKind> FirstProj = Proj, SecondProj = Proj;
    FirstProj.insert(FirstProj.begin(), ExprKind::PairFirst);
    SecondProj.insert(SecondProj.begin(), ExprKind::PairSecond);
    AggClass C1 = classifyBody(E->operand(0), A, B, std::move(FirstProj));
    AggClass C2 = classifyBody(E->operand(1), A, B, std::move(SecondProj));
    if (C1 == AggClass::NonAssociative || C2 == AggClass::NonAssociative)
      return AggClass::NonAssociative;
    if (C1 == AggClass::Trusted || C2 == AggClass::Trusted)
      return AggClass::Trusted;
    return meet(C1, C2);
  }
  default:
    return AggClass::Trusted;
  }
}

AggClass classifyCombiner(const Lambda &L) {
  if (!L.valid())
    return AggClass::NoCombiner;
  if (L.arity() != 2)
    return AggClass::Trusted; // shape error; TypeCheck already flagged it
  return classifyBody(L.body(), L.param(0).Name, L.param(1).Name, {});
}

/// Does \p Ty contain a double component (parallel folding of such an
/// accumulator reassociates FP addition)?
bool containsDouble(const TypeRef &Ty) {
  if (!Ty)
    return false;
  if (Ty->isDouble() || Ty->isVec())
    return true;
  if (Ty->isPair())
    return containsDouble(Ty->first()) || containsDouble(Ty->second());
  return false;
}

class EffectAnalyzer {
public:
  EffectAnalyzer(DiagnosticBag &Diags, SafetyCertificate &Cert)
      : Diags(Diags), Cert(Cert) {}

  void run(const Chain &C) { walkChain(C, /*TopLevel=*/true); }

private:
  DiagnosticBag &Diags;
  SafetyCertificate &Cert;
  std::vector<unsigned> Path;

  /// Flags possible integer-division traps in every expression of \p O.
  void checkPurity(unsigned I, const Op &O) {
    for (const RoleExpr &RE : roleExprs(O)) {
      std::vector<unsigned> EP;
      walkExpr(RE.expr(), EP, [&](const Expr &E,
                                  const std::vector<unsigned> &At) {
        if (E.kind() != ExprKind::Binary)
          return;
        if (E.binaryOp() != BinaryOp::Div && E.binaryOp() != BinaryOp::Mod)
          return;
        if (!E.type()->isInt64())
          return; // double division is IEEE-defined, not a trap
        ExprRef Divisor = expr::foldConstants(E.operand(1));
        if (Divisor->kind() == ExprKind::Const) {
          if (std::get<std::int64_t>(Divisor->constValue()) == 0) {
            Diags.report(DiagCode::DivByZero, Severity::Error,
                         opLoc(Path, I, RE.Role, At),
                         "integer division by constant zero");
            Cert.Pure = false;
          }
          return; // nonzero constant divisor: provably safe
        }
        Diags.report(DiagCode::DivByZero, Severity::Warning,
                     opLoc(Path, I, RE.Role, At),
                     "integer division with a divisor not provably "
                     "nonzero may trap at run time");
        Cert.Pure = false;
      });
    }
  }

  void classifyAggregation(unsigned I, const Op &O) {
    AggClass C = classifyCombiner(O.Combine);
    Cert.AggClasses.push_back(C);
    switch (C) {
    case AggClass::NoCombiner:
      Diags.report(DiagCode::NoCombiner, Severity::Note, opLoc(Path, I),
                   "aggregation has no combiner and cannot be split "
                   "across partitions");
      break;
    case AggClass::NonAssociative:
      Diags.report(DiagCode::NonAssociativeCombiner, Severity::Warning,
                   opLoc(Path, I, ExprRole::Combine),
                   "combiner is provably non-associative; partial "
                   "aggregation would change the result");
      break;
    case AggClass::Trusted:
      Diags.report(DiagCode::UnverifiedCombiner, Severity::Note,
                   opLoc(Path, I, ExprRole::Combine),
                   "combiner shape not recognized as associative; "
                   "trusted as declared");
      break;
    case AggClass::Associative:
    case AggClass::AssociativeCommutative:
      break;
    }
    if (C != AggClass::NoCombiner && O.Seed &&
        containsDouble(O.Seed->type()) && !Cert.FpReassociation) {
      Cert.FpReassociation = true;
      Diags.report(DiagCode::FpFoldReassociation, Severity::Note,
                   opLoc(Path, I, ExprRole::Combine),
                   "parallel folding reassociates floating-point "
                   "accumulation; rounding may differ from the "
                   "sequential result");
    }
  }

  void walkChain(const Chain &C, bool TopLevel) {
    for (unsigned I = 0; I != C.Ops.size(); ++I) {
      const Op &O = C.Ops[I];
      checkPurity(I, O);

      if (TopLevel && O.S == Sym::Pred && O.P != PredOp::Where) {
        Cert.OrderSensitive = true;
        Diags.report(DiagCode::OrderSensitive, Severity::Note,
                     opLoc(Path, I),
                     std::string("operator depends on the global element "
                                 "order, which partitioning destroys"));
      }
      if (TopLevel &&
          (O.S == Sym::Agg ||
           (O.S == Sym::Sink && O.K == SinkOp::GroupByAggregate)))
        classifyAggregation(I, O);

      if (O.S == Sym::Nested && O.NestedChain) {
        // A nested query runs to completion inside a single outer
        // element: only purity propagates outward; its order and
        // combiners are partition-local.
        Path.push_back(I);
        walkChain(*O.NestedChain, /*TopLevel=*/false);
        Path.pop_back();
      }
    }
  }
};

} // namespace

void analysis::runEffectAnalysis(const Chain &C, DiagnosticBag &Diags,
                                 SafetyCertificate &Cert) {
  EffectAnalyzer(Diags, Cert).run(C);
}
