//===- analysis/Diagnostics.cpp -------------------------------*- C++ -*-===//

#include "analysis/Diagnostics.h"
#include "obs/Metrics.h"
#include "support/Error.h"

using namespace steno;
using namespace steno::analysis;

const char *analysis::diagCodeName(DiagCode Code) {
  switch (Code) {
  case DiagCode::BadArity:
    return "ST1001";
  case DiagCode::ParamTypeMismatch:
    return "ST1002";
  case DiagCode::ResultTypeMismatch:
    return "ST1003";
  case DiagCode::PredicateNotBool:
    return "ST1004";
  case DiagCode::CountNotInt64:
    return "ST1005";
  case DiagCode::SeedTypeMismatch:
    return "ST1006";
  case DiagCode::CaptureSlotOutOfBounds:
    return "ST1007";
  case DiagCode::SourceSlotOutOfBounds:
    return "ST1008";
  case DiagCode::UnboundParam:
    return "ST1009";
  case DiagCode::BadCombiner:
    return "ST1010";
  case DiagCode::ElemTypeMismatch:
    return "ST1011";
  case DiagCode::KeyNotInt64:
    return "ST1012";
  case DiagCode::DivByZero:
    return "ST2001";
  case DiagCode::OrderSensitive:
    return "ST2002";
  case DiagCode::NoCombiner:
    return "ST2003";
  case DiagCode::FpFoldReassociation:
    return "ST2004";
  case DiagCode::NonAssociativeCombiner:
    return "ST2005";
  case DiagCode::UnverifiedCombiner:
    return "ST2006";
  case DiagCode::NegativeCount:
    return "ST3001";
  case DiagCode::AlwaysFalsePred:
    return "ST3002";
  case DiagCode::AlwaysTruePred:
    return "ST3003";
  case DiagCode::TakeZero:
    return "ST3004";
  case DiagCode::DeadOperator:
    return "ST3005";
  case DiagCode::RewritePredDropped:
    return "ST4001";
  case DiagCode::RewriteEmptyCollapse:
    return "ST4002";
  case DiagCode::RewriteDeadOpRemoved:
    return "ST4003";
  case DiagCode::RewriteTakeSkipFolded:
    return "ST4004";
  case DiagCode::RewritePredReordered:
    return "ST4005";
  case DiagCode::RewriteTrapElided:
    return "ST4006";
  }
  stenoUnreachable("bad DiagCode");
}

const char *analysis::diagCodeSummary(DiagCode Code) {
  switch (Code) {
  case DiagCode::BadArity:
    return "lambda has the wrong parameter count";
  case DiagCode::ParamTypeMismatch:
    return "lambda parameter type does not match the incoming element";
  case DiagCode::ResultTypeMismatch:
    return "lambda result type does not match the operator output";
  case DiagCode::PredicateNotBool:
    return "predicate lambda does not return bool";
  case DiagCode::CountNotInt64:
    return "Take/Skip count expression is not int64";
  case DiagCode::SeedTypeMismatch:
    return "aggregation seed type does not match the accumulator";
  case DiagCode::CaptureSlotOutOfBounds:
    return "capture slot index exceeds MaxCaptureSlots";
  case DiagCode::SourceSlotOutOfBounds:
    return "source slot index exceeds MaxSourceSlots";
  case DiagCode::UnboundParam:
    return "expression references a parameter no enclosing lambda binds";
  case DiagCode::BadCombiner:
    return "combiner is not (acc, acc) -> acc";
  case DiagCode::ElemTypeMismatch:
    return "operator input type does not match the upstream output";
  case DiagCode::KeyNotInt64:
    return "group key selector does not return int64";
  case DiagCode::DivByZero:
    return "integer division or modulo may trap on a zero divisor";
  case DiagCode::OrderSensitive:
    return "operator depends on global element order";
  case DiagCode::NoCombiner:
    return "aggregate has no associative combiner";
  case DiagCode::FpFoldReassociation:
    return "parallel execution reassociates floating-point accumulation";
  case DiagCode::NonAssociativeCombiner:
    return "combiner is provably non-associative";
  case DiagCode::UnverifiedCombiner:
    return "user combiner associativity is trusted, not verified";
  case DiagCode::NegativeCount:
    return "Take/Skip count is a negative constant";
  case DiagCode::AlwaysFalsePred:
    return "predicate is constant false; the chain is guaranteed empty";
  case DiagCode::AlwaysTruePred:
    return "predicate is constant true; the operator is a no-op";
  case DiagCode::TakeZero:
    return "Take 0 makes the chain guaranteed empty";
  case DiagCode::DeadOperator:
    return "operator only ever sees an empty input";
  case DiagCode::RewritePredDropped:
    return "rewriter removed an always-true predicate";
  case DiagCode::RewriteEmptyCollapse:
    return "rewriter collapsed an always-false predicate to an empty chain";
  case DiagCode::RewriteDeadOpRemoved:
    return "rewriter eliminated a provably dead operator";
  case DiagCode::RewriteTakeSkipFolded:
    return "rewriter folded or merged Take/Skip counts";
  case DiagCode::RewritePredReordered:
    return "rewriter reordered adjacent predicates by cost and selectivity";
  case DiagCode::RewriteTrapElided:
    return "rewriter elided a division trap check proven unnecessary";
  }
  stenoUnreachable("bad DiagCode");
}

const char *analysis::exprRoleName(ExprRole Role) {
  switch (Role) {
  case ExprRole::None:
    return "";
  case ExprRole::Fn:
    return "Fn";
  case ExprRole::Fn2:
    return "Fn2";
  case ExprRole::Fn3:
    return "Fn3";
  case ExprRole::Combine:
    return "Combine";
  case ExprRole::StopWhen:
    return "StopWhen";
  case ExprRole::Seed:
    return "Seed";
  case ExprRole::DenseKeys:
    return "DenseKeys";
  case ExprRole::SrcStart:
    return "Src.Start";
  case ExprRole::SrcCount:
    return "Src.Count";
  case ExprRole::SrcVec:
    return "Src.Vec";
  }
  stenoUnreachable("bad ExprRole");
}

std::string DiagLoc::str() const {
  std::string Out = "op #";
  if (OpPath.empty())
    Out += "?";
  for (std::size_t I = 0; I != OpPath.size(); ++I) {
    if (I)
      Out += ".";
    Out += std::to_string(OpPath[I]);
  }
  if (Role != ExprRole::None) {
    Out += " ";
    Out += exprRoleName(Role);
    if (!ExprPath.empty()) {
      Out += "@[";
      for (std::size_t I = 0; I != ExprPath.size(); ++I) {
        if (I)
          Out += ",";
        Out += std::to_string(ExprPath[I]);
      }
      Out += "]";
    }
  }
  return Out;
}

static const char *severityName(Severity Sev) {
  switch (Sev) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  stenoUnreachable("bad Severity");
}

std::string Diagnostic::render() const {
  std::string Out = severityName(Sev);
  Out += " [";
  Out += diagCodeName(Code);
  Out += "] ";
  Out += Loc.str();
  Out += ": ";
  Out += Message;
  return Out;
}

void DiagnosticBag::report(DiagCode Code, Severity Sev, DiagLoc Loc,
                           std::string Message) {
  obs::counter(std::string("analysis.diag.") + diagCodeName(Code)).inc();
  if (Sev == Severity::Error)
    ++Errors;
  else if (Sev == Severity::Warning)
    ++Warnings;
  Diags.push_back(
      Diagnostic{Code, Sev, std::move(Loc), std::move(Message)});
}

bool DiagnosticBag::has(DiagCode Code) const {
  return find(Code) != nullptr;
}

const Diagnostic *DiagnosticBag::find(DiagCode Code) const {
  for (const Diagnostic &D : Diags)
    if (D.Code == Code)
      return &D;
  return nullptr;
}

std::string DiagnosticBag::render(Severity MinSev) const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    if (D.Sev < MinSev)
      continue;
    Out += "  " + D.render() + "\n";
  }
  return Out;
}
