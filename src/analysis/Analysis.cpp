//===- analysis/Analysis.cpp - Pass driver ---------------------*- C++ -*-===//

#include "analysis/Analysis.h"
#include "obs/Metrics.h"
#include "support/Error.h"
#include "support/StringUtil.h"

#include <cstdlib>
#include <cstring>

using namespace steno;
using namespace steno::analysis;

Mode analysis::modeFromEnv() {
  const char *Env = std::getenv("STENO_ANALYZE");
  if (!Env)
    return Mode::Strict;
  if (std::strcmp(Env, "off") == 0)
    return Mode::Off;
  if (std::strcmp(Env, "warn") == 0)
    return Mode::Warn;
  return Mode::Strict;
}

const char *analysis::modeName(Mode M) {
  switch (M) {
  case Mode::Off:
    return "off";
  case Mode::Warn:
    return "warn";
  case Mode::Strict:
    return "strict";
  }
  stenoUnreachable("bad Mode");
}

const char *analysis::aggClassName(AggClass C) {
  switch (C) {
  case AggClass::NoCombiner:
    return "no-combiner";
  case AggClass::NonAssociative:
    return "non-associative";
  case AggClass::Trusted:
    return "trusted";
  case AggClass::Associative:
    return "associative";
  case AggClass::AssociativeCommutative:
    return "associative-commutative";
  }
  stenoUnreachable("bad AggClass");
}

std::string SafetyCertificate::str() const {
  std::string Out;
  Out += Pure ? "pure" : "impure";
  Out += OrderSensitive ? ", order-sensitive" : ", order-insensitive";
  if (!AggClasses.empty()) {
    Out += ", combiners:";
    for (AggClass C : AggClasses) {
      Out += " ";
      Out += aggClassName(C);
    }
  }
  if (FpReassociation)
    Out += ", fp-reassociating";
  Out += parallelSafe() ? " -> parallel-safe" : " -> sequential-only";
  return Out;
}

AnalysisResult analysis::analyzeChain(const quil::Chain &C) {
  static obs::Counter &Chains = obs::counter("analysis.chains");
  static obs::Counter &Certified =
      obs::counter("analysis.certified.parallel");
  static obs::Counter &Rejected = obs::counter("analysis.rejected");

  AnalysisResult R;
  runTypeCheck(C, R.Diags);
  runEffectAnalysis(C, R.Diags, R.Cert);
  runConstRange(C, R.Diags);

  Chains.inc();
  if (R.Cert.parallelSafe())
    Certified.inc();
  if (R.Diags.hasErrors())
    Rejected.inc();
  return R;
}
