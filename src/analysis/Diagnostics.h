//===- analysis/Diagnostics.h - Structured query diagnostics ---*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The diagnostics engine backing the static-analysis pipeline: stable
/// error codes, severities, and locations that name the failing operator
/// (by chain index at each nesting depth) and the failing expression (by
/// operand path inside one of the operator's lambdas). Analyses report
/// into a DiagnosticBag; the compile pipeline renders the bag and decides
/// (per STENO_ANALYZE mode) whether to reject the query.
///
/// Every emission also increments an `analysis.diag.<CODE>` obs counter,
/// so fleets of queries can be monitored for which lints actually fire.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_ANALYSIS_DIAGNOSTICS_H
#define STENO_ANALYSIS_DIAGNOSTICS_H

#include <cstddef>
#include <string>
#include <vector>

namespace steno {
namespace analysis {

enum class Severity { Note, Warning, Error };

/// Stable diagnostic codes. The numeric bands group the producing pass:
///   ST1xxx type/arity checker, ST2xxx effect/purity analysis,
///   ST3xxx constant/range analysis. Codes are append-only; renumbering
/// an existing code is an API break (tests and dashboards key on them).
enum class DiagCode {
  // --- type/arity checker (ST1xxx) ---
  BadArity,           ///< ST1001 lambda has the wrong parameter count
  ParamTypeMismatch,  ///< ST1002 lambda parameter type != incoming element
  ResultTypeMismatch, ///< ST1003 lambda result type != operator output
  PredicateNotBool,   ///< ST1004 predicate lambda does not return bool
  CountNotInt64,      ///< ST1005 Take/Skip count expression is not int64
  SeedTypeMismatch,   ///< ST1006 Agg seed type != accumulator type
  CaptureSlotOutOfBounds, ///< ST1007 capture slot >= MaxCaptureSlots
  SourceSlotOutOfBounds,  ///< ST1008 source slot >= MaxSourceSlots
  UnboundParam,       ///< ST1009 free parameter not bound by any lambda
  BadCombiner,        ///< ST1010 combiner is not (acc, acc) -> acc
  ElemTypeMismatch,   ///< ST1011 operator input != upstream output type
  KeyNotInt64,        ///< ST1012 GroupBy key selector is not int64
  // --- effect/purity analysis (ST2xxx) ---
  DivByZero,          ///< ST2001 integer division/modulo by a zero divisor
  OrderSensitive,     ///< ST2002 operator depends on global element order
  NoCombiner,         ///< ST2003 aggregate lacks an associative combiner
  FpFoldReassociation,///< ST2004 parallel fold reassociates FP addition
  NonAssociativeCombiner, ///< ST2005 combiner is provably non-associative
  UnverifiedCombiner, ///< ST2006 user combiner associativity is trusted
  // --- constant/range analysis (ST3xxx) ---
  NegativeCount,      ///< ST3001 Take/Skip count is a negative constant
  AlwaysFalsePred,    ///< ST3002 predicate is constant false (empty chain)
  AlwaysTruePred,     ///< ST3003 predicate is constant true (no-op)
  TakeZero,           ///< ST3004 Take 0 yields a guaranteed-empty chain
  DeadOperator,       ///< ST3005 operator is unreachable (empty input)
  // --- plan rewriter (ST4xxx) ---
  RewritePredDropped,   ///< ST4001 always-true predicate removed
  RewriteEmptyCollapse, ///< ST4002 always-false predicate collapsed chain
  RewriteDeadOpRemoved, ///< ST4003 provably dead operator eliminated
  RewriteTakeSkipFolded,///< ST4004 Take/Skip count folded or merged
  RewritePredReordered, ///< ST4005 adjacent predicates reordered by cost
  RewriteTrapElided     ///< ST4006 division trap check proven unnecessary
};

/// The stable spelling, e.g. "ST1001".
const char *diagCodeName(DiagCode Code);
/// One-line summary of the code (used in rendered headers and docs).
const char *diagCodeSummary(DiagCode Code);

/// Which expression of a quil::Op a diagnostic points into.
enum class ExprRole {
  None,     ///< The operator as a whole.
  Fn,       ///< Trans fn / predicate / key selector.
  Fn2,      ///< Aggregation step (acc, elem) -> acc.
  Fn3,      ///< Result selector.
  Combine,  ///< Associative combiner.
  StopWhen, ///< Early-exit condition.
  Seed,     ///< Agg seed or Take/Skip count.
  DenseKeys,///< Dense sink key bound.
  SrcStart, ///< Range source start.
  SrcCount, ///< Range source count.
  SrcVec    ///< VecExpr source expression.
};

const char *exprRoleName(ExprRole Role);

/// Location of a diagnostic: the operator, named by its chain index at
/// every nesting depth (outermost first — {1, 0} is "operator 0 of the
/// nested chain carried by top-level operator 1"), plus an optional
/// expression path (operand indices from the role expression's root).
struct DiagLoc {
  std::vector<unsigned> OpPath;
  ExprRole Role = ExprRole::None;
  std::vector<unsigned> ExprPath;

  /// Nesting depth of the operator (0 = top-level chain).
  std::size_t depth() const { return OpPath.empty() ? 0 : OpPath.size() - 1; }
  /// Index of the operator within its own chain.
  unsigned opIndex() const { return OpPath.empty() ? 0 : OpPath.back(); }

  /// Renders as "op #2" / "op #1.0 Fn@[1,0]" (nested path dot-joined).
  std::string str() const;

  friend bool operator==(const DiagLoc &A, const DiagLoc &B) {
    return A.OpPath == B.OpPath && A.Role == B.Role &&
           A.ExprPath == B.ExprPath;
  }
};

/// One finding, fully renderable on its own.
struct Diagnostic {
  DiagCode Code = DiagCode::BadArity;
  Severity Sev = Severity::Error;
  DiagLoc Loc;
  std::string Message;

  /// "error [ST3001] op #1: Take count is the negative constant -3".
  std::string render() const;
};

/// Accumulates findings across passes. Reporting is append-only; the
/// compile pipeline inspects hasErrors() to decide rejection.
class DiagnosticBag {
public:
  /// Records a finding and bumps its `analysis.diag.<CODE>` counter.
  void report(DiagCode Code, Severity Sev, DiagLoc Loc, std::string Message);

  const std::vector<Diagnostic> &all() const { return Diags; }
  bool empty() const { return Diags.empty(); }
  std::size_t size() const { return Diags.size(); }

  bool hasErrors() const { return Errors != 0; }
  std::size_t errorCount() const { return Errors; }
  std::size_t warningCount() const { return Warnings; }

  /// True if any recorded diagnostic carries \p Code.
  bool has(DiagCode Code) const;
  /// First diagnostic with \p Code, or nullptr.
  const Diagnostic *find(DiagCode Code) const;

  /// All findings rendered one per line, severity-ordered as reported.
  /// \p MinSev filters (e.g. Warning hides the Note-level cert trail).
  std::string render(Severity MinSev = Severity::Note) const;

private:
  std::vector<Diagnostic> Diags;
  std::size_t Errors = 0;
  std::size_t Warnings = 0;
};

} // namespace analysis
} // namespace steno

#endif // STENO_ANALYSIS_DIAGNOSTICS_H
