//===- analysis/AbsInt.cpp - Abstract interpretation over QUIL -*- C++ -*-===//

#include "analysis/AbsInt.h"
#include "analysis/ChainWalk.h"
#include "support/StringUtil.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>

using namespace steno;
using namespace steno::analysis;
using namespace steno::analysis::absint;
using expr::BinaryOp;
using expr::Builtin;
using expr::ExprKind;
using expr::ExprRef;
using expr::TypeRef;
using expr::UnaryOp;
using quil::Chain;
using quil::Op;
using quil::PredOp;
using quil::SinkOp;
using quil::Sym;

//===----------------------------------------------------------------------===//
// Interval domain
//===----------------------------------------------------------------------===//

namespace {

bool addOv(std::int64_t A, std::int64_t B, std::int64_t &R) {
  return __builtin_add_overflow(A, B, &R);
}
bool subOv(std::int64_t A, std::int64_t B, std::int64_t &R) {
  return __builtin_sub_overflow(A, B, &R);
}
bool mulOv(std::int64_t A, std::int64_t B, std::int64_t &R) {
  return __builtin_mul_overflow(A, B, &R);
}

std::string boundStr(std::int64_t V) {
  if (V == INT64_MIN)
    return "-inf";
  if (V == INT64_MAX)
    return "+inf";
  return std::to_string(V);
}

} // namespace

Interval Interval::join(const Interval &A, const Interval &B) {
  return Interval{std::min(A.Lo, B.Lo), std::max(A.Hi, B.Hi)};
}

std::optional<Interval> Interval::meet(const Interval &A, const Interval &B) {
  Interval R{std::max(A.Lo, B.Lo), std::min(A.Hi, B.Hi)};
  if (R.Lo > R.Hi)
    return std::nullopt;
  return R;
}

Interval Interval::widen(const Interval &Prev, const Interval &Next) {
  return Interval{Next.Lo < Prev.Lo ? INT64_MIN : Prev.Lo,
                  Next.Hi > Prev.Hi ? INT64_MAX : Prev.Hi};
}

Interval Interval::add(const Interval &A, const Interval &B) {
  Interval R;
  if (addOv(A.Lo, B.Lo, R.Lo) || addOv(A.Hi, B.Hi, R.Hi))
    return full();
  return R;
}

Interval Interval::sub(const Interval &A, const Interval &B) {
  Interval R;
  if (subOv(A.Lo, B.Hi, R.Lo) || subOv(A.Hi, B.Lo, R.Hi))
    return full();
  return R;
}

Interval Interval::neg(const Interval &A) {
  // -INT64_MIN overflows: saturate rather than wrap.
  if (A.Lo == INT64_MIN)
    return full();
  return Interval{-A.Hi, -A.Lo};
}

Interval Interval::mul(const Interval &A, const Interval &B) {
  const std::int64_t As[2] = {A.Lo, A.Hi};
  const std::int64_t Bs[2] = {B.Lo, B.Hi};
  std::int64_t Lo = INT64_MAX, Hi = INT64_MIN;
  for (std::int64_t X : As)
    for (std::int64_t Y : Bs) {
      std::int64_t P;
      if (mulOv(X, Y, P))
        return full();
      Lo = std::min(Lo, P);
      Hi = std::max(Hi, P);
    }
  return Interval{Lo, Hi};
}

Interval Interval::div(const Interval &A, const Interval &B) {
  if (!B.excludesZero())
    return full();
  const std::int64_t As[2] = {A.Lo, A.Hi};
  const std::int64_t Bs[2] = {B.Lo, B.Hi};
  std::int64_t Lo = INT64_MAX, Hi = INT64_MIN;
  for (std::int64_t X : As)
    for (std::int64_t Y : Bs) {
      if (X == INT64_MIN && Y == -1)
        return full(); // the overflow corner ckdiv also traps on
      std::int64_t Q = X / Y;
      Lo = std::min(Lo, Q);
      Hi = std::max(Hi, Q);
    }
  return Interval{Lo, Hi};
}

Interval Interval::rem(const Interval &A, const Interval &B) {
  if (!B.excludesZero())
    return full();
  // |a % b| < |b|, and the result has the sign of a (C++ semantics).
  std::int64_t MagLo = std::min(std::llabs(B.Lo == INT64_MIN ? INT64_MAX
                                                             : B.Lo),
                                std::llabs(B.Hi == INT64_MIN ? INT64_MAX
                                                             : B.Hi));
  std::int64_t Mag = std::max(std::llabs(B.Lo == INT64_MIN ? INT64_MAX
                                                           : B.Lo),
                              std::llabs(B.Hi == INT64_MIN ? INT64_MAX
                                                           : B.Hi));
  (void)MagLo;
  std::int64_t M = Mag - 1;
  Interval R{A.Lo >= 0 ? 0 : -M, A.Hi <= 0 ? 0 : M};
  // A value already smaller in magnitude than every divisor is unchanged.
  if (A.Lo > -Mag && A.Hi < Mag)
    if (auto Tight = meet(R, A))
      return *Tight;
  return R;
}

Interval Interval::absI(const Interval &A) {
  if (A.Lo == INT64_MIN)
    return full(); // abs(INT64_MIN) overflows
  std::int64_t L = std::llabs(A.Lo), H = std::llabs(A.Hi);
  return Interval{A.Lo <= 0 && A.Hi >= 0 ? 0 : std::min(L, H),
                  std::max(L, H)};
}

Interval Interval::minI(const Interval &A, const Interval &B) {
  return Interval{std::min(A.Lo, B.Lo), std::min(A.Hi, B.Hi)};
}

Interval Interval::maxI(const Interval &A, const Interval &B) {
  return Interval{std::max(A.Lo, B.Lo), std::max(A.Hi, B.Hi)};
}

std::string Interval::str() const {
  return "[" + boundStr(Lo) + ", " + boundStr(Hi) + "]";
}

//===----------------------------------------------------------------------===//
// AbsVal
//===----------------------------------------------------------------------===//

AbsVal AbsVal::topFor(const TypeRef &Ty) {
  if (!Ty)
    return top();
  if (Ty->isInt64())
    return fromInterval(Interval::full());
  if (Ty->isDouble())
    return unknownDouble();
  if (Ty->isBool())
    return fromTri(Tri::Unknown);
  return top();
}

AbsVal AbsVal::join(const AbsVal &A, const AbsVal &B) {
  if (A.K != B.K)
    return top();
  switch (A.K) {
  case Kind::Top:
    return top();
  case Kind::Int: {
    AbsVal R = fromInterval(Interval::join(A.I, B.I));
    R.NonZero = (A.NonZero || A.I.excludesZero()) &&
                (B.NonZero || B.I.excludesZero());
    return R;
  }
  case Kind::Bool:
    return fromTri(A.B == B.B ? A.B : Tri::Unknown);
  case Kind::Dbl:
    if (A.HasD && B.HasD &&
        (A.D == B.D || (std::isnan(A.D) && std::isnan(B.D))))
      return A;
    return unknownDouble();
  }
  return top();
}

std::string AbsVal::str() const {
  switch (K) {
  case Kind::Top:
    return "top";
  case Kind::Int:
    return I.str() + (NonZero && !I.excludesZero() ? " nonzero" : "");
  case Kind::Bool:
    return B == Tri::True ? "true" : B == Tri::False ? "false" : "bool?";
  case Kind::Dbl:
    return HasD ? support::strFormat("%g", D) : "double?";
  }
  return "top";
}

//===----------------------------------------------------------------------===//
// Abstract expression evaluation
//===----------------------------------------------------------------------===//

namespace {

BinaryOp negateCmp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Eq:
    return BinaryOp::Ne;
  case BinaryOp::Ne:
    return BinaryOp::Eq;
  case BinaryOp::Lt:
    return BinaryOp::Ge;
  case BinaryOp::Le:
    return BinaryOp::Gt;
  case BinaryOp::Gt:
    return BinaryOp::Le;
  case BinaryOp::Ge:
    return BinaryOp::Lt;
  default:
    return Op;
  }
}

BinaryOp flipCmp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Lt:
    return BinaryOp::Gt;
  case BinaryOp::Le:
    return BinaryOp::Ge;
  case BinaryOp::Gt:
    return BinaryOp::Lt;
  case BinaryOp::Ge:
    return BinaryOp::Le;
  default:
    return Op; // Eq/Ne are symmetric
  }
}

/// Three-valued comparison of two abstract values.
Tri compareVals(const AbsVal &A, const AbsVal &B, BinaryOp Op) {
  if (A.K == AbsVal::Kind::Int && B.K == AbsVal::Kind::Int) {
    const Interval &X = A.I;
    const Interval &Y = B.I;
    switch (Op) {
    case BinaryOp::Lt:
      if (X.Hi < Y.Lo)
        return Tri::True;
      if (X.Lo >= Y.Hi)
        return Tri::False;
      return Tri::Unknown;
    case BinaryOp::Le:
      if (X.Hi <= Y.Lo)
        return Tri::True;
      if (X.Lo > Y.Hi)
        return Tri::False;
      return Tri::Unknown;
    case BinaryOp::Gt:
      return compareVals(B, A, BinaryOp::Lt);
    case BinaryOp::Ge:
      return compareVals(B, A, BinaryOp::Le);
    case BinaryOp::Eq:
      if (X.isConst() && Y.isConst())
        return X.Lo == Y.Lo ? Tri::True : Tri::False;
      if (!Interval::meet(X, Y))
        return Tri::False;
      if (A.knownNonZero() && Y.isConst() && Y.Lo == 0)
        return Tri::False;
      if (B.knownNonZero() && X.isConst() && X.Lo == 0)
        return Tri::False;
      return Tri::Unknown;
    case BinaryOp::Ne:
      return triNot(compareVals(A, B, BinaryOp::Eq));
    default:
      return Tri::Unknown;
    }
  }
  if (A.K == AbsVal::Kind::Dbl && B.K == AbsVal::Kind::Dbl && A.HasD &&
      B.HasD) {
    switch (Op) {
    case BinaryOp::Lt:
      return A.D < B.D ? Tri::True : Tri::False;
    case BinaryOp::Le:
      return A.D <= B.D ? Tri::True : Tri::False;
    case BinaryOp::Gt:
      return A.D > B.D ? Tri::True : Tri::False;
    case BinaryOp::Ge:
      return A.D >= B.D ? Tri::True : Tri::False;
    case BinaryOp::Eq:
      return A.D == B.D ? Tri::True : Tri::False;
    case BinaryOp::Ne:
      return A.D != B.D ? Tri::True : Tri::False;
    default:
      return Tri::Unknown;
    }
  }
  if (A.K == AbsVal::Kind::Bool && B.K == AbsVal::Kind::Bool &&
      A.B != Tri::Unknown && B.B != Tri::Unknown) {
    bool Same = A.B == B.B;
    if (Op == BinaryOp::Eq)
      return Same ? Tri::True : Tri::False;
    if (Op == BinaryOp::Ne)
      return Same ? Tri::False : Tri::True;
  }
  return Tri::Unknown;
}

/// Recursive evaluator with operand-path tracking and an optional hook
/// invoked at every int64 division/modulo node.
struct Evaluator {
  using DivHook = std::function<void(
      const expr::Expr &Node, const std::vector<unsigned> &Path,
      const AbsVal &Dividend, const AbsVal &Divisor)>;

  const DivHook *Hook = nullptr;
  std::vector<unsigned> Path;

  AbsVal evalChild(const ExprRef &E, unsigned Idx, const Env &Environment) {
    Path.push_back(Idx);
    AbsVal V = eval(E, Environment);
    Path.pop_back();
    return V;
  }

  AbsVal eval(const ExprRef &E, const Env &Environment) {
    const expr::Expr &N = *E;
    switch (N.kind()) {
    case ExprKind::Const: {
      const expr::ConstValue &CV = N.constValue();
      if (std::holds_alternative<bool>(CV))
        return AbsVal::fromBool(std::get<bool>(CV));
      if (std::holds_alternative<std::int64_t>(CV))
        return AbsVal::fromInt(std::get<std::int64_t>(CV));
      return AbsVal::fromDouble(std::get<double>(CV));
    }
    case ExprKind::Param: {
      auto It = Environment.find(N.paramName());
      if (It != Environment.end())
        return It->second;
      return AbsVal::topFor(N.type());
    }
    case ExprKind::Capture:
      return AbsVal::topFor(N.type());
    case ExprKind::Convert: {
      AbsVal V = evalChild(N.operand(0), 0, Environment);
      if (N.type()->isDouble() && V.K == AbsVal::Kind::Int && V.I.isConst())
        return AbsVal::fromDouble(static_cast<double>(V.I.Lo));
      if (N.type()->isInt64() && V.K == AbsVal::Kind::Dbl && V.HasD) {
        // Only fold conversions that are in-range (out-of-range
        // double->int64 is UB at run time; leave those unknown).
        if (V.D >= -9.2233720368547758e18 && V.D < 9.2233720368547758e18 &&
            !std::isnan(V.D))
          return AbsVal::fromInt(static_cast<std::int64_t>(V.D));
        return AbsVal::topFor(N.type());
      }
      return AbsVal::topFor(N.type());
    }
    case ExprKind::Unary: {
      AbsVal V = evalChild(N.operand(0), 0, Environment);
      if (N.unaryOp() == UnaryOp::Not && V.K == AbsVal::Kind::Bool)
        return AbsVal::fromTri(triNot(V.B));
      if (N.unaryOp() == UnaryOp::Neg) {
        if (V.K == AbsVal::Kind::Int)
          return AbsVal::fromInterval(Interval::neg(V.I), V.NonZero);
        if (V.K == AbsVal::Kind::Dbl && V.HasD)
          return AbsVal::fromDouble(-V.D);
      }
      return AbsVal::topFor(N.type());
    }
    case ExprKind::Binary:
      return evalBinary(E, Environment);
    case ExprKind::Call:
      return evalCall(E, Environment);
    case ExprKind::Cond: {
      AbsVal C = evalChild(N.operand(0), 0, Environment);
      if (C.K == AbsVal::Kind::Bool && C.B == Tri::True)
        return evalChild(N.operand(1), 1, Environment);
      if (C.K == AbsVal::Kind::Bool && C.B == Tri::False)
        return evalChild(N.operand(2), 2, Environment);
      // Unknown condition: evaluate each arm under the branch's
      // refinement; an infeasible arm cannot execute and contributes
      // nothing to the join.
      Env TrueEnv = Environment;
      Env FalseEnv = Environment;
      bool TFeasible = refine(TrueEnv, N.operand(0), true);
      bool FFeasible = refine(FalseEnv, N.operand(0), false);
      if (TFeasible && !FFeasible)
        return evalChild(N.operand(1), 1, TrueEnv);
      if (!TFeasible && FFeasible)
        return evalChild(N.operand(2), 2, FalseEnv);
      AbsVal T = evalChild(N.operand(1), 1, TrueEnv);
      AbsVal F = evalChild(N.operand(2), 2, FalseEnv);
      return AbsVal::join(T, F);
    }
    case ExprKind::VecLen:
    case ExprKind::SourceLen:
      evalOperands(E, Environment);
      return AbsVal::fromInterval(Interval::of(0, INT64_MAX));
    case ExprKind::VecIndex:
      evalOperands(E, Environment);
      return AbsVal::unknownDouble();
    default:
      evalOperands(E, Environment);
      return AbsVal::topFor(N.type());
    }
  }

private:
  /// Evaluates operands for their division-site side effects only.
  void evalOperands(const ExprRef &E, const Env &Environment) {
    for (unsigned I = 0; I != E->operands().size(); ++I)
      evalChild(E->operand(I), I, Environment);
  }

  AbsVal evalBinary(const ExprRef &E, const Env &Environment) {
    const expr::Expr &N = *E;
    BinaryOp Op = N.binaryOp();

    // Short-circuit logic: the right operand only runs under the left's
    // gate, so it is scanned/evaluated in the refined environment.
    if (Op == BinaryOp::And || Op == BinaryOp::Or) {
      AbsVal L = evalChild(N.operand(0), 0, Environment);
      bool Gate = Op == BinaryOp::And; // value of L that reaches R
      if (L.K == AbsVal::Kind::Bool &&
          L.B == (Gate ? Tri::False : Tri::True))
        return L; // R never evaluates
      Env RightEnv = Environment;
      if (!refine(RightEnv, N.operand(0), Gate))
        return AbsVal::fromBool(!Gate); // L can never pass the gate
      AbsVal R = evalChild(N.operand(1), 1, RightEnv);
      Tri LB = L.K == AbsVal::Kind::Bool ? L.B : Tri::Unknown;
      Tri RB = R.K == AbsVal::Kind::Bool ? R.B : Tri::Unknown;
      if (Op == BinaryOp::And) {
        if (LB == Tri::False || RB == Tri::False)
          return AbsVal::fromBool(false);
        if (LB == Tri::True && RB == Tri::True)
          return AbsVal::fromBool(true);
      } else {
        if (LB == Tri::True || RB == Tri::True)
          return AbsVal::fromBool(true);
        if (LB == Tri::False && RB == Tri::False)
          return AbsVal::fromBool(false);
      }
      return AbsVal::fromTri(Tri::Unknown);
    }

    AbsVal L = evalChild(N.operand(0), 0, Environment);
    AbsVal R = evalChild(N.operand(1), 1, Environment);

    if (expr::isComparison(Op))
      return AbsVal::fromTri(compareVals(L, R, Op));

    if (N.type()->isInt64()) {
      Interval X = L.K == AbsVal::Kind::Int ? L.I : Interval::full();
      Interval Y = R.K == AbsVal::Kind::Int ? R.I : Interval::full();
      switch (Op) {
      case BinaryOp::Add:
        return AbsVal::fromInterval(Interval::add(X, Y));
      case BinaryOp::Sub:
        return AbsVal::fromInterval(Interval::sub(X, Y));
      case BinaryOp::Mul:
        return AbsVal::fromInterval(Interval::mul(X, Y));
      case BinaryOp::Div:
      case BinaryOp::Mod:
        if (Hook)
          (*Hook)(N, Path, L, R);
        return AbsVal::fromInterval(Op == BinaryOp::Div
                                        ? Interval::div(X, Y)
                                        : Interval::rem(X, Y));
      default:
        break;
      }
      return AbsVal::topFor(N.type());
    }

    if (N.type()->isDouble() && L.HasD && R.HasD) {
      switch (Op) {
      case BinaryOp::Add:
        return AbsVal::fromDouble(L.D + R.D);
      case BinaryOp::Sub:
        return AbsVal::fromDouble(L.D - R.D);
      case BinaryOp::Mul:
        return AbsVal::fromDouble(L.D * R.D);
      case BinaryOp::Div:
        return AbsVal::fromDouble(L.D / R.D);
      default:
        break;
      }
    }
    return AbsVal::topFor(N.type());
  }

  AbsVal evalCall(const ExprRef &E, const Env &Environment) {
    const expr::Expr &N = *E;
    std::vector<AbsVal> Args;
    for (unsigned I = 0; I != N.operands().size(); ++I)
      Args.push_back(evalChild(N.operand(I), I, Environment));

    if (N.type()->isInt64()) {
      auto Iv = [](const AbsVal &V) {
        return V.K == AbsVal::Kind::Int ? V.I : Interval::full();
      };
      switch (N.builtin()) {
      case Builtin::Abs:
        return AbsVal::fromInterval(Interval::absI(Iv(Args[0])),
                                    Args[0].NonZero);
      case Builtin::Min:
        return AbsVal::fromInterval(Interval::minI(Iv(Args[0]),
                                                   Iv(Args[1])));
      case Builtin::Max:
        return AbsVal::fromInterval(Interval::maxI(Iv(Args[0]),
                                                   Iv(Args[1])));
      default:
        return AbsVal::topFor(N.type());
      }
    }

    bool AllConst = true;
    for (const AbsVal &A : Args)
      AllConst = AllConst && A.K == AbsVal::Kind::Dbl && A.HasD;
    if (!AllConst)
      return AbsVal::topFor(N.type());
    switch (N.builtin()) {
    case Builtin::Sqrt:
      return AbsVal::fromDouble(std::sqrt(Args[0].D));
    case Builtin::Abs:
      return AbsVal::fromDouble(std::abs(Args[0].D));
    case Builtin::Min:
      return AbsVal::fromDouble(std::min(Args[0].D, Args[1].D));
    case Builtin::Max:
      return AbsVal::fromDouble(std::max(Args[0].D, Args[1].D));
    case Builtin::Floor:
      return AbsVal::fromDouble(std::floor(Args[0].D));
    case Builtin::Ceil:
      return AbsVal::fromDouble(std::ceil(Args[0].D));
    case Builtin::Exp:
      return AbsVal::fromDouble(std::exp(Args[0].D));
    case Builtin::Log:
      return AbsVal::fromDouble(std::log(Args[0].D));
    case Builtin::Pow:
      return AbsVal::fromDouble(std::pow(Args[0].D, Args[1].D));
    }
    return AbsVal::topFor(N.type());
  }
};

} // namespace

AbsVal absint::absEval(const ExprRef &E, const Env &Environment) {
  Evaluator Ev;
  return Ev.eval(E, Environment);
}

//===----------------------------------------------------------------------===//
// Refinement
//===----------------------------------------------------------------------===//

namespace {

/// Narrows the binding of parameter \p Name under `Name EffOp Other`.
/// Returns false when the constraint is infeasible.
bool refineParam(Env &Environment, const std::string &Name,
                 const TypeRef &Ty, BinaryOp EffOp, const AbsVal &Other) {
  if (!Ty->isInt64() || Other.K != AbsVal::Kind::Int)
    return true;

  auto It = Environment.find(Name);
  AbsVal Cur = It != Environment.end() ? It->second : AbsVal::topFor(Ty);
  if (Cur.K != AbsVal::Kind::Int)
    return true;

  Interval Bound = Interval::full();
  bool LearnNonZero = false;
  switch (EffOp) {
  case BinaryOp::Lt:
    if (Other.I.Hi == INT64_MIN)
      return false;
    Bound = Interval::of(INT64_MIN, Other.I.Hi - 1);
    break;
  case BinaryOp::Le:
    Bound = Interval::of(INT64_MIN, Other.I.Hi);
    break;
  case BinaryOp::Gt:
    if (Other.I.Lo == INT64_MAX)
      return false;
    Bound = Interval::of(Other.I.Lo + 1, INT64_MAX);
    break;
  case BinaryOp::Ge:
    Bound = Interval::of(Other.I.Lo, INT64_MAX);
    break;
  case BinaryOp::Eq:
    Bound = Other.I;
    LearnNonZero = Other.knownNonZero();
    break;
  case BinaryOp::Ne: {
    if (Other.I.isConst()) {
      std::int64_t C = Other.I.Lo;
      if (Cur.I.isConst() && Cur.I.Lo == C)
        return false;
      if (C == 0)
        Cur.NonZero = true;
      if (Cur.I.Lo == C && Cur.I.Lo < Cur.I.Hi)
        Cur.I.Lo = C + 1;
      else if (Cur.I.Hi == C && Cur.I.Lo < Cur.I.Hi)
        Cur.I.Hi = C - 1;
    }
    Environment[Name] = Cur;
    return true;
  }
  default:
    return true;
  }

  auto Met = Interval::meet(Cur.I, Bound);
  if (!Met)
    return false;
  Cur.I = *Met;
  Cur.NonZero = Cur.NonZero || LearnNonZero || Cur.I.excludesZero();
  Environment[Name] = Cur;
  return true;
}

} // namespace

bool absint::refine(Env &Environment, const ExprRef &Cond, bool Assume) {
  const expr::Expr &N = *Cond;
  switch (N.kind()) {
  case ExprKind::Const:
    if (std::holds_alternative<bool>(N.constValue()))
      return std::get<bool>(N.constValue()) == Assume;
    return true;
  case ExprKind::Unary:
    if (N.unaryOp() == UnaryOp::Not)
      return refine(Environment, N.operand(0), !Assume);
    return true;
  case ExprKind::Binary: {
    BinaryOp Op = N.binaryOp();
    if (Op == BinaryOp::And && Assume)
      return refine(Environment, N.operand(0), true) &&
             refine(Environment, N.operand(1), true);
    if (Op == BinaryOp::Or && !Assume)
      return refine(Environment, N.operand(0), false) &&
             refine(Environment, N.operand(1), false);
    if (!expr::isComparison(Op))
      return true;

    const ExprRef &L = N.operand(0);
    const ExprRef &R = N.operand(1);
    BinaryOp EffOp = Assume ? Op : negateCmp(Op);

    AbsVal LV = absEval(L, Environment);
    AbsVal RV = absEval(R, Environment);
    Tri Decided = compareVals(LV, RV, EffOp);
    if (Decided == Tri::False)
      return false;
    if (Decided == Tri::True)
      return true;

    if (L->kind() == ExprKind::Param &&
        !refineParam(Environment, L->paramName(), L->type(), EffOp, RV))
      return false;
    if (R->kind() == ExprKind::Param &&
        !refineParam(Environment, R->paramName(), R->type(),
                     flipCmp(EffOp), LV))
      return false;
    return true;
  }
  default:
    return true;
  }
}

//===----------------------------------------------------------------------===//
// Division safety
//===----------------------------------------------------------------------===//

bool absint::divisionIsSafe(const AbsVal &Dividend, const AbsVal &Divisor) {
  if (Divisor.K != AbsVal::Kind::Int)
    return false;
  if (!(Divisor.NonZero || Divisor.I.excludesZero()))
    return false;
  bool MayNegOne = Divisor.I.contains(-1);
  bool MayMin =
      Dividend.K != AbsVal::Kind::Int || Dividend.I.contains(INT64_MIN);
  return !(MayNegOne && MayMin);
}

//===----------------------------------------------------------------------===//
// Role environments and division scanning
//===----------------------------------------------------------------------===//

Env absint::roleEnv(const Op &O, ExprRole Role, const AbsVal &ElemIn,
                    const Env &Outer) {
  Env E = Outer;
  auto BindTops = [&](const expr::Lambda &L) {
    for (unsigned I = 0; I != L.arity(); ++I)
      E[L.param(I).Name] = AbsVal::topFor(L.param(I).Ty);
  };
  switch (Role) {
  case ExprRole::Fn:
    // Trans body / predicate / key selector: one element parameter.
    if (O.Fn.valid() && O.Fn.arity() >= 1) {
      BindTops(O.Fn);
      E[O.Fn.param(0).Name] = ElemIn;
    }
    break;
  case ExprRole::Fn2:
    // (acc, elem) -> acc: the accumulator is unbounded across
    // iterations (no fixpoint is attempted), the element is ElemIn.
    if (O.Fn2.valid()) {
      BindTops(O.Fn2);
      if (O.Fn2.arity() >= 2)
        E[O.Fn2.param(1).Name] = ElemIn;
    }
    break;
  case ExprRole::Fn3:
    if (O.Fn3.valid())
      BindTops(O.Fn3);
    break;
  case ExprRole::Combine:
    if (O.Combine.valid())
      BindTops(O.Combine);
    break;
  case ExprRole::StopWhen:
    if (O.StopWhen.valid())
      BindTops(O.StopWhen);
    break;
  default:
    break; // bare expressions (Seed, DenseKeys, Src*) see only Outer
  }
  return E;
}

//===----------------------------------------------------------------------===//
// Chain analysis
//===----------------------------------------------------------------------===//

namespace {

std::int64_t clampNonNeg(std::int64_t V) { return V < 0 ? 0 : V; }

std::int64_t satSub0(std::int64_t A, std::int64_t B) {
  std::int64_t R;
  if (subOv(A, B, R) || R < 0)
    return 0;
  return R;
}

std::int64_t satMulCard(std::int64_t A, std::int64_t B) {
  std::int64_t R;
  if (mulOv(A, B, R))
    return INT64_MAX;
  return R;
}

struct ChainAnalyzer {
  ChainFacts run(const Chain &C, const Env &Outer,
                 const std::vector<unsigned> &Prefix) {
    ChainFacts Facts;
    Interval Card = Interval::card();
    AbsVal Elem;

    for (unsigned Idx = 0; Idx != C.Ops.size(); ++Idx) {
      const Op &O = C.Ops[Idx];
      OpFacts F;
      F.CardIn = Card;
      F.ElemIn = Elem;

      std::size_t DivStart = Facts.Divs.size();
      scanOpDivs(O, Idx, Elem, Outer, Prefix, Facts.Divs);

      if (O.S == Sym::Nested && O.NestedChain) {
        Env NestedOuter = Outer;
        if (!O.OuterParam.empty())
          NestedOuter[O.OuterParam] = Elem;
        std::vector<unsigned> NestedPrefix = Prefix;
        NestedPrefix.push_back(Idx);
        auto NF = std::make_shared<ChainFacts>(
            ChainAnalyzer().run(*O.NestedChain, NestedOuter, NestedPrefix));
        Facts.Divs.insert(Facts.Divs.end(), NF->Divs.begin(),
                          NF->Divs.end());
        Facts.Nested[Idx] = NF;
      }

      F.TrapFree = true;
      for (std::size_t I = DivStart; I != Facts.Divs.size(); ++I)
        F.TrapFree = F.TrapFree && Facts.Divs[I].Safe;

      transfer(O, Outer, Facts, Idx, F, Card, Elem);

      F.CardOut = Card;
      F.ElemOut = Elem;
      Facts.Ops.push_back(std::move(F));
    }

    Facts.CardOut = Card;
    Facts.ElemOut = Elem;
    return Facts;
  }

private:
  void scanOpDivs(const Op &O, unsigned Idx, const AbsVal &Elem,
                  const Env &Outer, const std::vector<unsigned> &Prefix,
                  std::vector<DivSite> &Out) {
    for (const detail::RoleExpr &RE : detail::roleExprs(O)) {
      Env E = roleEnv(O, RE.Role, Elem, Outer);
      Evaluator::DivHook Hook =
          [&](const expr::Expr &Node, const std::vector<unsigned> &Path,
              const AbsVal &Dividend, const AbsVal &Divisor) {
            if (!Node.type()->isInt64())
              return;
            DivSite S;
            S.Loc = detail::opLoc(Prefix, Idx, RE.Role, Path);
            S.Divisor = Divisor.K == AbsVal::Kind::Int ? Divisor.I
                                                       : Interval::full();
            S.DivisorNonZero = Divisor.knownNonZero();
            S.Dividend = Dividend.K == AbsVal::Kind::Int ? Dividend.I
                                                         : Interval::full();
            S.Safe = divisionIsSafe(Dividend, Divisor);
            Out.push_back(std::move(S));
          };
      Evaluator Ev;
      Ev.Hook = &Hook;
      Ev.eval(RE.expr(), E);
    }
  }

  void transfer(const Op &O, const Env &Outer, const ChainFacts &Facts,
                unsigned Idx, OpFacts &F, Interval &Card, AbsVal &Elem) {
    switch (O.S) {
    case Sym::Src:
      transferSrc(O, Outer, Card, Elem);
      break;

    case Sym::Trans:
      if (O.Fn.valid())
        Elem = absEval(O.Fn.body(), roleEnv(O, ExprRole::Fn, Elem, Outer));
      else
        Elem = AbsVal::topFor(O.OutElem);
      break;

    case Sym::Pred:
      transferPred(O, Outer, F, Card, Elem);
      break;

    case Sym::Sink:
      transferSink(O, Outer, Card, Elem);
      break;

    case Sym::Nested:
      transferNested(O, Facts, Idx, Card, Elem);
      break;

    case Sym::Agg:
      Card = Interval::constant(1);
      Elem = AbsVal::topFor(O.OutElem);
      break;

    case Sym::Ret:
      break;
    }
  }

  void transferSrc(const Op &O, const Env &Outer, Interval &Card,
                   AbsVal &Elem) {
    switch (O.Src.Kind) {
    case query::SourceKind::Range: {
      AbsVal CountV = O.Src.CountE ? absEval(O.Src.CountE, Outer)
                                   : AbsVal::top();
      AbsVal StartV = O.Src.Start ? absEval(O.Src.Start, Outer)
                                  : AbsVal::top();
      Interval N = CountV.K == AbsVal::Kind::Int ? CountV.I
                                                 : Interval::card();
      Card = Interval::of(clampNonNeg(N.Lo), clampNonNeg(N.Hi));
      if (StartV.K == AbsVal::Kind::Int && N.Hi > 0) {
        // Elements span [start, start + count - 1].
        Interval Span = Interval::add(
            StartV.I, Interval::of(0, N.Hi == INT64_MAX ? INT64_MAX
                                                        : N.Hi - 1));
        Elem = AbsVal::fromInterval(Span);
      } else if (StartV.K == AbsVal::Kind::Int) {
        Elem = AbsVal::fromInterval(StartV.I); // vacuous (empty source)
      } else {
        Elem = AbsVal::topFor(expr::Type::int64Ty());
      }
      break;
    }
    case query::SourceKind::Int64Array:
      Card = Interval::card();
      Elem = AbsVal::topFor(expr::Type::int64Ty());
      break;
    case query::SourceKind::DoubleArray:
    case query::SourceKind::VecExpr:
      Card = Interval::card();
      Elem = AbsVal::topFor(O.Src.elemType());
      break;
    case query::SourceKind::PointArray:
      Card = Interval::card();
      Elem = AbsVal::top();
      break;
    }
  }

  void transferPred(const Op &O, const Env &Outer, OpFacts &F,
                    Interval &Card, AbsVal &Elem) {
    switch (O.P) {
    case PredOp::Where:
    case PredOp::TakeWhile:
    case PredOp::SkipWhile: {
      if (!O.Fn.valid() || O.Fn.arity() < 1)
        break;
      Env BodyEnv = roleEnv(O, ExprRole::Fn, Elem, Outer);
      AbsVal PV = absEval(O.Fn.body(), BodyEnv);
      Tri T = PV.K == AbsVal::Kind::Bool ? PV.B : Tri::Unknown;
      if (T == Tri::Unknown) {
        // The predicate may still be infeasible for every reachable
        // element (e.g. x > 5 over elements bounded to [0, 3]).
        Env Refined = BodyEnv;
        if (!refine(Refined, O.Fn.body(), true))
          T = Tri::False;
        else if (O.P != PredOp::SkipWhile) {
          // Elements that continue downstream satisfied the predicate.
          auto It = Refined.find(O.Fn.param(0).Name);
          if (It != Refined.end())
            Elem = It->second;
        }
      }
      F.Pred = T;
      bool Empties = (O.P == PredOp::SkipWhile) ? T == Tri::True
                                                : T == Tri::False;
      bool NoOp = (O.P == PredOp::SkipWhile) ? T == Tri::False
                                             : T == Tri::True;
      if (Empties)
        Card = Interval::constant(0);
      else if (!NoOp)
        Card = Interval::of(0, Card.Hi);
      break;
    }
    case PredOp::Take:
    case PredOp::Skip: {
      AbsVal CV = O.Seed ? absEval(O.Seed, Outer) : AbsVal::top();
      F.Count = CV.constInt();
      Interval N = CV.K == AbsVal::Kind::Int ? CV.I : Interval::full();
      if (O.P == PredOp::Take) {
        Card = Interval::of(std::min(Card.Lo, clampNonNeg(N.Lo)),
                            std::min(Card.Hi, clampNonNeg(N.Hi)));
      } else {
        Card = Interval::of(
            satSub0(Card.Lo, clampNonNeg(N.Hi)),
            Card.Hi == INT64_MAX ? INT64_MAX
                                 : satSub0(Card.Hi, clampNonNeg(N.Lo)));
      }
      break;
    }
    }
  }

  void transferSink(const Op &O, const Env &Outer, Interval &Card,
                    AbsVal &Elem) {
    switch (O.K) {
    case SinkOp::OrderBy:
    case SinkOp::ToArray:
      break; // cardinality and element values unchanged
    case SinkOp::GroupBy:
      Card = groupCard(Card);
      Elem = AbsVal::topFor(O.OutElem);
      break;
    case SinkOp::GroupByAggregate:
      if (O.DenseKeys) {
        // The dense sink emits one row per key in [0, K) regardless of
        // how many elements arrived — including zero.
        AbsVal K = absEval(O.DenseKeys, Outer);
        Interval N = K.K == AbsVal::Kind::Int ? K.I : Interval::card();
        Card = Interval::of(clampNonNeg(N.Lo), clampNonNeg(N.Hi));
      } else {
        Card = groupCard(Card);
      }
      Elem = AbsVal::topFor(O.OutElem);
      break;
    }
  }

  static Interval groupCard(const Interval &Card) {
    if (Card.Hi == 0)
      return Interval::constant(0);
    return Interval::of(Card.Lo > 0 ? 1 : 0, Card.Hi);
  }

  void transferNested(const Op &O, const ChainFacts &Facts, unsigned Idx,
                      Interval &Card, AbsVal &Elem) {
    auto It = Facts.Nested.find(Idx);
    ChainFactsRef NF = It != Facts.Nested.end() ? It->second : nullptr;
    switch (O.Role) {
    case quil::NestedRole::Trans:
      Elem = AbsVal::topFor(O.OutElem);
      break;
    case quil::NestedRole::Pred:
      Card = Interval::of(0, Card.Hi);
      break;
    case quil::NestedRole::Flatten: {
      Interval Inner = NF ? NF->CardOut : Interval::card();
      if (Inner.Hi == 0) {
        Card = Interval::constant(0);
      } else {
        std::int64_t Lo = satMulCard(Card.Lo, clampNonNeg(Inner.Lo));
        std::int64_t Hi = (Card.Hi == INT64_MAX || Inner.Hi == INT64_MAX)
                              ? INT64_MAX
                              : satMulCard(Card.Hi, Inner.Hi);
        Card = Interval::of(Lo, Hi);
      }
      Elem = NF ? NF->ElemOut : AbsVal::topFor(O.OutElem);
      break;
    }
    }
  }
};

} // namespace

ChainFacts absint::analyzeChainFacts(const Chain &C, const Env &Outer,
                                     const std::vector<unsigned> &Prefix) {
  return ChainAnalyzer().run(C, Outer, Prefix);
}

//===----------------------------------------------------------------------===//
// Trap-elision marking
//===----------------------------------------------------------------------===//

namespace {

/// Rebuilds \p E with operand list \p Ops (same kinds/types), preserving
/// the divSafe marker.
ExprRef withOperands(const ExprRef &E, std::vector<ExprRef> Ops) {
  using expr::Expr;
  ExprRef R;
  switch (E->kind()) {
  case ExprKind::Const:
  case ExprKind::Param:
  case ExprKind::Capture:
  case ExprKind::SourceLen:
    return E;
  case ExprKind::Convert:
    R = Expr::convert(Ops[0], E->type());
    break;
  case ExprKind::Unary:
    R = Expr::unary(E->unaryOp(), Ops[0]);
    break;
  case ExprKind::Binary:
    R = Expr::binary(E->binaryOp(), Ops[0], Ops[1]);
    if (E->divSafe())
      R = Expr::withDivSafe(R);
    break;
  case ExprKind::Call:
    R = Expr::call(E->builtin(), std::move(Ops));
    break;
  case ExprKind::Cond:
    R = Expr::cond(Ops[0], Ops[1], Ops[2]);
    break;
  case ExprKind::PairNew:
    R = Expr::pairNew(Ops[0], Ops[1]);
    break;
  case ExprKind::PairFirst:
    R = Expr::pairFirst(Ops[0]);
    break;
  case ExprKind::PairSecond:
    R = Expr::pairSecond(Ops[0]);
    break;
  case ExprKind::VecLen:
    R = Expr::vecLen(Ops[0]);
    break;
  case ExprKind::VecIndex:
    R = Expr::vecIndex(Ops[0], Ops[1]);
    break;
  case ExprKind::BufferSlice:
    R = Expr::bufferSlice(E->sourceSlot(), Ops[0], Ops[1]);
    break;
  }
  return R;
}

ExprRef markRec(const ExprRef &E, const Env &Environment,
                std::vector<std::string> *Facts) {
  const expr::Expr &N = *E;

  // Recurse into children, refining the environment where the language
  // guarantees a guard has been evaluated first (short-circuit && / ||,
  // conditional arms).
  std::vector<ExprRef> NewOps;
  NewOps.reserve(N.operands().size());
  bool Changed = false;
  for (unsigned I = 0; I != N.operands().size(); ++I) {
    Env ChildEnv = Environment;
    bool Feasible = true;
    if (N.kind() == ExprKind::Binary && I == 1 &&
        (N.binaryOp() == BinaryOp::And || N.binaryOp() == BinaryOp::Or))
      Feasible = refine(ChildEnv, N.operand(0),
                        N.binaryOp() == BinaryOp::And);
    else if (N.kind() == ExprKind::Cond && I > 0)
      Feasible = refine(ChildEnv, N.operand(0), I == 1);
    // An infeasible branch never executes; leave it untouched.
    ExprRef C = Feasible ? markRec(N.operand(I), ChildEnv, Facts)
                         : N.operand(I);
    Changed = Changed || C != N.operand(I);
    NewOps.push_back(std::move(C));
  }

  ExprRef R = Changed ? withOperands(E, std::move(NewOps)) : E;

  if (N.kind() == ExprKind::Binary &&
      (N.binaryOp() == BinaryOp::Div || N.binaryOp() == BinaryOp::Mod) &&
      N.type()->isInt64() && !N.divSafe()) {
    AbsVal L = absEval(R->operand(0), Environment);
    AbsVal D = absEval(R->operand(1), Environment);
    if (divisionIsSafe(L, D)) {
      R = expr::Expr::withDivSafe(R);
      if (Facts)
        Facts->push_back("divisor " + R->operand(1)->str() + " in " +
                         (D.K == AbsVal::Kind::Int ? D.I.str()
                                                   : std::string("top")) +
                         (D.NonZero && !D.I.excludesZero() ? " (nonzero)"
                                                           : "") +
                         ", dividend in " +
                         (L.K == AbsVal::Kind::Int ? L.I.str()
                                                   : std::string("top")));
    }
  }
  return R;
}

} // namespace

ExprRef absint::markSafeDivisions(const ExprRef &E, const Env &Environment,
                                  std::vector<std::string> *Facts) {
  if (!E)
    return E;
  return markRec(E, Environment, Facts);
}
