//===- workloads/Kmeans.h - Distributed k-means (paper §7.2) ---*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's real-world distributed workload: k-means clustering. Each
/// iteration comprises (paper §7.2):
///
///   1. In parallel, for each data point (nested Select) compute the
///      distance to each centroid (Select) and choose the closest
///      (Aggregate); group by cluster id (GroupBy) and compute partial
///      sums per cluster (Aggregate).
///   2. Merge the partial sums across partitions by cluster id and take
///      the mean to form the new centroids.
///
/// Three interchangeable vertex implementations exercise the same
/// computation:
///   * linqVertexPartials  — the baseline: lazy iterators + std::function
///     (the per-element-overhead-bound path Figure 14's "unoptimized"
///     curve measures);
///   * handVertexPartials  — hand-optimized nested loops (the bound);
///   * buildStepQuery      — the declarative query, which Steno compiles
///     into fused loops and dryad runs per partition with a merge stage.
///
/// The partial-sum encoding: per cluster c, slots c*(dim+1)+d hold the
/// component sums and slot c*(dim+1)+dim holds the member count.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_WORKLOADS_KMEANS_H
#define STENO_WORKLOADS_KMEANS_H

#include "dryad/Partition.h"
#include "expr/Dsl.h"
#include "linq/Linq.h"
#include "query/Query.h"
#include "support/Random.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace steno {
namespace workloads {

/// Synthetic clustered input: K true centers with Gaussian noise.
struct KmeansData {
  std::int64_t Dim = 0;
  std::int64_t K = 0;
  std::int64_t NumPoints = 0;
  std::vector<double> Points;    ///< flat, NumPoints x Dim
  std::vector<double> Centroids; ///< flat, K x Dim (current estimate)

  static KmeansData make(std::int64_t NumPoints, std::int64_t Dim,
                         std::int64_t K, std::uint64_t Seed) {
    KmeansData D;
    D.Dim = Dim;
    D.K = K;
    D.NumPoints = NumPoints;
    support::SplitMix64 Rng(Seed);
    std::vector<double> TrueCenters(
        static_cast<size_t>(K * Dim));
    for (double &V : TrueCenters)
      V = Rng.nextDouble(-10, 10);
    D.Points.resize(static_cast<size_t>(NumPoints * Dim));
    for (std::int64_t I = 0; I != NumPoints; ++I) {
      std::int64_t C = static_cast<std::int64_t>(Rng.nextBelow(
          static_cast<std::uint64_t>(K)));
      for (std::int64_t J = 0; J != Dim; ++J)
        D.Points[static_cast<size_t>(I * Dim + J)] =
            TrueCenters[static_cast<size_t>(C * Dim + J)] +
            Rng.nextGaussian();
    }
    // Initial centroids: the first K points.
    D.Centroids.assign(D.Points.begin(),
                       D.Points.begin() + static_cast<size_t>(K * Dim));
    return D;
  }
};

/// Number of partial-aggregate slots: K clusters x (Dim sums + 1 count).
inline std::int64_t numSlots(std::int64_t K, std::int64_t Dim) {
  return K * (Dim + 1);
}

//===------------------------------------------------------------------===//
// Vertex implementation 1: hand-optimized loops (the lower bound)
//===------------------------------------------------------------------===//

/// Computes the per-cluster partial sums for one partition with plain
/// loops — the code a careful programmer would write by hand.
inline std::vector<double>
handVertexPartials(const dryad::DoublePartition &Part,
                   const std::vector<double> &Centroids, std::int64_t K,
                   std::int64_t Dim) {
  std::vector<double> Slots(static_cast<size_t>(numSlots(K, Dim)), 0.0);
  const double *Pts = Part.Data.data();
  const double *Cts = Centroids.data();
  std::int64_t N = Part.count();
  for (std::int64_t I = 0; I != N; ++I) {
    const double *P = Pts + I * Dim;
    double Best = std::numeric_limits<double>::infinity();
    std::int64_t BestC = 0;
    for (std::int64_t C = 0; C != K; ++C) {
      const double *Ct = Cts + C * Dim;
      double D2 = 0;
      for (std::int64_t J = 0; J != Dim; ++J) {
        double Delta = P[J] - Ct[J];
        D2 += Delta * Delta;
      }
      if (D2 < Best) {
        Best = D2;
        BestC = C;
      }
    }
    double *Slot = Slots.data() + BestC * (Dim + 1);
    for (std::int64_t J = 0; J != Dim; ++J)
      Slot[J] += P[J];
    Slot[Dim] += 1.0;
  }
  return Slots;
}

//===------------------------------------------------------------------===//
// Vertex implementation 2: linq iterators (the unoptimized baseline)
//===------------------------------------------------------------------===//

/// A borrowed point (what a C# reference-type element would be).
struct PointRef {
  const double *Data = nullptr;
  std::int64_t Dim = 0;
};

/// The same computation through lazy iterator chains and std::function,
/// mirroring the DryadLINQ-generated LINQ code the paper measures: nested
/// Select over centroids, Aggregate to pick the closest, GroupBy-style
/// accumulation per cluster.
inline std::vector<double>
linqVertexPartials(const dryad::DoublePartition &Part,
                   const std::vector<double> &Centroids, std::int64_t K,
                   std::int64_t Dim) {
  const double *Cts = Centroids.data();
  // Source: the points of this partition.
  linq::Seq<std::int64_t> Indices = linq::range(0, Part.count());
  const double *Pts = Part.Data.data();

  linq::Seq<std::pair<std::int64_t, PointRef>> Assigned =
      Indices.select([Pts, Cts, K, Dim](std::int64_t I) {
        PointRef P{Pts + I * Dim, Dim};
        // Distance to each centroid (nested Select) ...
        auto Distances =
            linq::range(0, K).select([P, Cts, Dim](std::int64_t C) {
              // ... itself a nested query over the dimensions.
              double D2 = linq::range(0, Dim)
                              .select([P, Cts, C, Dim](std::int64_t J) {
                                double Delta =
                                    P.Data[J] - Cts[C * Dim + J];
                                return Delta * Delta;
                              })
                              .sum();
              return std::make_pair(D2, C);
            });
        // ... choose the closest (Aggregate).
        std::pair<double, std::int64_t> Best = Distances.aggregate(
            std::make_pair(std::numeric_limits<double>::infinity(),
                           std::int64_t{0}),
            [](std::pair<double, std::int64_t> Acc,
               std::pair<double, std::int64_t> Cand) {
              return Cand.first < Acc.first ? Cand : Acc;
            });
        return std::make_pair(Best.second, P);
      });

  // Partial sums per cluster (the GroupBy-Aggregate step). The fold walks
  // the assignment stream through the iterator boundary one element at a
  // time, exactly like the generated LINQ vertex would.
  std::vector<double> Slots(static_cast<size_t>(numSlots(K, Dim)), 0.0);
  auto E = Assigned.getEnumerator();
  while (E->moveNext()) {
    std::pair<std::int64_t, PointRef> Row = E->current();
    double *Slot = Slots.data() + Row.first * (Dim + 1);
    for (std::int64_t J = 0; J != Dim; ++J)
      Slot[J] += Row.second.Data[J];
    Slot[Dim] += 1.0;
  }
  return Slots;
}

//===------------------------------------------------------------------===//
// Vertex implementation 3: the declarative Steno query
//===------------------------------------------------------------------===//

/// Builds the step-1 query over source slot 0 (points) and slot 1 (the
/// centroid table), with an associative combiner so the dryad planner can
/// split it into per-partition partial aggregation plus an Agg* merge.
///
///   points
///     .Select(p => (argmin_c dist2(p, c), p))        // nested x2
///     .SelectMany((c, p) => slots of (c, p))          // flatten encoding
///     .GroupByAggregate(slot, 0.0, (a, v) => a + v)   // partial sums
inline query::Query buildStepQuery(std::int64_t K, std::int64_t Dim) {
  using namespace expr;
  using namespace expr::dsl;
  using query::Query;

  auto P = param("p", Type::vecTy());
  auto J = param("j", Type::int64Ty());
  auto D = param("d", Type::int64Ty());
  TypeRef DistIdx = Type::pairTy(Type::doubleTy(), Type::int64Ty());
  auto Best = param("best", DistIdx);
  auto Cand = param("cand", DistIdx);
  E DimE = E(Dim);

  // dist2(p, centroid_j): fold the squared component differences over the
  // dimensions; the result selector pairs the distance with j (which it
  // references from the enclosing query, §5.2).
  auto A = param("a", Type::doubleTy());
  auto V = param("v", Type::doubleTy());
  Query Dist2 =
      Query::range(E(0), DimE)
          .select(lambda({D}, (P[D] - slice(1, J * DimE, DimE)[D]) *
                                  (P[D] - slice(1, J * DimE, DimE)[D])))
          .aggregate(E(0.0), lambda({A, V}, A + V),
                     lambda({A}, pair(A, J)));

  // argmin over the centroids: fold (d2, j) pairs, keep the closest;
  // result (cluster, point) — the result selector references the outer p.
  Query Argmin =
      Query::range(E(0), E(K))
          .selectNested(J, Dist2)
          .aggregate(
              pair(E(std::numeric_limits<double>::infinity()), E(-1)),
              lambda({Best, Cand},
                     cond(Cand.first() < Best.first(), Cand, Best)),
              lambda({Best}, pair(Best.second(), P)));

  // Flatten each (cluster, point) into Dim+1 (slot, value) rows: the
  // component contributions plus a count of 1.
  TypeRef ClusterPoint = Type::pairTy(Type::int64Ty(), Type::vecTy());
  auto CP = param("cp", ClusterPoint);
  // Conditional arms evaluate lazily (C++ ?: and the evaluator agree), so
  // the out-of-range index d == Dim is never touched.
  Query Encode =
      Query::range(E(0), E(Dim + 1))
          .select(lambda({D}, pair(CP.first() * E(Dim + 1) + D,
                                   cond(D < DimE, CP.second()[D],
                                        E(1.0)))));

  // Per-slot partial sums, mergeable across partitions.
  TypeRef SlotVal = Type::pairTy(Type::int64Ty(), Type::doubleTy());
  auto SV = param("sv", SlotVal);
  auto Acc = param("acc", Type::doubleTy());
  auto U = param("u", Type::doubleTy());
  auto W = param("w", Type::doubleTy());
  // The slot space is statically bounded by K*(Dim+1), so the dense-key
  // sink of §4.3's closing remark applies: a flat accumulator array
  // replaces the hash table.
  return query::Query::pointArray(0)
      .selectNested(P, Argmin)
      .selectMany(CP, Encode)
      .groupByAggregateDense(lambda({SV}, SV.first()),
                             E(numSlots(K, Dim)), E(0.0),
                             lambda({Acc, SV}, Acc + SV.second()),
                             expr::Lambda(), lambda({U, W}, U + W));
}

//===------------------------------------------------------------------===//
// Driver helpers
//===------------------------------------------------------------------===//

/// Merges per-partition slot vectors (the Agg* stage for the hand/linq
/// vertex paths).
inline std::vector<double>
mergePartials(const std::vector<std::vector<double>> &Partials) {
  std::vector<double> Out = Partials.front();
  for (size_t P = 1; P != Partials.size(); ++P)
    for (size_t I = 0; I != Out.size(); ++I)
      Out[I] += Partials[P][I];
  return Out;
}

/// Step 2 of §7.2: new centroids = per-cluster mean. Clusters with no
/// members keep their previous centroid.
inline std::vector<double>
centroidsFromSlots(const std::vector<double> &Slots,
                   const std::vector<double> &Previous, std::int64_t K,
                   std::int64_t Dim) {
  std::vector<double> Out(static_cast<size_t>(K * Dim));
  for (std::int64_t C = 0; C != K; ++C) {
    double Count = Slots[static_cast<size_t>(C * (Dim + 1) + Dim)];
    for (std::int64_t J = 0; J != Dim; ++J) {
      size_t OutIdx = static_cast<size_t>(C * Dim + J);
      if (Count > 0)
        Out[OutIdx] =
            Slots[static_cast<size_t>(C * (Dim + 1) + J)] / Count;
      else
        Out[OutIdx] = Previous[OutIdx];
    }
  }
  return Out;
}

} // namespace workloads
} // namespace steno

#endif // STENO_WORKLOADS_KMEANS_H
