//===- fuzz/Diff.h - Differential executor over all backends ---*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one fuzz spec through every execution path the repo has and
/// compares against the reference interpreter (steno/RefExec.h), the
/// oracle for the paper's §4-§5 semantic-identity claim:
///
///   Interp       compileQuery, Backend::Interp (generated loop AST)
///   Jit          compileQuery, Backend::Native (g++ + dlopen)
///   Plinq1/2/8   plinq::ParallelQuery over 1-, 2- and 8-worker pools
///   DryadStatic  dryad::DistributedQuery::run over static partitions
///   DryadMorsel  dryad::DistributedQuery::runParallel (work stealing)
///
/// Oracle rules: results must match the reference row-for-row under
/// valueNear-style comparison (1e-9 relative tolerance for doubles; NaN
/// compares equal to NaN — a uniform NaN, e.g. Average of an empty
/// source, is agreement, not a mismatch). The certificate is respected,
/// not re-litigated: a query the analyzer refuses to certify must take
/// the sequential-fallback path (certified() false) and STILL match the
/// reference; a certified query must match even though it fanned out.
/// The invariant "parallel implies certified" is checked as its own
/// failure kind (CertViolation).
///
/// Parallel backends 2/8 run with tiny morsel bounds (min 1, max 8,
/// inline-below 0) so the small fuzz inputs really split, steal and
/// reassemble instead of taking the InlineBelow shortcut.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_FUZZ_DIFF_H
#define STENO_FUZZ_DIFF_H

#include "dryad/ThreadPool.h"
#include "fuzz/Spec.h"
#include "steno/Result.h"

#include <functional>
#include <string>
#include <vector>

namespace steno {
namespace fuzz {

enum class BackendId {
  Interp,
  InterpNoRewrite, ///< Interp with the plan rewriter forced OFF — the
                   ///< rewrite-on/off oracle pair: Interp (rewrite on)
                   ///< and this backend must both match the reference,
                   ///< so any semantics-changing rewrite shows up as a
                   ///< differential mismatch.
  InterpVectorized, ///< Interp with batch execution forced ON (Interp
                    ///< pins it off) — the vectorize-on/off oracle pair:
                    ///< every spec whose chain fits the columnar model
                    ///< runs both element-at-a-time and batch-at-a-time,
                    ///< so a divergent batch kernel shows up as a
                    ///< differential mismatch. Chains the vec planner
                    ///< rejects silently take the scalar path (still a
                    ///< valid comparison).
  InterpAdaptive, ///< Interp compiled twice with profiling + adaptive
                  ///< feedback: a cold compile runs past the
                  ///< min-sample threshold to seed the FeedbackStore,
                  ///< then a warm recompile — which may reorder
                  ///< predicates on the observed statistics — produces
                  ///< the result that is differenced. The
                  ///< adaptivity-never-changes-results oracle: any
                  ///< feedback-driven reorder that alters semantics
                  ///< shows up as a mismatch against the reference.
  Jit,
  Plinq1,
  Plinq2,
  Plinq8,
  DryadStatic,
  DryadMorsel
};

const char *backendName(BackendId Id);
/// Parses a --backend flag value ("interp", "interp-norewrite",
/// "interp-vec", "interp-adapt", "jit", "plinq1", "plinq2", "plinq8",
/// "dryad-static", "dryad-morsel").
bool parseBackendName(const std::string &S, BackendId &Out);

/// All backends, in fixed order; \p WithJit excludes the Native backend
/// when false (a JIT run costs an external compiler invocation, so the
/// fuzz loop samples it instead of paying it on every query).
std::vector<BackendId> allBackends(bool WithJit);

struct DiffOptions {
  /// Which backends to run this query through.
  std::vector<BackendId> Backends = allBackends(false);
  /// Test hook: backends for which this returns true get their result
  /// deliberately perturbed after execution, so the mismatch -> shrink ->
  /// corpus pipeline can be exercised without a real miscompile.
  std::function<bool(BackendId)> Inject;
};

/// One backend's verdict for one query.
struct BackendOutcome {
  BackendId Id = BackendId::Interp;
  bool Match = true;
  bool CertViolation = false; ///< fanned out without a certificate
  std::string Detail;         ///< first differing row, rendered
};

/// The differential verdict for one spec.
struct DiffResult {
  bool BuildError = false; ///< spec did not build; Report has the error
  bool Mismatch = false;   ///< some backend disagreed with the reference
  bool Certified = false;  ///< the dryad/plinq paths fanned out
  std::vector<BackendOutcome> Outcomes;
  std::string Report;

  /// Backends that disagreed (empty when Mismatch is false).
  std::vector<BackendId> failing() const {
    std::vector<BackendId> Out;
    for (const BackendOutcome &O : Outcomes)
      if (!O.Match || O.CertViolation)
        Out.push_back(O.Id);
    return Out;
  }
};

/// Owns the thread pools and runs spec-vs-reference comparisons. One
/// instance per fuzz process (pools are reused across queries).
class DiffHarness {
public:
  DiffHarness();

  /// Builds \p Spec, runs the reference oracle and every requested
  /// backend, and compares. Never aborts on a well-formed spec.
  DiffResult check(const QuerySpec &Spec, const DiffOptions &Opts);

private:
  dryad::ThreadPool Pool1;
  dryad::ThreadPool Pool2;
  dryad::ThreadPool Pool8;
};

/// valueNear with NaN==NaN, the fuzz comparison rule.
bool fuzzValueNear(const expr::Value &A, const expr::Value &B,
                   double Rel = 1e-9);

/// Renders a Value for mismatch reports.
std::string fuzzValueStr(const expr::Value &V);

} // namespace fuzz
} // namespace steno

#endif // STENO_FUZZ_DIFF_H
