//===- fuzz/Spec.cpp - Spec building and (de)serialization ----*- C++ -*-===//

#include "fuzz/Spec.h"

#include "expr/Dsl.h"
#include "support/Random.h"
#include "support/StringUtil.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

using namespace steno;
using namespace steno::fuzz;
using namespace steno::expr;
using namespace steno::expr::dsl;
using query::Query;

//===----------------------------------------------------------------===//
// Token tables (shared by serializeSpec and parseSpec)
//===----------------------------------------------------------------===//

namespace {

template <typename T> struct TokenEntry {
  T V;
  const char *Name;
};

const TokenEntry<ElemTy> ElemTyTokens[] = {
    {ElemTy::Double, "double"}, {ElemTy::Int64, "int64"}};
const TokenEntry<DataClass> DataClassTokens[] = {
    {DataClass::Uniform, "uniform"},
    {DataClass::Skewed, "skewed"},
    {DataClass::Constant, "constant"},
    {DataClass::Ascending, "ascending"}};
const TokenEntry<TransTmpl> TransTokens[] = {
    {TransTmpl::Id, "id"},           {TransTmpl::AddC, "addc"},
    {TransTmpl::MulC, "mulc"},       {TransTmpl::Square, "square"},
    {TransTmpl::SqrtAbs, "sqrtabs"}, {TransTmpl::Negate, "negate"},
    {TransTmpl::CapScale, "capscale"}, {TransTmpl::ToInt64, "toint64"},
    {TransTmpl::ToDouble, "todouble"}, {TransTmpl::DivNz, "divnz"},
    {TransTmpl::DivMaybe, "divmaybe"}};
const TokenEntry<PredTmpl> PredTokens[] = {
    {PredTmpl::True, "true"},     {PredTmpl::False, "false"},
    {PredTmpl::GtC, "gtc"},       {PredTmpl::LtC, "ltc"},
    {PredTmpl::AbsGtC, "absgtc"}, {PredTmpl::EvenInt, "evenint"}};
const TokenEntry<KeyTmpl> KeyTokens[] = {{KeyTmpl::Id, "id"},
                                         {KeyTmpl::Abs, "abs"},
                                         {KeyTmpl::Negate, "negate"},
                                         {KeyTmpl::Bucket, "bucket"}};
const TokenEntry<AggKind> AggTokens[] = {
    {AggKind::Sum, "sum"},
    {AggKind::Count, "count"},
    {AggKind::Min, "min"},
    {AggKind::Max, "max"},
    {AggKind::Average, "average"},
    {AggKind::Any, "any"},
    {AggKind::AllGtC, "allgtc"},
    {AggKind::First, "first"},
    {AggKind::Contains, "contains"},
    {AggKind::FoldAssoc, "foldassoc"},
    {AggKind::FoldNonAssoc, "foldnonassoc"},
    {AggKind::FoldNoComb, "foldnocomb"},
    {AggKind::FoldPairMean, "foldpairmean"}};
const TokenEntry<GroupStep> GroupStepTokens[] = {{GroupStep::Sum, "sum"},
                                                 {GroupStep::Count, "count"},
                                                 {GroupStep::Max, "max"}};
const TokenEntry<NestedTmpl> NestedTokens[] = {{NestedTmpl::AddXY, "addxy"},
                                               {NestedTmpl::MulXY, "mulxy"}};

template <typename T, std::size_t N>
const char *tokenName(const TokenEntry<T> (&Table)[N], T V) {
  for (const TokenEntry<T> &E : Table)
    if (E.V == V)
      return E.Name;
  return "?";
}

template <typename T, std::size_t N>
bool tokenParse(const TokenEntry<T> (&Table)[N], const std::string &S,
                T &Out) {
  for (const TokenEntry<T> &E : Table)
    if (S == E.Name) {
      Out = E.V;
      return true;
    }
  return false;
}

std::string fmtDouble(double V) {
  return support::strFormat("%.17g", V);
}

//===----------------------------------------------------------------===//
// Data synthesis
//===----------------------------------------------------------------===//

std::vector<double> makeDoubles(const SourceSpec &S) {
  support::SplitMix64 Rng(S.Seed);
  std::vector<double> Out;
  Out.reserve(S.Count);
  for (std::uint32_t I = 0; I != S.Count; ++I) {
    switch (S.Data) {
    case DataClass::Uniform:
      Out.push_back(Rng.nextDouble(-100.0, 100.0));
      break;
    case DataClass::Skewed:
      Out.push_back(Rng.nextBelow(10) != 0 ? Rng.nextDouble(-2.0, 2.0)
                                           : Rng.nextDouble(-100.0, 100.0));
      break;
    case DataClass::Constant:
      Out.push_back(7.5);
      break;
    case DataClass::Ascending:
      Out.push_back(static_cast<double>(I) * 1.5 - 20.0);
      break;
    }
  }
  return Out;
}

std::vector<std::int64_t> makeInt64s(const SourceSpec &S) {
  support::SplitMix64 Rng(S.Seed);
  std::vector<std::int64_t> Out;
  Out.reserve(S.Count);
  for (std::uint32_t I = 0; I != S.Count; ++I) {
    switch (S.Data) {
    case DataClass::Uniform:
      Out.push_back(static_cast<std::int64_t>(Rng.nextBelow(101)) - 50);
      break;
    case DataClass::Skewed:
      Out.push_back(Rng.nextBelow(10) != 0
                        ? static_cast<std::int64_t>(Rng.nextBelow(5)) - 2
                        : static_cast<std::int64_t>(Rng.nextBelow(101)) - 50);
      break;
    case DataClass::Constant:
      Out.push_back(7);
      break;
    case DataClass::Ascending:
      Out.push_back(static_cast<std::int64_t>(I) - 10);
      break;
    }
  }
  return Out;
}

//===----------------------------------------------------------------===//
// AST building
//===----------------------------------------------------------------===//

TypeRef tyOf(ElemTy T) {
  return T == ElemTy::Double ? Type::doubleTy() : Type::int64Ty();
}

E constOf(ElemTy T, double V) {
  if (T == ElemTy::Double)
    return E(V);
  return E(static_cast<std::int64_t>(V));
}

E convertTo(const E &X, ElemTy From, ElemTy To) {
  if (From == To)
    return X;
  return To == ElemTy::Double ? toDouble(X) : toInt64(X);
}

/// Builder state threaded through the op loop.
struct BuildCtx {
  const QuerySpec &Spec;
  std::map<unsigned, const SourceSpec *> Slots;
  Query Q;
  ElemTy Cur = ElemTy::Double;
  bool Terminal = false;
  unsigned OuterCounter = 0;
  std::string Err;

  explicit BuildCtx(const QuerySpec &Spec) : Spec(Spec) {}

  bool fail(const std::string &Msg) {
    Err = Msg;
    return false;
  }

  E elemParam() const {
    return param(Cur == ElemTy::Double ? "x" : "xi", tyOf(Cur));
  }

  /// Fresh outer-parameter handle for a nested op (unique name so nested
  /// rewrites cannot collide across successive nesting operators).
  E freshOuter() {
    return param("o" + std::to_string(OuterCounter++), tyOf(Cur));
  }

  bool buildTrans(const OpSpec &Op, Lambda &L, ElemTy &NewTy) {
    E X = elemParam();
    NewTy = Cur;
    switch (Op.T) {
    case TransTmpl::Id:
      L = lambda({X}, X);
      return true;
    case TransTmpl::AddC:
      L = lambda({X}, X + constOf(Cur, Op.DArg));
      return true;
    case TransTmpl::MulC:
      L = lambda({X}, X * constOf(Cur, Op.DArg));
      return true;
    case TransTmpl::Square:
      L = lambda({X}, X * X);
      return true;
    case TransTmpl::SqrtAbs:
      if (Cur != ElemTy::Double)
        return fail("sqrtabs requires double elements");
      L = lambda({X}, sqrt(abs(X)));
      return true;
    case TransTmpl::Negate:
      L = lambda({X}, -X);
      return true;
    case TransTmpl::CapScale:
      if (Cur == ElemTy::Double) {
        if (!Spec.HasCaptureD)
          return fail("capscale needs a double capture");
        L = lambda({X}, X * capture(0, Type::doubleTy()));
      } else {
        if (!Spec.HasCaptureI)
          return fail("capscale needs an int64 capture");
        L = lambda({X}, X * capture(1, Type::int64Ty()));
      }
      return true;
    case TransTmpl::ToInt64:
      if (Cur != ElemTy::Double)
        return fail("toint64 requires double elements");
      L = lambda({X}, toInt64(X));
      NewTy = ElemTy::Int64;
      return true;
    case TransTmpl::ToDouble:
      if (Cur != ElemTy::Int64)
        return fail("todouble requires int64 elements");
      L = lambda({X}, toDouble(X));
      NewTy = ElemTy::Double;
      return true;
    case TransTmpl::DivNz: {
      if (Cur != ElemTy::Int64)
        return fail("divnz requires int64 elements");
      std::int64_t C = static_cast<std::int64_t>(Op.DArg);
      if (C < 2 || C > 9)
        return fail("divnz constant must be in [2, 9]");
      // Divisor 1 + abs(x % C) is in [1, C]: provably nonzero, so the
      // plan rewriter elides the ckdiv trap while every backend still
      // must compute the identical quotient.
      L = lambda({X}, X / (E(std::int64_t{1}) + abs(X % E(C))));
      return true;
    }
    case TransTmpl::DivMaybe:
      if (Cur != ElemTy::Int64)
        return fail("divmaybe requires int64 elements");
      // The divisor's interval is [0, 7] (the condition cannot be decided
      // statically for unbounded elements), so trap elision must NOT
      // fire; at run time the generator's magnitude cap (1e6 < 2000001)
      // keeps the zero branch unreachable.
      L = lambda({X}, X / cond(X > E(std::int64_t{2000001}),
                               E(std::int64_t{0}), E(std::int64_t{7})));
      return true;
    }
    return fail("bad trans template");
  }

  bool buildPred(const OpSpec &Op, Lambda &L) {
    E X = elemParam();
    switch (Op.P) {
    case PredTmpl::True:
      L = lambda({X}, E(true));
      return true;
    case PredTmpl::False:
      L = lambda({X}, E(false));
      return true;
    case PredTmpl::GtC:
      L = lambda({X}, X > constOf(Cur, Op.DArg));
      return true;
    case PredTmpl::LtC:
      L = lambda({X}, X < constOf(Cur, Op.DArg));
      return true;
    case PredTmpl::AbsGtC:
      L = lambda({X}, abs(X) > constOf(Cur, Op.DArg));
      return true;
    case PredTmpl::EvenInt:
      if (Cur != ElemTy::Int64)
        return fail("evenint requires int64 elements");
      L = lambda({X}, X % E(std::int64_t{2}) == E(std::int64_t{0}));
      return true;
    }
    return fail("bad pred template");
  }

  bool buildKey(const OpSpec &Op, Lambda &L) {
    E X = elemParam();
    switch (Op.Key) {
    case KeyTmpl::Id:
      L = lambda({X}, X);
      return true;
    case KeyTmpl::Abs:
      L = lambda({X}, abs(X));
      return true;
    case KeyTmpl::Negate:
      L = lambda({X}, -X);
      return true;
    case KeyTmpl::Bucket: {
      if (Op.DArg == 0.0)
        return fail("bucket key needs a nonzero constant");
      if (Cur == ElemTy::Double)
        L = lambda({X}, toInt64(X / E(Op.DArg)));
      else
        L = lambda({X}, X / E(static_cast<std::int64_t>(Op.DArg)));
      return true;
    }
    }
    return fail("bad key template");
  }

  /// Key selector that provably lands in [0, Bound): abs(x) % Bound
  /// (through toInt64 for double elements).
  Lambda denseKey(std::int64_t Bound) {
    E X = elemParam();
    E B = E(Bound);
    if (Cur == ElemTy::Double)
      return lambda({X}, toInt64(abs(X)) % B);
    return lambda({X}, abs(X) % B);
  }

  /// The nested select body over (outer, inner), converted to a common
  /// element type (double wins).
  E nestedBody(NestedTmpl N, const E &Outer, ElemTy OuterTy, const E &Inner,
               ElemTy InnerTy, ElemTy &OutTy) {
    OutTy = (OuterTy == ElemTy::Double || InnerTy == ElemTy::Double)
                ? ElemTy::Double
                : ElemTy::Int64;
    E A = convertTo(Outer, OuterTy, OutTy);
    E B = convertTo(Inner, InnerTy, OutTy);
    return N == NestedTmpl::AddXY ? A + B : A * B;
  }

  const SourceSpec *nestedSource(const OpSpec &Op) {
    auto It = Slots.find(Op.Slot);
    if (It == Slots.end()) {
      fail("nested op references undeclared source slot " +
           std::to_string(Op.Slot));
      return nullptr;
    }
    if (Op.Slot == 0) {
      // The differential harness view-partitions slot 0; a nested query
      // over the same buffer would see only the partition and diverge
      // from the sequential oracle by construction.
      fail("nested ops must not reference the partitioned slot 0");
      return nullptr;
    }
    return It->second;
  }

  static Query sourceQuery(const SourceSpec &S) {
    return S.Ty == ElemTy::Double ? Query::doubleArray(S.Slot)
                                  : Query::int64Array(S.Slot);
  }

  bool applyOp(const OpSpec &Op) {
    if (Terminal)
      return fail("operator after a terminal aggregate/group sink");
    switch (Op.K) {
    case OpK::Select: {
      Lambda L;
      ElemTy NewTy;
      if (!buildTrans(Op, L, NewTy))
        return false;
      Q = Q.select(std::move(L));
      Cur = NewTy;
      return true;
    }
    case OpK::Where: {
      Lambda L;
      if (!buildPred(Op, L))
        return false;
      Q = Q.where(std::move(L));
      return true;
    }
    // Negative counts are allowed: the runtime clamps them (Take ->
    // empty, Skip -> no-op) and the rewriter folds them, so they are a
    // deliberate differential shape, not a grammar error. The strict
    // analyzer still flags them (ST3001); the harness tolerates that
    // one code.
    case OpK::Take:
      Q = Q.take(E(Op.IArg));
      return true;
    case OpK::Skip:
      Q = Q.skip(E(Op.IArg));
      return true;
    case OpK::TakeWhile: {
      Lambda L;
      if (!buildPred(Op, L))
        return false;
      Q = Q.takeWhile(std::move(L));
      return true;
    }
    case OpK::SkipWhile: {
      Lambda L;
      if (!buildPred(Op, L))
        return false;
      Q = Q.skipWhile(std::move(L));
      return true;
    }
    case OpK::OrderBy: {
      Lambda L;
      if (!buildKey(Op, L))
        return false;
      Q = Q.orderBy(std::move(L));
      return true;
    }
    case OpK::ToArray:
      Q = Q.toArray();
      return true;
    case OpK::SelectMany: {
      const SourceSpec *Inner = nestedSource(Op);
      if (!Inner)
        return false;
      E Outer = freshOuter();
      ElemTy OuterTy = Cur;
      Query Nested = sourceQuery(*Inner);
      if (Op.IArg > 0)
        Nested = Nested.take(E(Op.IArg));
      E Y = param(Inner->Ty == ElemTy::Double ? "y" : "yi", tyOf(Inner->Ty));
      ElemTy OutTy;
      E Body = nestedBody(Op.N, Outer, OuterTy, Y, Inner->Ty, OutTy);
      Nested = Nested.select(lambda({Y}, Body));
      Q = Q.selectMany(Outer, Nested);
      Cur = OutTy;
      return true;
    }
    case OpK::SelectManyRange: {
      if (Cur != ElemTy::Int64)
        return fail("selectmanyrange requires int64 elements");
      if (Op.IArg < 1)
        return fail("selectmanyrange needs a positive mod bound");
      E Outer = freshOuter();
      E D = param("d", Type::int64Ty());
      E Body = Op.N == NestedTmpl::AddXY ? D + Outer : D * Outer;
      Query Nested = Query::range(E(std::int64_t{0}), abs(Outer) % E(Op.IArg))
                         .select(lambda({D}, Body));
      Q = Q.selectMany(Outer, Nested);
      return true;
    }
    case OpK::SelectNestedSum: {
      const SourceSpec *Inner = nestedSource(Op);
      if (!Inner)
        return false;
      E Outer = freshOuter();
      ElemTy OuterTy = Cur;
      E Y = param(Inner->Ty == ElemTy::Double ? "y" : "yi", tyOf(Inner->Ty));
      ElemTy OutTy;
      E Body = nestedBody(Op.N, Outer, OuterTy, Y, Inner->Ty, OutTy);
      Query Nested = sourceQuery(*Inner).select(lambda({Y}, Body)).sum();
      Q = Q.selectNested(Outer, Nested);
      Cur = OutTy;
      return true;
    }
    case OpK::WhereNestedAny: {
      const SourceSpec *Inner = nestedSource(Op);
      if (!Inner)
        return false;
      E Outer = freshOuter();
      ElemTy OuterTy = Cur;
      E Y = param(Inner->Ty == ElemTy::Double ? "y" : "yi", tyOf(Inner->Ty));
      E Bp = param("nb", Type::boolTy());
      ElemTy CmpTy = (OuterTy == ElemTy::Double || Inner->Ty == ElemTy::Double)
                         ? ElemTy::Double
                         : ElemTy::Int64;
      E Cmp = convertTo(Y, Inner->Ty, CmpTy) > convertTo(Outer, OuterTy, CmpTy);
      Query Nested =
          sourceQuery(*Inner).aggregate(E(false), lambda({Bp, Y}, Bp || Cmp));
      Q = Q.whereNested(Outer, Nested);
      return true;
    }
    case OpK::GroupAgg:
    case OpK::GroupAggDense:
      return applyGroupAgg(Op);
    case OpK::Agg:
      return applyAgg(Op);
    }
    return fail("bad op kind");
  }

  bool applyGroupAgg(const OpSpec &Op) {
    Lambda KeySel;
    if (Op.K == OpK::GroupAggDense) {
      if (Op.IArg < 1 || Op.IArg > 64)
        return fail("dense key bound must be in [1, 64]");
      KeySel = denseKey(Op.IArg);
    } else {
      if (!buildKey(Op, KeySel))
        return false;
      // Hash group keys must be int64; Id/Abs/Negate keys over double
      // elements would be double-typed.
      if (Cur == ElemTy::Double && Op.Key != KeyTmpl::Bucket)
        return fail("groupagg over double elements requires a bucket key");
    }

    E X = elemParam();
    E SeedE = E(0.0);
    Lambda Step;
    Lambda Combine;
    switch (Op.G) {
    case GroupStep::Sum: {
      E A = param("a", tyOf(Cur));
      SeedE = constOf(Cur, 0);
      Step = lambda({A, X}, A + X);
      if (Op.Combine) {
        E B = param("b", tyOf(Cur));
        Combine = lambda({A, B}, A + B);
      }
      break;
    }
    case GroupStep::Count: {
      E C = param("c", Type::int64Ty());
      SeedE = E(std::int64_t{0});
      Step = lambda({C, X}, C + E(std::int64_t{1}));
      if (Op.Combine) {
        E C2 = param("c2", Type::int64Ty());
        Combine = lambda({C, C2}, C + C2);
      }
      break;
    }
    case GroupStep::Max: {
      E A = param("a", tyOf(Cur));
      SeedE = Cur == ElemTy::Double ? E(-1e18)
                                    : E(std::int64_t{-1000000000000LL});
      Step = lambda({A, X}, max(A, X));
      if (Op.Combine) {
        E B = param("b", tyOf(Cur));
        Combine = lambda({A, B}, max(A, B));
      }
      break;
    }
    }

    if (Op.K == OpK::GroupAggDense)
      Q = Q.groupByAggregateDense(std::move(KeySel), E(Op.IArg),
                                  std::move(SeedE), std::move(Step), Lambda(),
                                  std::move(Combine));
    else
      Q = Q.groupByAggregate(std::move(KeySel), std::move(SeedE),
                             std::move(Step), Lambda(), std::move(Combine));
    Terminal = true;
    return true;
  }

  bool applyAgg(const OpSpec &Op) {
    E X = elemParam();
    switch (Op.A) {
    case AggKind::Sum:
      Q = Q.sum();
      break;
    case AggKind::Count:
      Q = Q.count();
      break;
    case AggKind::Min:
      Q = Q.min();
      break;
    case AggKind::Max:
      Q = Q.max();
      break;
    case AggKind::Average:
      if (Cur != ElemTy::Double)
        return fail("average requires double elements");
      Q = Q.average();
      break;
    case AggKind::Any:
      Q = Q.any();
      break;
    case AggKind::AllGtC:
      Q = Q.all(lambda({X}, X > constOf(Cur, Op.DArg)));
      break;
    case AggKind::First:
      Q = Q.firstOrDefault(constOf(Cur, Op.DArg));
      break;
    case AggKind::Contains:
      if (Cur != ElemTy::Int64)
        return fail("contains requires int64 elements");
      Q = Q.contains(E(static_cast<std::int64_t>(Op.DArg)));
      break;
    case AggKind::FoldAssoc:
    case AggKind::FoldNonAssoc:
    case AggKind::FoldNoComb: {
      E A = param("a", tyOf(Cur));
      E B = param("b", tyOf(Cur));
      Lambda Combine;
      if (Op.A == AggKind::FoldAssoc)
        Combine = lambda({A, B}, A + B);
      else if (Op.A == AggKind::FoldNonAssoc)
        Combine = lambda({A, B}, A - B);
      Q = Q.aggregate(constOf(Cur, 0), lambda({A, X}, A + X), Lambda(),
                      std::move(Combine));
      break;
    }
    case AggKind::FoldPairMean: {
      TypeRef AccTy = Type::pairTy(Type::doubleTy(), Type::int64Ty());
      E A = param("pa", AccTy);
      E B = param("pb", AccTy);
      E Xd = convertTo(X, Cur, ElemTy::Double);
      Q = Q.aggregate(
          pair(E(0.0), E(std::int64_t{0})),
          lambda({A, X}, pair(A.first() + Xd, A.second() + E(std::int64_t{1}))),
          lambda({A}, cond(A.second() > E(std::int64_t{0}),
                           A.first() / toDouble(A.second()), E(0.0))),
          lambda({A, B},
                 pair(A.first() + B.first(), A.second() + B.second())));
      break;
    }
    }
    Terminal = true;
    return true;
  }
};

} // namespace

bool fuzz::buildSpec(const QuerySpec &Spec, BuiltQuery &Out,
                     std::string *Err) {
  auto fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };

  if (Spec.Sources.empty())
    return fail("spec declares no sources");
  if (Spec.Sources[0].Slot != 0)
    return fail("the primary source must use slot 0");

  BuildCtx Ctx(Spec);
  for (const SourceSpec &S : Spec.Sources) {
    if (!Ctx.Slots.emplace(S.Slot, &S).second)
      return fail("duplicate source slot " + std::to_string(S.Slot));
  }

  Ctx.Q = BuildCtx::sourceQuery(Spec.Sources[0]);
  Ctx.Cur = Spec.Sources[0].Ty;
  for (const OpSpec &Op : Spec.Ops)
    if (!Ctx.applyOp(Op)) {
      if (Err)
        *Err = Ctx.Err;
      return false;
    }

  Out.Q = std::move(Ctx.Q);
  Out.DoubleBufs.clear();
  Out.Int64Bufs.clear();
  Out.B = Bindings();
  for (const SourceSpec &S : Spec.Sources) {
    if (S.Ty == ElemTy::Double) {
      Out.DoubleBufs.push_back(makeDoubles(S));
      const std::vector<double> &Buf = Out.DoubleBufs.back();
      Out.B.bindDoubleArray(S.Slot, Buf.data(),
                            static_cast<std::int64_t>(Buf.size()));
    } else {
      Out.Int64Bufs.push_back(makeInt64s(S));
      const std::vector<std::int64_t> &Buf = Out.Int64Bufs.back();
      Out.B.bindInt64Array(S.Slot, Buf.data(),
                           static_cast<std::int64_t>(Buf.size()));
    }
  }
  if (Spec.HasCaptureD)
    Out.B.setValue(0, Value(Spec.CaptureD));
  if (Spec.HasCaptureI)
    Out.B.setValue(1, Value(Spec.CaptureI));
  return true;
}

//===----------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------===//

std::string fuzz::serializeSpec(const QuerySpec &Spec) {
  std::string Out = "steno-fuzz v1\n";
  for (const SourceSpec &S : Spec.Sources)
    Out += support::strFormat(
        "source %u %s %u %s %llu\n", S.Slot, tokenName(ElemTyTokens, S.Ty),
        S.Count, tokenName(DataClassTokens, S.Data),
        static_cast<unsigned long long>(S.Seed));
  if (Spec.HasCaptureD)
    Out += "capture double " + fmtDouble(Spec.CaptureD) + "\n";
  if (Spec.HasCaptureI)
    Out += support::strFormat("capture int64 %lld\n",
                              static_cast<long long>(Spec.CaptureI));
  for (const OpSpec &Op : Spec.Ops) {
    switch (Op.K) {
    case OpK::Select:
      Out += std::string("op select ") + tokenName(TransTokens, Op.T) + " " +
             fmtDouble(Op.DArg) + "\n";
      break;
    case OpK::Where:
      Out += std::string("op where ") + tokenName(PredTokens, Op.P) + " " +
             fmtDouble(Op.DArg) + "\n";
      break;
    case OpK::Take:
      Out += support::strFormat("op take %lld\n",
                                static_cast<long long>(Op.IArg));
      break;
    case OpK::Skip:
      Out += support::strFormat("op skip %lld\n",
                                static_cast<long long>(Op.IArg));
      break;
    case OpK::TakeWhile:
      Out += std::string("op takewhile ") + tokenName(PredTokens, Op.P) +
             " " + fmtDouble(Op.DArg) + "\n";
      break;
    case OpK::SkipWhile:
      Out += std::string("op skipwhile ") + tokenName(PredTokens, Op.P) +
             " " + fmtDouble(Op.DArg) + "\n";
      break;
    case OpK::OrderBy:
      Out += std::string("op orderby ") + tokenName(KeyTokens, Op.Key) + " " +
             fmtDouble(Op.DArg) + "\n";
      break;
    case OpK::ToArray:
      Out += "op toarray\n";
      break;
    case OpK::SelectMany:
      Out += support::strFormat("op selectmany %u %s %lld\n", Op.Slot,
                                tokenName(NestedTokens, Op.N),
                                static_cast<long long>(Op.IArg));
      break;
    case OpK::SelectManyRange:
      Out += support::strFormat("op selectmanyrange %lld %s\n",
                                static_cast<long long>(Op.IArg),
                                tokenName(NestedTokens, Op.N));
      break;
    case OpK::SelectNestedSum:
      Out += support::strFormat("op selectnestedsum %u %s\n", Op.Slot,
                                tokenName(NestedTokens, Op.N));
      break;
    case OpK::WhereNestedAny:
      Out += support::strFormat("op wherenestedany %u\n", Op.Slot);
      break;
    case OpK::GroupAgg:
      Out += std::string("op groupagg ") + tokenName(KeyTokens, Op.Key) +
             " " + fmtDouble(Op.DArg) + " " +
             tokenName(GroupStepTokens, Op.G) +
             (Op.Combine ? " combine" : " nocombine") + "\n";
      break;
    case OpK::GroupAggDense:
      Out += support::strFormat(
          "op groupaggdense %lld %s %s\n", static_cast<long long>(Op.IArg),
          tokenName(GroupStepTokens, Op.G),
          Op.Combine ? "combine" : "nocombine");
      break;
    case OpK::Agg:
      Out += std::string("op agg ") + tokenName(AggTokens, Op.A) + " " +
             fmtDouble(Op.DArg) + "\n";
      break;
    }
  }
  Out += "end\n";
  return Out;
}

bool fuzz::parseSpec(const std::string &Text, QuerySpec &Spec,
                     std::string *Err) {
  auto fail = [&](unsigned LineNo, const std::string &Msg) {
    if (Err)
      *Err = "line " + std::to_string(LineNo) + ": " + Msg;
    return false;
  };

  Spec = QuerySpec();
  std::istringstream In(Text);
  std::string Line;
  unsigned LineNo = 0;
  bool SawHeader = false;
  bool SawEnd = false;
  while (std::getline(In, Line)) {
    ++LineNo;
    // Strip comments and skip blank lines.
    std::size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line.erase(Hash);
    std::istringstream Fields(Line);
    std::string Tok;
    if (!(Fields >> Tok))
      continue;
    if (SawEnd)
      return fail(LineNo, "content after 'end'");

    if (!SawHeader) {
      std::string Version;
      Fields >> Version;
      if (Tok != "steno-fuzz" || Version != "v1")
        return fail(LineNo, "expected 'steno-fuzz v1' header");
      SawHeader = true;
      continue;
    }

    if (Tok == "end") {
      SawEnd = true;
      continue;
    }
    if (Tok == "source") {
      SourceSpec S;
      std::string Ty, Cls;
      unsigned long long Seed = 0;
      if (!(Fields >> S.Slot >> Ty >> S.Count >> Cls >> Seed))
        return fail(LineNo, "malformed source line");
      if (!tokenParse(ElemTyTokens, Ty, S.Ty))
        return fail(LineNo, "unknown element type '" + Ty + "'");
      if (!tokenParse(DataClassTokens, Cls, S.Data))
        return fail(LineNo, "unknown data class '" + Cls + "'");
      S.Seed = Seed;
      Spec.Sources.push_back(S);
      continue;
    }
    if (Tok == "capture") {
      std::string Ty;
      if (!(Fields >> Ty))
        return fail(LineNo, "malformed capture line");
      if (Ty == "double") {
        if (!(Fields >> Spec.CaptureD))
          return fail(LineNo, "malformed double capture");
        Spec.HasCaptureD = true;
      } else if (Ty == "int64") {
        long long V;
        if (!(Fields >> V))
          return fail(LineNo, "malformed int64 capture");
        Spec.CaptureI = V;
        Spec.HasCaptureI = true;
      } else {
        return fail(LineNo, "unknown capture type '" + Ty + "'");
      }
      continue;
    }
    if (Tok != "op")
      return fail(LineNo, "unknown directive '" + Tok + "'");

    std::string Kind;
    if (!(Fields >> Kind))
      return fail(LineNo, "missing op kind");
    OpSpec Op;
    auto parseTok = [&](auto &Table, auto &Out, const char *What) {
      std::string S;
      if (!(Fields >> S) || !tokenParse(Table, S, Out)) {
        fail(LineNo, std::string("bad ") + What + " token");
        return false;
      }
      return true;
    };
    long long LL = 0;
    if (Kind == "select") {
      Op.K = OpK::Select;
      if (!parseTok(TransTokens, Op.T, "trans") || !(Fields >> Op.DArg))
        return fail(LineNo, "malformed select op");
    } else if (Kind == "where") {
      Op.K = OpK::Where;
      if (!parseTok(PredTokens, Op.P, "pred") || !(Fields >> Op.DArg))
        return fail(LineNo, "malformed where op");
    } else if (Kind == "take" || Kind == "skip") {
      Op.K = Kind == "take" ? OpK::Take : OpK::Skip;
      if (!(Fields >> LL))
        return fail(LineNo, "malformed count");
      Op.IArg = LL;
    } else if (Kind == "takewhile" || Kind == "skipwhile") {
      Op.K = Kind == "takewhile" ? OpK::TakeWhile : OpK::SkipWhile;
      if (!parseTok(PredTokens, Op.P, "pred") || !(Fields >> Op.DArg))
        return fail(LineNo, "malformed while op");
    } else if (Kind == "orderby") {
      Op.K = OpK::OrderBy;
      if (!parseTok(KeyTokens, Op.Key, "key") || !(Fields >> Op.DArg))
        return fail(LineNo, "malformed orderby op");
    } else if (Kind == "toarray") {
      Op.K = OpK::ToArray;
    } else if (Kind == "selectmany") {
      Op.K = OpK::SelectMany;
      if (!(Fields >> Op.Slot) || !parseTok(NestedTokens, Op.N, "nested") ||
          !(Fields >> LL))
        return fail(LineNo, "malformed selectmany op");
      Op.IArg = LL;
    } else if (Kind == "selectmanyrange") {
      Op.K = OpK::SelectManyRange;
      if (!(Fields >> LL) || !parseTok(NestedTokens, Op.N, "nested"))
        return fail(LineNo, "malformed selectmanyrange op");
      Op.IArg = LL;
    } else if (Kind == "selectnestedsum") {
      Op.K = OpK::SelectNestedSum;
      if (!(Fields >> Op.Slot) || !parseTok(NestedTokens, Op.N, "nested"))
        return fail(LineNo, "malformed selectnestedsum op");
    } else if (Kind == "wherenestedany") {
      Op.K = OpK::WhereNestedAny;
      if (!(Fields >> Op.Slot))
        return fail(LineNo, "malformed wherenestedany op");
    } else if (Kind == "groupagg") {
      Op.K = OpK::GroupAgg;
      std::string Comb;
      if (!parseTok(KeyTokens, Op.Key, "key") || !(Fields >> Op.DArg) ||
          !parseTok(GroupStepTokens, Op.G, "group step") || !(Fields >> Comb))
        return fail(LineNo, "malformed groupagg op");
      if (Comb != "combine" && Comb != "nocombine")
        return fail(LineNo, "expected combine|nocombine");
      Op.Combine = Comb == "combine";
    } else if (Kind == "groupaggdense") {
      Op.K = OpK::GroupAggDense;
      std::string Comb;
      if (!(Fields >> LL) ||
          !parseTok(GroupStepTokens, Op.G, "group step") || !(Fields >> Comb))
        return fail(LineNo, "malformed groupaggdense op");
      if (Comb != "combine" && Comb != "nocombine")
        return fail(LineNo, "expected combine|nocombine");
      Op.IArg = LL;
      Op.Combine = Comb == "combine";
    } else if (Kind == "agg") {
      Op.K = OpK::Agg;
      if (!parseTok(AggTokens, Op.A, "agg") || !(Fields >> Op.DArg))
        return fail(LineNo, "malformed agg op");
    } else {
      return fail(LineNo, "unknown op kind '" + Kind + "'");
    }
    Spec.Ops.push_back(Op);
  }
  if (!SawHeader)
    return fail(LineNo, "missing 'steno-fuzz v1' header");
  if (!SawEnd)
    return fail(LineNo, "missing 'end' sentinel (truncated file?)");
  return true;
}

std::string fuzz::specSummary(const QuerySpec &Spec) {
  std::string Out;
  for (const SourceSpec &S : Spec.Sources) {
    if (!Out.empty())
      Out += ", ";
    Out += support::strFormat("%s[%u,%s]", tokenName(ElemTyTokens, S.Ty),
                              S.Count, tokenName(DataClassTokens, S.Data));
  }
  for (const OpSpec &Op : Spec.Ops) {
    Out += " |> ";
    switch (Op.K) {
    case OpK::Select:
      Out += std::string("select(") + tokenName(TransTokens, Op.T) + ")";
      break;
    case OpK::Where:
      Out += std::string("where(") + tokenName(PredTokens, Op.P) + ")";
      break;
    case OpK::Take:
      Out += support::strFormat("take(%lld)", static_cast<long long>(Op.IArg));
      break;
    case OpK::Skip:
      Out += support::strFormat("skip(%lld)", static_cast<long long>(Op.IArg));
      break;
    case OpK::TakeWhile:
      Out += std::string("takewhile(") + tokenName(PredTokens, Op.P) + ")";
      break;
    case OpK::SkipWhile:
      Out += std::string("skipwhile(") + tokenName(PredTokens, Op.P) + ")";
      break;
    case OpK::OrderBy:
      Out += std::string("orderby(") + tokenName(KeyTokens, Op.Key) + ")";
      break;
    case OpK::ToArray:
      Out += "toarray";
      break;
    case OpK::SelectMany:
      Out += support::strFormat("selectmany(%u,%s)", Op.Slot,
                                tokenName(NestedTokens, Op.N));
      break;
    case OpK::SelectManyRange:
      Out += support::strFormat("selectmanyrange(%%%lld)",
                                static_cast<long long>(Op.IArg));
      break;
    case OpK::SelectNestedSum:
      Out += support::strFormat("selectnestedsum(%u)", Op.Slot);
      break;
    case OpK::WhereNestedAny:
      Out += support::strFormat("wherenestedany(%u)", Op.Slot);
      break;
    case OpK::GroupAgg:
      Out += std::string("groupagg(") + tokenName(GroupStepTokens, Op.G) +
             (Op.Combine ? ",combine)" : ",nocombine)");
      break;
    case OpK::GroupAggDense:
      Out += support::strFormat("groupaggdense(%lld,%s)",
                                static_cast<long long>(Op.IArg),
                                tokenName(GroupStepTokens, Op.G));
      break;
    case OpK::Agg:
      Out += std::string("agg(") + tokenName(AggTokens, Op.A) + ")";
      break;
    }
  }
  return Out;
}
