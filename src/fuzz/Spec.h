//===- fuzz/Spec.h - Serializable fuzz query descriptions ------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential fuzzer does not serialize query ASTs; it serializes
/// *descriptions*. A QuerySpec is a small, text-round-trippable recipe —
/// sources with data distributions, captures, and a pipeline of operator
/// descriptors drawn from a fixed menu of typed expression templates —
/// from which buildSpec() deterministically reconstructs the query AST
/// and its input buffers. This keeps three properties the harness needs:
///
///  * every mismatch reproducer is a human-readable file a test can
///    replay byte-for-byte (tests/fuzz_corpus/*.fuzzspec);
///  * the shrinker works on the description (drop an op, empty a source,
///    simplify a template) instead of on expression trees;
///  * hand-written corpus entries are validated by the same builder the
///    generator uses, so a malformed file is a clean error, not an abort
///    inside the optimizer.
///
/// The template menu is trap-free *at run time*: integer division/modulo
/// appears only with divisors that are provably nonzero on the generated
/// data (constant, `1 + abs(x % C)`, or a conditional whose zero branch
/// is unreachable at the tracked magnitudes), and the generator tracks a
/// static magnitude bound so int64 arithmetic cannot overflow (which
/// would be UB and poison the differential oracle). The divnz/divmaybe
/// shapes deliberately straddle the plan rewriter's trap-elision line:
/// divnz has a divisor interval the abstract interpreter proves nonzero
/// (ckdiv elided), divmaybe's divisor interval includes 0 (ckdiv kept)
/// even though the zero branch never executes on fuzz data.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_FUZZ_SPEC_H
#define STENO_FUZZ_SPEC_H

#include "query/Query.h"
#include "steno/Bindings.h"

#include <cstdint>
#include <string>
#include <vector>

namespace steno {
namespace fuzz {

/// Scalar element types the pipeline tracks between operators.
enum class ElemTy { Double, Int64 };

/// How a source buffer is filled (always from the spec's own seed, so a
/// spec file alone reproduces the run).
enum class DataClass {
  Uniform,   ///< Uniform in [-100, 100] (doubles) / [-50, 50] (int64).
  Skewed,    ///< 90% drawn from a narrow band, 10% outliers — exercises
             ///< group-key clustering and morsel load imbalance.
  Constant,  ///< Every element identical (duplicate keys, sort ties).
  Ascending  ///< Sorted ramp (already-ordered input, skip/take edges).
};

/// Element-wise transform templates (Select bodies).
enum class TransTmpl {
  Id,       ///< x
  AddC,     ///< x + C
  MulC,     ///< x * C
  Square,   ///< x * x
  SqrtAbs,  ///< sqrt(abs(x))             (double elements only)
  Negate,   ///< -x
  CapScale, ///< x * capture(0|1)         (slot matches element type)
  ToInt64,  ///< toInt64(x)               (double elements only)
  ToDouble, ///< toDouble(x)              (int64 elements only)
  DivNz,    ///< x / (1 + abs(x % C))     (int64 only; C = DArg in [2,9].
            ///< Divisor interval [1, C]: the rewriter elides the trap.)
  DivMaybe  ///< x / cond(x > 2000001, 0, 7)  (int64 only. The divisor
            ///< interval includes 0 so ckdiv must stay, but the zero
            ///< branch is unreachable at the generator's 1e6 magnitude
            ///< cap — every backend must agree without trapping.)
};

/// Predicate templates (Where/TakeWhile/SkipWhile bodies).
enum class PredTmpl {
  True,    ///< constant true (analysis flags AlwaysTruePred, a warning)
  False,   ///< constant false (guaranteed-empty tail)
  GtC,     ///< x > C
  LtC,     ///< x < C
  AbsGtC,  ///< abs(x) > C
  EvenInt  ///< x % 2 == 0                (int64 elements only)
};

/// OrderBy / group key-selector templates.
enum class KeyTmpl {
  Id,     ///< x
  Abs,    ///< abs(x) — ties between -v and +v exercise sort stability
  Negate, ///< -x (descending)
  Bucket  ///< toInt64(x / C) (double) or x / C (int64); C nonzero const
};

/// Terminal aggregate kinds.
enum class AggKind {
  Sum,
  Count,
  Min,
  Max,
  Average,      ///< double elements only
  Any,
  AllGtC,       ///< all(x > C)
  First,        ///< firstOrDefault(C)
  Contains,     ///< contains(C), int64 elements only (exact equality)
  FoldAssoc,    ///< aggregate(0, a + x, combine a + b): certified
  FoldNonAssoc, ///< aggregate(0, a + x, combine a - b): provably
                ///< non-associative, must force the sequential fallback
  FoldNoComb,   ///< aggregate(0, a + x) with no combiner: structurally
                ///< unsplittable, sequential fallback via the §6 planner
  FoldPairMean  ///< pair(sum, count) accumulator with pairwise combine
                ///< and a result selector dividing — double result
};

/// Per-group accumulator step for GroupByAggregate sinks.
enum class GroupStep { Sum, Count, Max };

/// Nested-query select bodies over (outer x, inner y).
enum class NestedTmpl { AddXY, MulXY };

/// Operator descriptor kinds. Mirrors the QUIL symbol classes: Trans
/// (Select / SelectNestedSum), Pred (Where / Take / Skip / TakeWhile /
/// SkipWhile / WhereNestedAny), Sink (OrderBy / ToArray / GroupAgg*),
/// Nested (SelectMany*), Agg.
enum class OpK {
  Select,
  Where,
  Take,
  Skip,
  TakeWhile,
  SkipWhile,
  OrderBy,
  ToArray,
  SelectMany,      ///< flatten nested array source (Figure 11 Ret-pop)
  SelectManyRange, ///< flatten nested Range(0, abs(x) % C) (int64 elems)
  SelectNestedSum, ///< nested scalar sum referencing the outer element
  WhereNestedAny,  ///< nested bool any-fold referencing the outer element
  GroupAgg,        ///< hash GroupByAggregate (terminal)
  GroupAggDense,   ///< dense-key GroupByAggregate (terminal)
  Agg              ///< terminal scalar aggregate
};

struct OpSpec {
  OpK K = OpK::Select;
  TransTmpl T = TransTmpl::Id;
  PredTmpl P = PredTmpl::True;
  KeyTmpl Key = KeyTmpl::Id;
  AggKind A = AggKind::Sum;
  GroupStep G = GroupStep::Sum;
  NestedTmpl N = NestedTmpl::AddXY;
  bool Combine = true;     ///< GroupAgg*: synthesize an associative merger
  unsigned Slot = 1;       ///< nested source slot (SelectMany/Nested ops)
  std::int64_t IArg = 0;   ///< count / dense key bound / mod bound / etc.
  double DArg = 0.0;       ///< numeric constant for templates
};

struct SourceSpec {
  unsigned Slot = 0;
  ElemTy Ty = ElemTy::Double;
  DataClass Data = DataClass::Uniform;
  std::uint32_t Count = 0;
  std::uint64_t Seed = 1;
};

/// A complete, self-contained fuzz case.
struct QuerySpec {
  std::vector<SourceSpec> Sources; ///< Sources[0] is the primary (slot 0)
  bool HasCaptureD = false;        ///< capture slot 0 (double)
  double CaptureD = 1.0;
  bool HasCaptureI = false;        ///< capture slot 1 (int64)
  std::int64_t CaptureI = 1;
  std::vector<OpSpec> Ops;
};

/// A spec realized into a runnable query: the AST, the synthesized input
/// buffers, and bindings pointing into them. Move-only (Bindings borrows
/// the buffers).
struct BuiltQuery {
  query::Query Q;
  std::vector<std::vector<double>> DoubleBufs;
  std::vector<std::vector<std::int64_t>> Int64Bufs;
  Bindings B;

  BuiltQuery() = default;
  BuiltQuery(BuiltQuery &&) = default;
  BuiltQuery &operator=(BuiltQuery &&) = default;
  BuiltQuery(const BuiltQuery &) = delete;
  BuiltQuery &operator=(const BuiltQuery &) = delete;
};

/// Deterministically builds the query AST and data for \p Spec. Returns
/// false and fills \p Err when the spec is ill-formed (unknown slot,
/// template/element-type mismatch, operator after a terminal — the
/// grammar errors a hand-edited corpus file could contain).
bool buildSpec(const QuerySpec &Spec, BuiltQuery &Out, std::string *Err);

/// Renders \p Spec in the line-based `steno-fuzz v1` format.
std::string serializeSpec(const QuerySpec &Spec);

/// Parses the `steno-fuzz v1` format ('#' starts a comment line).
/// Returns false and fills \p Err on malformed input.
bool parseSpec(const std::string &Text, QuerySpec &Spec, std::string *Err);

/// One-line structural summary for logs, e.g.
/// "double[64,uniform] |> select(mulc 2.5) |> agg(sum)".
std::string specSummary(const QuerySpec &Spec);

} // namespace fuzz
} // namespace steno

#endif // STENO_FUZZ_SPEC_H
