//===- fuzz/Shrink.h - Greedy spec minimization ----------------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Given a spec whose differential check fails, greedily applies
/// description-level reductions — drop an operator, empty or halve a
/// source, simplify a template to Id/True, drop a capture, collapse data
/// to Constant — keeping a candidate only when the check still fails.
/// Runs to a fixpoint (or a step budget), so the corpus file a mismatch
/// leaves behind is the local minimum of that failure, not a 6-operator
/// haystack.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_FUZZ_SHRINK_H
#define STENO_FUZZ_SHRINK_H

#include "fuzz/Diff.h"
#include "fuzz/Spec.h"

namespace steno {
namespace fuzz {

struct ShrinkOptions {
  /// Candidate-evaluation budget (each candidate costs one full
  /// differential check).
  unsigned MaxSteps = 400;
};

struct ShrinkStats {
  unsigned Steps = 0;      ///< Candidates evaluated.
  unsigned Reductions = 0; ///< Candidates accepted.
};

/// Minimizes \p Spec, which must currently fail check() under \p DOpts.
/// Returns the smallest failing spec found.
QuerySpec shrinkSpec(DiffHarness &Harness, const QuerySpec &Spec,
                     const DiffOptions &DOpts, const ShrinkOptions &Opts,
                     ShrinkStats &Stats);

} // namespace fuzz
} // namespace steno

#endif // STENO_FUZZ_SHRINK_H
