//===- fuzz/Diff.cpp - Differential executor over all backends -*- C++ -*-===//

#include "fuzz/Diff.h"

#include "analysis/Analysis.h"
#include "dryad/Dist.h"
#include "plinq/QueryPar.h"
#include "quil/Quil.h"
#include "steno/RefExec.h"
#include "steno/Steno.h"
#include "support/StringUtil.h"

#include <cmath>

using namespace steno;
using namespace steno::fuzz;

const char *fuzz::backendName(BackendId Id) {
  switch (Id) {
  case BackendId::Interp:
    return "interp";
  case BackendId::InterpNoRewrite:
    return "interp-norewrite";
  case BackendId::InterpVectorized:
    return "interp-vec";
  case BackendId::InterpAdaptive:
    return "interp-adapt";
  case BackendId::Jit:
    return "jit";
  case BackendId::Plinq1:
    return "plinq1";
  case BackendId::Plinq2:
    return "plinq2";
  case BackendId::Plinq8:
    return "plinq8";
  case BackendId::DryadStatic:
    return "dryad-static";
  case BackendId::DryadMorsel:
    return "dryad-morsel";
  }
  return "?";
}

bool fuzz::parseBackendName(const std::string &S, BackendId &Out) {
  for (BackendId Id : allBackends(true))
    if (S == backendName(Id)) {
      Out = Id;
      return true;
    }
  return false;
}

std::vector<BackendId> fuzz::allBackends(bool WithJit) {
  std::vector<BackendId> Out = {BackendId::Interp,
                                BackendId::InterpNoRewrite,
                                BackendId::InterpVectorized,
                                BackendId::InterpAdaptive};
  if (WithJit)
    Out.push_back(BackendId::Jit);
  Out.push_back(BackendId::Plinq1);
  Out.push_back(BackendId::Plinq2);
  Out.push_back(BackendId::Plinq8);
  Out.push_back(BackendId::DryadStatic);
  Out.push_back(BackendId::DryadMorsel);
  return Out;
}

bool fuzz::fuzzValueNear(const expr::Value &A, const expr::Value &B,
                         double Rel) {
  if (A.kind() != B.kind())
    return false;
  switch (A.kind()) {
  case expr::TypeKind::Bool:
    return A.asBool() == B.asBool();
  case expr::TypeKind::Int64:
    return A.asInt64() == B.asInt64();
  case expr::TypeKind::Double: {
    double X = A.asDouble();
    double Y = B.asDouble();
    // A uniform NaN (Average of empty, 0/0 chains) is agreement: every
    // backend computed the same nothing.
    if (std::isnan(X) && std::isnan(Y))
      return true;
    if (X == Y)
      return true;
    double Scale = std::max(std::abs(X), std::abs(Y));
    return std::abs(X - Y) <= Rel * std::max(Scale, 1.0);
  }
  case expr::TypeKind::Vec: {
    expr::VecView VA = A.asVec();
    expr::VecView VB = B.asVec();
    if (VA.Len != VB.Len)
      return false;
    for (std::int64_t I = 0; I != VA.Len; ++I)
      if (!fuzzValueNear(expr::Value(VA.Data[I]), expr::Value(VB.Data[I]),
                         Rel))
        return false;
    return true;
  }
  case expr::TypeKind::Pair:
    return fuzzValueNear(A.first(), B.first(), Rel) &&
           fuzzValueNear(A.second(), B.second(), Rel);
  }
  return false;
}

std::string fuzz::fuzzValueStr(const expr::Value &V) {
  switch (V.kind()) {
  case expr::TypeKind::Bool:
    return V.asBool() ? "true" : "false";
  case expr::TypeKind::Int64:
    return std::to_string(V.asInt64());
  case expr::TypeKind::Double:
    return support::strFormat("%.17g", V.asDouble());
  case expr::TypeKind::Vec: {
    std::string Out = "[";
    expr::VecView View = V.asVec();
    for (std::int64_t I = 0; I != View.Len; ++I) {
      if (I)
        Out += ", ";
      Out += support::strFormat("%.17g", View.Data[I]);
    }
    return Out + "]";
  }
  case expr::TypeKind::Pair:
    return "(" + fuzzValueStr(V.first()) + ", " + fuzzValueStr(V.second()) +
           ")";
  }
  return "?";
}

namespace {

/// Morsel bounds under which even an 8-element input splits, steals and
/// reassembles — the default InlineBelow would route every fuzz-sized
/// input through the sequential inline shortcut and test nothing.
dryad::MorselOptions tinyMorsels() {
  dryad::MorselOptions M;
  M.MinMorsel = 1;
  M.MaxMorsel = 8;
  M.InitialMorsel = 2;
  M.InlineBelow = 0;
  return M;
}

dryad::DistOptions quietDistOptions(const char *Name, bool TinyMorsels) {
  dryad::DistOptions DO;
  DO.Exec = Backend::Interp; // Native is sampled via BackendId::Jit only
  DO.Analyze = analysis::Mode::Off; // screened once in check()
  DO.Rewrite = true; // pinned: rewrite-off is covered by InterpNoRewrite
  DO.WarnSequentialFallback = false;
  DO.Name = Name;
  if (TinyMorsels)
    DO.Morsels = tinyMorsels();
  return DO;
}

/// Structurally rebuilds \p V with a +1 / flipped perturbation at the
/// first leaf (fault injection for the mismatch-pipeline test).
expr::Value perturbValue(const expr::Value &V,
                         std::deque<std::vector<double>> &Arena) {
  switch (V.kind()) {
  case expr::TypeKind::Bool:
    return expr::Value(!V.asBool());
  case expr::TypeKind::Int64:
    return expr::Value(V.asInt64() + 1);
  case expr::TypeKind::Double:
    return expr::Value(V.asDouble() + 1.0);
  case expr::TypeKind::Vec: {
    expr::VecView View = V.asVec();
    Arena.emplace_back(View.Data, View.Data + View.Len);
    if (!Arena.back().empty())
      Arena.back()[0] += 1.0;
    else
      Arena.back().push_back(1.0); // perturb an empty vec by growing it
    return expr::Value(
        expr::VecView{Arena.back().data(),
                      static_cast<std::int64_t>(Arena.back().size())});
  }
  case expr::TypeKind::Pair:
    return expr::Value::makePair(perturbValue(V.first(), Arena),
                                 V.second());
  }
  return V;
}

QueryResult perturbResult(const QueryResult &R) {
  auto Arena = std::make_shared<std::deque<std::vector<double>>>();
  std::vector<expr::Value> Rows;
  Rows.reserve(R.rows().size());
  for (const expr::Value &V : R.rows())
    Rows.push_back(perturbValue(V, *Arena));
  if (Rows.empty() && !R.isScalar()) {
    // Perturb an empty collection result by inventing a row.
    Rows.push_back(expr::Value(1.0));
  }
  return QueryResult(R.isScalar(), std::move(Rows), std::move(Arena));
}

/// Row-by-row comparison; fills \p Detail with the first divergence.
bool resultsMatch(const QueryResult &Ref, const QueryResult &Got,
                  std::string &Detail) {
  if (Ref.isScalar() != Got.isScalar()) {
    Detail = "scalar/collection shape disagreement";
    return false;
  }
  if (Ref.rows().size() != Got.rows().size()) {
    Detail = support::strFormat("row count %zu vs %zu", Ref.rows().size(),
                                Got.rows().size());
    return false;
  }
  for (std::size_t I = 0; I != Ref.rows().size(); ++I)
    if (!fuzzValueNear(Ref.rows()[I], Got.rows()[I])) {
      Detail = support::strFormat("row %zu: ref=", I) +
               fuzzValueStr(Ref.rows()[I]) +
               " got=" + fuzzValueStr(Got.rows()[I]);
      return false;
    }
  return true;
}

} // namespace

DiffHarness::DiffHarness() : Pool1(1), Pool2(2), Pool8(8) {}

DiffResult DiffHarness::check(const QuerySpec &Spec,
                              const DiffOptions &Opts) {
  DiffResult R;

  BuiltQuery Built;
  std::string Err;
  if (!buildSpec(Spec, Built, &Err)) {
    R.BuildError = true;
    R.Report = "spec build error: " + Err;
    return R;
  }

  // Pre-screen through the frontend so no backend compile can abort: a
  // spec the grammar or type checker rejects is a generator/shrinker bug
  // reported as BuildError, not a differential finding.
  quil::Chain Chain = quil::lower(Built.Q);
  if (auto VErr = quil::validate(Chain)) {
    R.BuildError = true;
    R.Report = "quil validation error: " + *VErr;
    return R;
  }
  analysis::AnalysisResult Analyzed = analysis::analyzeChain(Chain);
  if (!Analyzed.ok()) {
    // Negative Take/Skip counts are an intentional fuzz shape: the
    // runtime defines them (Take -> empty, Skip -> no-op) and the
    // reference oracle agrees, even though strict user compiles reject
    // them. Any other error-severity finding is a generator bug.
    bool OnlyNegativeCount = true;
    for (const analysis::Diagnostic &D : Analyzed.Diags.all())
      if (D.Sev == analysis::Severity::Error &&
          D.Code != analysis::DiagCode::NegativeCount)
        OnlyNegativeCount = false;
    if (!OnlyNegativeCount) {
      R.BuildError = true;
      R.Report = "analysis error: " +
                 Analyzed.Diags.render(analysis::Severity::Error);
      return R;
    }
  }

  QueryResult Ref = runReference(Built.Q, Built.B);

  for (BackendId Id : Opts.Backends) {
    BackendOutcome O;
    O.Id = Id;
    QueryResult Got;
    bool Certified = false;

    switch (Id) {
    case BackendId::Interp:
    case BackendId::InterpNoRewrite:
    case BackendId::InterpVectorized:
    case BackendId::Jit: {
      CompileOptions CO;
      CO.Exec = Id == BackendId::Jit ? Backend::Native : Backend::Interp;
      CO.Analyze = analysis::Mode::Off; // screened above; stay quiet
      // Pinned (not env-derived) so the harness always runs the
      // rewrite-on/off oracle pair regardless of STENO_REWRITE.
      CO.Rewrite = Id != BackendId::InterpNoRewrite;
      // Pinned likewise for the vectorize-on/off pair: the scalar interp
      // backends never take the batch path regardless of STENO_VECTORIZE,
      // InterpVectorized always requests it. Jit keeps the env default
      // (sampling whichever native TU the environment selects).
      if (Id != BackendId::Jit)
        CO.Vectorize = Id == BackendId::InterpVectorized;
      // Pinned off so these backends stay deterministic even after
      // InterpAdaptive seeded feedback for this very spec; adaptivity
      // is exercised only through its dedicated backend below.
      CO.Adaptive = false;
      CO.Name = Id == BackendId::Jit               ? "fuzz_jit"
                : Id == BackendId::InterpNoRewrite ? "fuzz_interp_norw"
                : Id == BackendId::InterpVectorized ? "fuzz_interp_vec"
                                                    : "fuzz_interp";
      Got = compileQuery(Built.Q, CO).run(Built.B);
      break;
    }
    case BackendId::InterpAdaptive: {
      // Cold: profiled adaptive compile with an empty feedback store for
      // this plan — the static order. Running it past the min-sample
      // threshold seeds the FeedbackStore through the profile
      // provenance; the warm recompile may then reorder predicates on
      // the observed cost×selectivity. The warm result is differenced:
      // adaptivity must never change results.
      CompileOptions CO;
      CO.Exec = Backend::Interp;
      CO.Analyze = analysis::Mode::Off;
      CO.Rewrite = true;
      CO.Vectorize = false;
      CO.Profile = true;
      CO.Adaptive = true; // pinned: the oracle runs despite STENO_ADAPT
      CO.Name = "fuzz_interp_adapt";
      CompiledQuery Cold = compileQuery(Built.Q, CO);
      for (int Warmup = 0; Warmup != 4; ++Warmup)
        Cold.run(Built.B);
      Got = compileQuery(Built.Q, CO).run(Built.B);
      break;
    }
    case BackendId::Plinq1:
    case BackendId::Plinq2:
    case BackendId::Plinq8: {
      bool Tiny = Id != BackendId::Plinq1;
      plinq::ParallelQuery PQ = plinq::ParallelQuery::compile(
          Built.Q, quietDistOptions(backendName(Id), Tiny));
      Certified = PQ.certified();
      if (Certified && !PQ.certificate().parallelSafe())
        O.CertViolation = true;
      dryad::ThreadPool &Pool = Id == BackendId::Plinq1   ? Pool1
                                : Id == BackendId::Plinq2 ? Pool2
                                                          : Pool8;
      Got = PQ.run(Pool, Built.B);
      break;
    }
    case BackendId::DryadStatic: {
      dryad::DistributedQuery DQ = dryad::DistributedQuery::compile(
          Built.Q, quietDistOptions("dryad_static", false));
      Certified = DQ.parallel();
      if (Certified && !DQ.certificate().parallelSafe())
        O.CertViolation = true;
      std::vector<Bindings> Parts =
          Certified ? dryad::partitionBindings(Built.B, 3)
                    : std::vector<Bindings>{Built.B};
      Got = DQ.run(Pool2, Parts);
      break;
    }
    case BackendId::DryadMorsel: {
      dryad::DistributedQuery DQ = dryad::DistributedQuery::compile(
          Built.Q, quietDistOptions("dryad_morsel", true));
      Certified = DQ.parallel();
      if (Certified && !DQ.certificate().parallelSafe())
        O.CertViolation = true;
      Got = DQ.runParallel(Pool8, Built.B);
      break;
    }
    }

    if (Opts.Inject && Opts.Inject(Id))
      Got = perturbResult(Got);

    R.Certified = R.Certified || Certified;
    O.Match = resultsMatch(Ref, Got, O.Detail);
    if (!O.Match || O.CertViolation) {
      R.Mismatch = true;
      if (!R.Report.empty())
        R.Report += "\n";
      R.Report += std::string(backendName(Id)) + ": " +
                  (O.CertViolation ? "fanned out without certificate; "
                                   : "") +
                  O.Detail;
    }
    R.Outcomes.push_back(std::move(O));
  }
  return R;
}
