//===- fuzz/Gen.h - Seeded random query-spec generator ---------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Draws random QuerySpecs covering all six QUIL symbol classes plus the
/// nested-query (pushdown-automaton) path. Generation is well-typed by
/// construction: each operator template is only offered when the current
/// pipeline element type admits it, and a static magnitude budget bounds
/// int64 arithmetic so no generated query can overflow (signed overflow
/// would be UB, and a UB-poisoned backend cannot be differentially
/// compared). Traps are excluded the same way: division/modulo only ever
/// appears with nonzero constants.
///
/// Specs from here are still *candidates*: the harness pre-screens each
/// one through lower/validate/analyze and regenerates on rejection, so
/// strict-mode compilation can never abort the fuzz process.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_FUZZ_GEN_H
#define STENO_FUZZ_GEN_H

#include "fuzz/Spec.h"
#include "support/Random.h"

namespace steno {
namespace fuzz {

struct GenOptions {
  unsigned MaxOps = 6;          ///< Pipeline length cap (pre-terminal).
  unsigned MaxSources = 3;      ///< Primary + nested sources.
  std::uint32_t MaxCount = 64;  ///< Primary source size cap. Small on
                                ///< purpose: mismatch search wants many
                                ///< queries, not big data.
  std::uint32_t MaxNestedCount = 16; ///< Nested source size cap.
};

/// Draws one well-typed, overflow-free candidate spec from \p Rng.
QuerySpec generateSpec(support::SplitMix64 &Rng, const GenOptions &Opts);

} // namespace fuzz
} // namespace steno

#endif // STENO_FUZZ_GEN_H
