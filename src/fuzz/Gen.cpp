//===- fuzz/Gen.cpp - Seeded random query-spec generator -------*- C++ -*-===//

#include "fuzz/Gen.h"

#include <algorithm>
#include <cmath>

using namespace steno;
using namespace steno::fuzz;

namespace {

/// Int64 element magnitudes are kept below this so that any fold the
/// generator can emit (sums over at most ~4k flattened elements) stays
/// far from the int64 overflow edge.
constexpr double IntMagLimit = 1.0e6;
/// Doubles cannot overflow into UB, but runaway magnitudes turn relative
/// comparison into noise; keep them bounded too.
constexpr double DoubleMagLimit = 1.0e9;
/// Flattened element-count budget across SelectMany nesting.
constexpr std::uint64_t CountLimit = 4096;

struct GenCtx {
  support::SplitMix64 &Rng;
  const GenOptions &Opts;
  QuerySpec Spec;
  ElemTy Cur;
  double Mag;            ///< Static bound on |element|.
  std::uint64_t CountBound; ///< Static bound on pipeline length.

  GenCtx(support::SplitMix64 &Rng, const GenOptions &Opts)
      : Rng(Rng), Opts(Opts) {}

  bool chance(unsigned Pct) { return Rng.nextBelow(100) < Pct; }
  std::int64_t pickInt(std::int64_t Lo, std::int64_t Hi) {
    return Lo + static_cast<std::int64_t>(
                    Rng.nextBelow(static_cast<std::uint64_t>(Hi - Lo + 1)));
  }

  double magLimit() const {
    return Cur == ElemTy::Int64 ? IntMagLimit : DoubleMagLimit;
  }

  static double sourceMag(const SourceSpec &S) {
    return S.Ty == ElemTy::Double ? 100.0 : 50.0;
  }

  SourceSpec makeSource(unsigned Slot, std::uint32_t MaxCount) {
    SourceSpec S;
    S.Slot = Slot;
    S.Ty = chance(50) ? ElemTy::Double : ElemTy::Int64;
    // Occasionally empty or single-element: the edge cases every backend
    // must agree on (seed vs. empty partition vs. empty morsel).
    std::uint64_t Roll = Rng.nextBelow(100);
    if (Roll < 6)
      S.Count = 0;
    else if (Roll < 12)
      S.Count = 1;
    else if (Roll < 30)
      S.Count = static_cast<std::uint32_t>(2 + Rng.nextBelow(7));
    else
      S.Count = static_cast<std::uint32_t>(
          1 + Rng.nextBelow(MaxCount > 1 ? MaxCount : 1));
    S.Data = static_cast<DataClass>(Rng.nextBelow(4));
    S.Seed = Rng.next() | 1;
    return S;
  }

  /// Reuses or declares a nested (non-zero slot) source. Returns 0 when
  /// the source budget is exhausted.
  unsigned nestedSlot() {
    if (Spec.Sources.size() > 1 && chance(50))
      return Spec.Sources[1 + Rng.nextBelow(Spec.Sources.size() - 1)].Slot;
    if (Spec.Sources.size() >= Opts.MaxSources)
      return Spec.Sources.size() > 1 ? Spec.Sources[1].Slot : 0;
    SourceSpec S =
        makeSource(static_cast<unsigned>(Spec.Sources.size()),
                   Opts.MaxNestedCount);
    Spec.Sources.push_back(S);
    return S.Slot;
  }

  const SourceSpec &sourceBySlot(unsigned Slot) const {
    for (const SourceSpec &S : Spec.Sources)
      if (S.Slot == Slot)
        return S;
    return Spec.Sources[0];
  }

  /// A threshold constant in the scale of the current elements, so
  /// predicates are neither always-true nor always-false in practice.
  double threshold() {
    double Span = std::max(1.0, Mag);
    double V = Rng.nextDouble(-Span, Span);
    return Cur == ElemTy::Int64 ? std::floor(V) : V;
  }

  //===----------------------------------------------------------------===//
  // Op drawing (each returns false when the template is not admissible
  // in the current state; the caller re-rolls).
  //===----------------------------------------------------------------===//

  bool drawSelect(OpSpec &Op) {
    Op.K = OpK::Select;
    switch (Rng.nextBelow(11)) {
    case 0:
      Op.T = TransTmpl::Id;
      return true;
    case 1: {
      Op.T = TransTmpl::AddC;
      Op.DArg = Cur == ElemTy::Int64
                    ? static_cast<double>(pickInt(-5, 5))
                    : Rng.nextDouble(-10.0, 10.0);
      if (Mag + std::abs(Op.DArg) > magLimit())
        return false;
      Mag += std::abs(Op.DArg);
      return true;
    }
    case 2: {
      Op.T = TransTmpl::MulC;
      static const double IntC[] = {2.0, 3.0, -2.0};
      static const double DblC[] = {2.0, 3.0, -2.0, 0.5, -0.25};
      Op.DArg = Cur == ElemTy::Int64 ? IntC[Rng.nextBelow(3)]
                                     : DblC[Rng.nextBelow(5)];
      if (Mag * std::abs(Op.DArg) > magLimit())
        return false;
      Mag *= std::abs(Op.DArg);
      return true;
    }
    case 3:
      Op.T = TransTmpl::Square;
      if (Mag * Mag > magLimit())
        return false;
      Mag *= Mag;
      return true;
    case 4:
      if (Cur != ElemTy::Double)
        return false;
      Op.T = TransTmpl::SqrtAbs;
      Mag = std::max(1.0, std::sqrt(Mag));
      return true;
    case 5:
      Op.T = TransTmpl::Negate;
      return true;
    case 6: {
      Op.T = TransTmpl::CapScale;
      double CapMag;
      if (Cur == ElemTy::Double) {
        if (!Spec.HasCaptureD)
          return false;
        CapMag = std::abs(Spec.CaptureD);
      } else {
        if (!Spec.HasCaptureI)
          return false;
        CapMag = static_cast<double>(std::abs(Spec.CaptureI));
      }
      if (Mag * std::max(1.0, CapMag) > magLimit())
        return false;
      Mag *= std::max(1.0, CapMag);
      return true;
    }
    case 7:
      if (Cur != ElemTy::Double || Mag > IntMagLimit)
        return false;
      Op.T = TransTmpl::ToInt64;
      Cur = ElemTy::Int64;
      return true;
    case 8:
      if (Cur != ElemTy::Int64)
        return false;
      Op.T = TransTmpl::ToDouble;
      Cur = ElemTy::Double;
      return true;
    case 9:
      // x / (1 + abs(x % C)): divisor provably in [1, C], so the plan
      // rewriter elides the ckdiv trap. |result| <= |x|, Mag unchanged.
      if (Cur != ElemTy::Int64)
        return false;
      Op.T = TransTmpl::DivNz;
      Op.DArg = static_cast<double>(pickInt(2, 9));
      return true;
    case 10:
      // x / cond(x > 2000001, 0, 7): divisor interval includes 0 so the
      // trap check must survive rewriting; the zero branch is
      // unreachable below the int magnitude cap. |result| <= |x|.
      if (Cur != ElemTy::Int64)
        return false;
      Op.T = TransTmpl::DivMaybe;
      return true;
    }
    return false;
  }

  bool drawPred(OpSpec &Op, OpK K) {
    Op.K = K;
    switch (Rng.nextBelow(6)) {
    case 0:
      Op.P = PredTmpl::True;
      return true;
    case 1:
      Op.P = PredTmpl::False;
      return true;
    case 2:
      Op.P = PredTmpl::GtC;
      Op.DArg = threshold();
      return true;
    case 3:
      Op.P = PredTmpl::LtC;
      Op.DArg = threshold();
      return true;
    case 4:
      Op.P = PredTmpl::AbsGtC;
      Op.DArg = std::abs(threshold());
      return true;
    case 5:
      if (Cur != ElemTy::Int64)
        return false;
      Op.P = PredTmpl::EvenInt;
      return true;
    }
    return false;
  }

  bool drawKey(OpSpec &Op) {
    switch (Rng.nextBelow(4)) {
    case 0:
      Op.Key = KeyTmpl::Id;
      return true;
    case 1:
      Op.Key = KeyTmpl::Abs;
      return true;
    case 2:
      Op.Key = KeyTmpl::Negate;
      return true;
    case 3:
      Op.Key = KeyTmpl::Bucket;
      Op.DArg = Cur == ElemTy::Double
                    ? (chance(50) ? 7.5 : 3.0)
                    : static_cast<double>(pickInt(2, 7));
      return true;
    }
    return false;
  }

  bool drawNested(OpSpec &Op, OpK K) {
    Op.K = K;
    if (K == OpK::SelectManyRange) {
      if (Cur != ElemTy::Int64)
        return false;
      Op.N = static_cast<NestedTmpl>(Rng.nextBelow(2));
      Op.IArg = pickInt(1, 8);
      std::uint64_t NewBound =
          CountBound * static_cast<std::uint64_t>(Op.IArg);
      double NewMag = Op.N == NestedTmpl::AddXY
                          ? Mag + static_cast<double>(Op.IArg)
                          : Mag * static_cast<double>(Op.IArg);
      if (NewBound > CountLimit || NewMag > IntMagLimit)
        return false;
      CountBound = NewBound;
      Mag = NewMag;
      return true;
    }

    Op.Slot = nestedSlot();
    if (Op.Slot == 0)
      return false;
    const SourceSpec &Inner = sourceBySlot(Op.Slot);
    ElemTy OutTy = (Cur == ElemTy::Double || Inner.Ty == ElemTy::Double)
                       ? ElemTy::Double
                       : ElemTy::Int64;
    Op.N = static_cast<NestedTmpl>(Rng.nextBelow(2));
    double BodyMag = Op.N == NestedTmpl::AddXY ? Mag + sourceMag(Inner)
                                               : Mag * sourceMag(Inner);
    double Limit = OutTy == ElemTy::Int64 ? IntMagLimit : DoubleMagLimit;

    switch (K) {
    case OpK::SelectMany: {
      Op.IArg = chance(30) ? pickInt(1, Inner.Count + 1) : 0;
      std::uint64_t InnerN = Op.IArg > 0
                                 ? std::min<std::uint64_t>(
                                       static_cast<std::uint64_t>(Op.IArg),
                                       Inner.Count)
                                 : Inner.Count;
      std::uint64_t NewBound = CountBound * std::max<std::uint64_t>(InnerN, 1);
      if (NewBound > CountLimit || BodyMag > Limit)
        return false;
      CountBound = NewBound;
      Mag = BodyMag;
      Cur = OutTy;
      return true;
    }
    case OpK::SelectNestedSum: {
      double SumMag = BodyMag * std::max<std::uint32_t>(Inner.Count, 1);
      if (SumMag > Limit)
        return false;
      Mag = SumMag;
      Cur = OutTy;
      return true;
    }
    case OpK::WhereNestedAny:
      return true;
    default:
      return false;
    }
  }

  bool drawGroupAgg(OpSpec &Op) {
    if (chance(40)) {
      Op.K = OpK::GroupAggDense;
      Op.IArg = pickInt(2, 16);
    } else {
      Op.K = OpK::GroupAgg;
      if (!drawKey(Op))
        return false;
      if (Cur == ElemTy::Double && Op.Key != KeyTmpl::Bucket)
        return false;
    }
    Op.G = static_cast<GroupStep>(Rng.nextBelow(3));
    Op.Combine = chance(70);
    return true;
  }

  bool drawAgg(OpSpec &Op) {
    Op.K = OpK::Agg;
    Op.A = static_cast<AggKind>(Rng.nextBelow(13));
    switch (Op.A) {
    case AggKind::Average:
      return Cur == ElemTy::Double;
    case AggKind::Contains:
      if (Cur != ElemTy::Int64)
        return false;
      Op.DArg = static_cast<double>(pickInt(-10, 10));
      return true;
    case AggKind::AllGtC:
      Op.DArg = threshold();
      return true;
    case AggKind::First:
      Op.DArg = Cur == ElemTy::Int64 ? static_cast<double>(pickInt(-9, 9))
                                     : Rng.nextDouble(-9.0, 9.0);
      return true;
    default:
      return true;
    }
  }

  /// A Take/Skip count, biased toward the rewriter's edges: explicit 0
  /// (the canonical empty marker) and small negative values (defined by
  /// the runtime as 0, rejected only by strict user compiles).
  std::int64_t drawCount() {
    std::uint64_t Sub = Rng.nextBelow(100);
    if (Sub < 10)
      return 0;
    if (Sub < 16)
      return pickInt(-3, -1);
    return pickInt(0, static_cast<std::int64_t>(CountBound) + 2);
  }

  bool drawOp(OpSpec &Op) {
    Op = OpSpec();
    std::uint64_t Roll = Rng.nextBelow(100);
    if (Roll < 28)
      return drawSelect(Op);
    if (Roll < 46)
      return drawPred(Op, OpK::Where);
    if (Roll < 52) {
      Op.K = OpK::Take;
      Op.IArg = drawCount();
      return true;
    }
    if (Roll < 58) {
      Op.K = OpK::Skip;
      Op.IArg = drawCount();
      return true;
    }
    if (Roll < 63)
      return drawPred(Op, OpK::TakeWhile);
    if (Roll < 68)
      return drawPred(Op, OpK::SkipWhile);
    if (Roll < 75) {
      Op.K = OpK::OrderBy;
      return drawKey(Op);
    }
    if (Roll < 79) {
      Op.K = OpK::ToArray;
      return true;
    }
    if (Roll < 86)
      return drawNested(Op, OpK::SelectMany);
    if (Roll < 90)
      return drawNested(Op, OpK::SelectManyRange);
    if (Roll < 96)
      return drawNested(Op, OpK::SelectNestedSum);
    return drawNested(Op, OpK::WhereNestedAny);
  }
};

} // namespace

QuerySpec fuzz::generateSpec(support::SplitMix64 &Rng,
                             const GenOptions &Opts) {
  GenCtx Ctx(Rng, Opts);
  if (Ctx.chance(35)) {
    Ctx.Spec.HasCaptureD = true;
    Ctx.Spec.CaptureD = Rng.nextDouble(-3.0, 3.0);
  }
  if (Ctx.chance(35)) {
    Ctx.Spec.HasCaptureI = true;
    Ctx.Spec.CaptureI = Ctx.pickInt(-3, 3);
  }
  Ctx.Spec.Sources.push_back(Ctx.makeSource(0, Opts.MaxCount));
  Ctx.Cur = Ctx.Spec.Sources[0].Ty;
  Ctx.Mag = GenCtx::sourceMag(Ctx.Spec.Sources[0]);
  Ctx.CountBound = std::max<std::uint32_t>(Ctx.Spec.Sources[0].Count, 1);

  unsigned NumOps =
      static_cast<unsigned>(Rng.nextBelow(Opts.MaxOps + 1));
  for (unsigned I = 0; I != NumOps; ++I) {
    OpSpec Op;
    bool Ok = false;
    // Re-roll inadmissible templates a few times; a dry streak just means
    // a shorter pipeline.
    for (unsigned Try = 0; Try != 16 && !Ok; ++Try) {
      GenCtx Save = Ctx; // cheap: vectors of PODs
      Ok = Ctx.drawOp(Op);
      if (!Ok) {
        Ctx.Spec = std::move(Save.Spec);
        Ctx.Cur = Save.Cur;
        Ctx.Mag = Save.Mag;
        Ctx.CountBound = Save.CountBound;
      }
    }
    if (!Ok)
      break;
    Ctx.Spec.Ops.push_back(Op);
    // Occasionally chase a comparison filter with its contradiction:
    // after `x > C`, the filter `x < C` is provably false for every
    // reachable element — for int64 elements the abstract interpreter
    // proves it and the rewriter collapses the pair to an empty chain,
    // which every backend must still agree on.
    if (Op.K == OpK::Where &&
        (Op.P == PredTmpl::GtC || Op.P == PredTmpl::LtC) && Ctx.chance(10) &&
        I + 1 != NumOps) {
      OpSpec Contra = Op;
      Contra.P = Op.P == PredTmpl::GtC ? PredTmpl::LtC : PredTmpl::GtC;
      Ctx.Spec.Ops.push_back(Contra);
      ++I;
    }
  }

  // Terminal: scalar aggregate, group sink, or leave it a collection
  // query (Src..Sink Ret) — all three shapes must round-trip every
  // backend.
  std::uint64_t Roll = Rng.nextBelow(100);
  if (Roll < 45) {
    OpSpec Op;
    for (unsigned Try = 0; Try != 16; ++Try)
      if (Ctx.drawAgg(Op)) {
        Ctx.Spec.Ops.push_back(Op);
        break;
      }
  } else if (Roll < 70) {
    OpSpec Op;
    for (unsigned Try = 0; Try != 16; ++Try)
      if (Ctx.drawGroupAgg(Op)) {
        Ctx.Spec.Ops.push_back(Op);
        break;
      }
  }
  return Ctx.Spec;
}
