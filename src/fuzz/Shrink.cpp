//===- fuzz/Shrink.cpp - Greedy spec minimization --------------*- C++ -*-===//

#include "fuzz/Shrink.h"

#include "obs/Metrics.h"

using namespace steno;
using namespace steno::fuzz;

namespace {

/// All one-step reductions of \p Spec, roughly most-aggressive first so
/// the greedy loop takes big bites before polishing.
std::vector<QuerySpec> reductions(const QuerySpec &Spec) {
  std::vector<QuerySpec> Out;

  // Drop one operator.
  for (std::size_t I = 0; I != Spec.Ops.size(); ++I) {
    QuerySpec S = Spec;
    S.Ops.erase(S.Ops.begin() + static_cast<std::ptrdiff_t>(I));
    Out.push_back(std::move(S));
  }

  // Shrink one source: empty, singleton, half.
  for (std::size_t I = 0; I != Spec.Sources.size(); ++I) {
    const SourceSpec &Src = Spec.Sources[I];
    for (std::uint32_t NewCount :
         {std::uint32_t{0}, std::uint32_t{1}, Src.Count / 2}) {
      if (NewCount >= Src.Count)
        continue;
      QuerySpec S = Spec;
      S.Sources[I].Count = NewCount;
      Out.push_back(std::move(S));
    }
    if (Src.Data != DataClass::Constant) {
      QuerySpec S = Spec;
      S.Sources[I].Data = DataClass::Constant;
      Out.push_back(std::move(S));
    }
  }

  // Simplify one operator template in place.
  for (std::size_t I = 0; I != Spec.Ops.size(); ++I) {
    const OpSpec &Op = Spec.Ops[I];
    QuerySpec S = Spec;
    switch (Op.K) {
    case OpK::Select:
      if (Op.T == TransTmpl::Id)
        continue;
      S.Ops[I].T = TransTmpl::Id;
      S.Ops[I].DArg = 0.0;
      break;
    case OpK::Where:
    case OpK::TakeWhile:
    case OpK::SkipWhile:
      if (Op.P == PredTmpl::True)
        continue;
      S.Ops[I].P = PredTmpl::True;
      S.Ops[I].DArg = 0.0;
      break;
    case OpK::OrderBy:
      if (Op.Key == KeyTmpl::Id)
        continue;
      S.Ops[I].Key = KeyTmpl::Id;
      break;
    case OpK::SelectMany:
      if (Op.IArg == 1)
        continue;
      S.Ops[I].IArg = 1; // nested take(1)
      break;
    case OpK::SelectManyRange:
      if (Op.IArg <= 1)
        continue;
      S.Ops[I].IArg = 1;
      break;
    default:
      continue;
    }
    Out.push_back(std::move(S));
  }

  // Drop captures (only valid when no remaining op reads them; an
  // invalid candidate is rejected by the check's BuildError path).
  if (Spec.HasCaptureD) {
    QuerySpec S = Spec;
    S.HasCaptureD = false;
    Out.push_back(std::move(S));
  }
  if (Spec.HasCaptureI) {
    QuerySpec S = Spec;
    S.HasCaptureI = false;
    Out.push_back(std::move(S));
  }
  return Out;
}

} // namespace

QuerySpec fuzz::shrinkSpec(DiffHarness &Harness, const QuerySpec &Spec,
                           const DiffOptions &DOpts,
                           const ShrinkOptions &Opts, ShrinkStats &Stats) {
  static obs::Counter &ShrinkSteps = obs::counter("fuzz.shrink_steps");

  QuerySpec Best = Spec;
  bool Improved = true;
  while (Improved && Stats.Steps < Opts.MaxSteps) {
    Improved = false;
    for (QuerySpec &Cand : reductions(Best)) {
      if (Stats.Steps >= Opts.MaxSteps)
        break;
      ++Stats.Steps;
      ShrinkSteps.inc();
      DiffResult R = Harness.check(Cand, DOpts);
      if (R.BuildError || !R.Mismatch)
        continue;
      Best = std::move(Cand);
      ++Stats.Reductions;
      Improved = true;
      break; // restart from the smaller spec
    }
  }
  return Best;
}
