//===- fuzz/Fuzz.cpp - Top-level differential fuzz loop --------*- C++ -*-===//

#include "fuzz/Fuzz.h"

#include "obs/Metrics.h"
#include "support/StringUtil.h"
#include "support/TempFile.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

using namespace steno;
using namespace steno::fuzz;

FuzzOutcome fuzz::runFuzz(DiffHarness &Harness, const FuzzOptions &Opts) {
  static obs::Counter &Queries = obs::counter("fuzz.queries");
  static obs::Counter &Rejected = obs::counter("fuzz.rejected");
  static obs::Counter &Mismatches = obs::counter("fuzz.mismatches");
  static obs::Counter &Certified = obs::counter("fuzz.certified");

  FuzzOutcome Out;
  support::SplitMix64 Rng(Opts.Seed);
  if (!Opts.CorpusDir.empty())
    std::filesystem::create_directories(Opts.CorpusDir);

  for (unsigned Iter = 0; Iter != Opts.Iters; ++Iter) {
    DiffOptions DOpts;
    if (Opts.HasOnly)
      DOpts.Backends = {Opts.Only};
    else
      DOpts.Backends = allBackends(Opts.JitEvery != 0 &&
                                   Iter % Opts.JitEvery == 0);
    DOpts.Inject = Opts.Inject;

    // Draw until the pre-screen accepts a candidate. Rejections are
    // generator bugs or intentional conservatism (e.g. an op combination
    // the type checker refuses); they are counted, never fatal.
    QuerySpec Spec;
    DiffResult R;
    bool Valid = false;
    for (unsigned Try = 0; Try != 20 && !Valid; ++Try) {
      Spec = generateSpec(Rng, Opts.Gen);
      R = Harness.check(Spec, DOpts);
      if (R.BuildError) {
        Rejected.inc();
        ++Out.Rejected;
        continue;
      }
      Valid = true;
    }
    if (!Valid)
      continue; // 20 consecutive rejections: skip the iteration

    Queries.inc();
    ++Out.Queries;
    if (R.Certified) {
      Certified.inc();
      ++Out.Certified;
    }
    if (Opts.Verbose)
      std::fprintf(stderr, "fuzz[%u]: %s%s\n", Iter,
                   specSummary(Spec).c_str(),
                   R.Mismatch ? "  << MISMATCH" : "");
    if (!R.Mismatch)
      continue;

    Mismatches.inc();
    ++Out.Mismatches;
    std::fprintf(stderr, "steno-fuzz: mismatch at iter %u (seed %llu):\n%s\n",
                 Iter, static_cast<unsigned long long>(Opts.Seed),
                 R.Report.c_str());

    ShrinkStats Stats;
    QuerySpec Small =
        shrinkSpec(Harness, Spec, DOpts, Opts.Shrink, Stats);
    Out.ShrinkSteps += Stats.Steps;

    std::string Path;
    if (!Opts.CorpusDir.empty()) {
      Path = Opts.CorpusDir +
             support::strFormat("/shrunk-seed%llu-iter%u.fuzzspec",
                                static_cast<unsigned long long>(Opts.Seed),
                                Iter);
      DiffResult Final = Harness.check(Small, DOpts);
      std::string Text =
          "# shrunken reproducer: " + specSummary(Small) + "\n";
      for (BackendId Id : Final.failing())
        Text += std::string("# fails: ") + backendName(Id) + "\n";
      Text += serializeSpec(Small);
      support::writeFile(Path, Text);
      std::fprintf(stderr, "steno-fuzz: reproducer written to %s\n",
                   Path.c_str());
    }
    Out.Failures.emplace_back(std::move(Small), std::move(Path));
  }
  return Out;
}

bool fuzz::loadCorpus(const std::string &Dir,
                      std::vector<std::pair<std::string, QuerySpec>> &Out,
                      std::string *Err) {
  namespace fs = std::filesystem;
  std::error_code Ec;
  if (!fs::is_directory(Dir, Ec)) {
    if (Err)
      *Err = "corpus directory missing: " + Dir;
    return false;
  }
  std::vector<std::string> Paths;
  for (const fs::directory_entry &Entry : fs::directory_iterator(Dir, Ec))
    if (Entry.path().extension() == ".fuzzspec")
      Paths.push_back(Entry.path().string());
  std::sort(Paths.begin(), Paths.end());
  for (const std::string &Path : Paths) {
    QuerySpec Spec;
    std::string ParseErr;
    if (!parseSpec(support::readFileOrEmpty(Path), Spec, &ParseErr)) {
      if (Err)
        *Err = Path + ": " + ParseErr;
      return false;
    }
    Out.emplace_back(Path, Spec);
  }
  if (Out.empty()) {
    if (Err)
      *Err = "corpus directory has no .fuzzspec files: " + Dir;
    return false;
  }
  return true;
}
