//===- fuzz/Fuzz.h - Top-level differential fuzz loop ----------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// generate -> differentially check -> (on mismatch) shrink -> serialize.
/// Shared by the steno_fuzz CLI and tests/fuzz_test.cpp so CI, developers
/// and the unit tests all run the identical loop. Instrumented with obs
/// counters: fuzz.queries, fuzz.rejected, fuzz.mismatches,
/// fuzz.shrink_steps, fuzz.certified.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_FUZZ_FUZZ_H
#define STENO_FUZZ_FUZZ_H

#include "fuzz/Diff.h"
#include "fuzz/Gen.h"
#include "fuzz/Shrink.h"

#include <string>
#include <utility>
#include <vector>

namespace steno {
namespace fuzz {

struct FuzzOptions {
  std::uint64_t Seed = 1;
  unsigned Iters = 1000;
  /// Run the JIT (Native) backend on every Nth query; 0 disables it. The
  /// JIT invokes an external C++ compiler per query (~0.5s), so running
  /// it on every iteration would turn a minutes fuzz run into hours —
  /// sampling keeps it in the matrix at a bounded cost, and
  /// --jit-every 1 buys full coverage when wanted.
  unsigned JitEvery = 50;
  /// Restrict the matrix to one backend (--backend); checks still compare
  /// that backend against the reference oracle.
  bool HasOnly = false;
  BackendId Only = BackendId::Interp;
  /// Directory shrunken reproducers are written into; empty disables
  /// writing.
  std::string CorpusDir;
  /// Fault-injection hook forwarded to the differential executor.
  std::function<bool(BackendId)> Inject;
  /// Per-iteration progress lines on stderr.
  bool Verbose = false;
  GenOptions Gen;
  ShrinkOptions Shrink;
};

struct FuzzOutcome {
  unsigned Queries = 0;    ///< Specs differentially checked.
  unsigned Rejected = 0;   ///< Generator candidates the pre-screen refused.
  unsigned Mismatches = 0; ///< Checks with at least one disagreeing backend.
  unsigned Certified = 0;  ///< Checks where a parallel path fanned out.
  unsigned ShrinkSteps = 0;
  /// Shrunken failing specs, paired with the corpus path they were
  /// written to ("" when CorpusDir is empty).
  std::vector<std::pair<QuerySpec, std::string>> Failures;

  bool clean() const { return Mismatches == 0; }
};

/// Runs the fuzz loop. Deterministic for a fixed (Seed, Iters, backend
/// set): the generator stream, the data and the shrinker never consult
/// any other entropy source.
FuzzOutcome runFuzz(DiffHarness &Harness, const FuzzOptions &Opts);

/// Loads every *.fuzzspec under \p Dir (sorted by name, so replay order
/// is stable). Returns false and fills \p Err on a missing directory or
/// an unparsable file — a corrupt corpus should fail the replay test,
/// not be skipped.
bool loadCorpus(const std::string &Dir,
                std::vector<std::pair<std::string, QuerySpec>> &Out,
                std::string *Err);

} // namespace fuzz
} // namespace steno

#endif // STENO_FUZZ_FUZZ_H
