//===- plinq/Anchor.cpp ---------------------------------------*- C++ -*-===//
//
// The plinq library is header-only; this file anchors the static library
// target and sanity-instantiates the common specialization.
//
//===----------------------------------------------------------------------===//

#include "plinq/Plinq.h"

namespace steno {
namespace plinq {

/// Build-time instantiation check.
double anchorParallelSum(dryad::ThreadPool &Pool, const double *Data,
                         std::size_t N) {
  return ParSeq<double>::fromSpan(Pool, Data, N).sum();
}

} // namespace plinq
} // namespace steno
