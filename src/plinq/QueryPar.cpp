//===- plinq/QueryPar.cpp -------------------------------------*- C++ -*-===//

#include "plinq/QueryPar.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

using namespace steno;
using namespace steno::plinq;

ParallelQuery ParallelQuery::compile(const query::Query &Q,
                                     const dryad::DistOptions &Options) {
  return ParallelQuery(dryad::DistributedQuery::compile(Q, Options));
}

QueryResult ParallelQuery::run(dryad::ThreadPool &Pool, const Bindings &B,
                               unsigned PartitionSlot) const {
  static obs::Counter &ParRuns = obs::counter("plinq.query.parallel_runs");
  static obs::Counter &SeqRuns =
      obs::counter("plinq.query.sequential_runs");
  obs::Span S("plinq.query.run");
  S.arg("certified", DQ.parallel());
  (DQ.parallel() ? ParRuns : SeqRuns).inc();
  return DQ.runParallel(Pool, B, PartitionSlot);
}

QueryResult plinq::runParallelQuery(dryad::ThreadPool &Pool,
                                    const query::Query &Q, const Bindings &B,
                                    unsigned PartitionSlot) {
  return ParallelQuery::compile(Q).run(Pool, B, PartitionSlot);
}
