//===- plinq/QueryPar.cpp -------------------------------------*- C++ -*-===//

#include "plinq/QueryPar.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Timing.h"

using namespace steno;
using namespace steno::plinq;

ParallelQuery ParallelQuery::compile(const query::Query &Q,
                                     const dryad::DistOptions &Options) {
  return ParallelQuery(dryad::DistributedQuery::compile(Q, Options));
}

QueryResult ParallelQuery::run(dryad::ThreadPool &Pool, const Bindings &B,
                               unsigned PartitionSlot) const {
  static obs::Counter &ParRuns = obs::counter("plinq.query.parallel_runs");
  static obs::Counter &SeqRuns =
      obs::counter("plinq.query.sequential_runs");
  // ONE latency histogram for both paths: a sequential-fallback run lands
  // in the same distribution as a fanned-out run, so BENCH comparisons
  // over plinq.run.micros see the true mix instead of a parallel-only
  // sample biased toward the happy path.
  static obs::Histogram &RunMicros = obs::histogram(
      "plinq.run.micros", {10, 100, 1e3, 1e4, 1e5, 1e6, 1e7});
  obs::Span S("plinq.query.run");
  S.arg("certified", DQ.parallel());
  (DQ.parallel() ? ParRuns : SeqRuns).inc();
  support::WallTimer Timer;
  QueryResult R = DQ.runParallel(Pool, B, PartitionSlot);
  RunMicros.observe(Timer.seconds() * 1e6);
  return R;
}

QueryResult plinq::runParallelQuery(dryad::ThreadPool &Pool,
                                    const query::Query &Q, const Bindings &B,
                                    unsigned PartitionSlot) {
  return ParallelQuery::compile(Q).run(Pool, B, PartitionSlot);
}
