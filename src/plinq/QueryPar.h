//===- plinq/QueryPar.h - Certificate-gated parallel queries ---*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-core entry point for declarative queries: compile once,
/// fan the source out across the pool's workers, merge partials — the
/// PLINQ usage model, but over Steno-compiled partition bodies instead of
/// iterator chains. Before any fan-out the query passes through the
/// static analyzer; a query the analyzer refuses to certify parallel-safe
/// (possible traps, order-sensitive operators, a non-associative
/// combiner) runs sequentially instead, with a warning printed at compile
/// time. Callers never get wrong answers from parallelism — at worst
/// they get sequential speed.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_PLINQ_QUERYPAR_H
#define STENO_PLINQ_QUERYPAR_H

#include "dryad/Dist.h"
#include "dryad/ThreadPool.h"
#include "query/Query.h"
#include "steno/Bindings.h"
#include "steno/Result.h"

namespace steno {
namespace plinq {

/// A compiled, certificate-gated parallel query. Thin wrapper over
/// dryad::DistributedQuery with the PLINQ-shaped surface: one Bindings in,
/// one QueryResult out, partitioning handled internally.
class ParallelQuery {
public:
  /// Compiles \p Q for parallel execution (Native vertices by default).
  /// Never rejects: uncertified or structurally unsplittable queries
  /// compile into the sequential fallback.
  static ParallelQuery compile(const query::Query &Q,
                               const dryad::DistOptions &Options =
                                   dryad::DistOptions());

  /// Runs against \p B, view-partitioning source slot \p PartitionSlot
  /// across \p Pool's workers — or sequentially when the query was not
  /// certified (see certified()).
  QueryResult run(dryad::ThreadPool &Pool, const Bindings &B,
                  unsigned PartitionSlot = 0) const;

  /// True when runs actually fan out.
  bool certified() const { return DQ.parallel(); }
  /// Why fan-out was refused (empty when certified).
  const std::string &whyNot() const { return DQ.whyNotParallel(); }
  /// The analyzer's verdict for the query.
  const analysis::SafetyCertificate &certificate() const {
    return DQ.certificate();
  }
  /// One-off compile cost (ms).
  double compileMillis() const { return DQ.compileMillis(); }

private:
  explicit ParallelQuery(dryad::DistributedQuery DQ) : DQ(std::move(DQ)) {}

  dryad::DistributedQuery DQ;
};

/// One-shot convenience: compile \p Q and run it against \p B, fanned out
/// over \p Pool when certified, sequentially otherwise. For repeated runs
/// compile a ParallelQuery once instead (amortizes the JIT cost, §7.1).
QueryResult runParallelQuery(dryad::ThreadPool &Pool, const query::Query &Q,
                             const Bindings &B, unsigned PartitionSlot = 0);

} // namespace plinq
} // namespace steno

#endif // STENO_PLINQ_QUERYPAR_H
