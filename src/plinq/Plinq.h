//===- plinq/Plinq.h - Parallel LINQ over iterator chains ------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PLINQ analogue of paper §6: "PLINQ provides the same operators as
/// LINQ, but operates on a ParallelEnumerable collection, which uses a
/// Partitioner object to assign elements to each thread. PLINQ uses
/// iterators to compose query operators, and therefore suffers from
/// similar virtual call overheads to sequential LINQ."
///
/// ParSeq<T> is exactly that: a Partitioner chunks the source across the
/// worker pool, each worker evaluates a *lazy iterator chain* (the linq
/// baseline) over its chunk, and aggregates combine per-partition
/// partials. It parallelizes the work but keeps the two-virtual-calls-
/// per-element-per-operator cost — which is why the modified DryadLINQ
/// of §6 replaces it with HomomorphicApply over Steno-compiled bodies
/// (see dryad/HomomorphicApply.h and bench/abl_plinq).
///
//===----------------------------------------------------------------------===//

#ifndef STENO_PLINQ_PLINQ_H
#define STENO_PLINQ_PLINQ_H

#include "dryad/HomomorphicApply.h"
#include "dryad/ThreadPool.h"
#include "linq/Seq.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace steno {
namespace plinq {

/// The Partitioner: chunks [Data, Data+Count) into near-equal contiguous
/// ranges, one per worker.
template <typename T>
std::vector<linq::Seq<T>> partitionSpan(const T *Data, std::size_t Count,
                                        unsigned Parts) {
  assert(Parts > 0 && "need at least one partition");
  static obs::Counter &Partitions =
      obs::counter("plinq.partitions.created");
  Partitions.inc(Parts);
  std::vector<linq::Seq<T>> Out;
  Out.reserve(Parts);
  std::size_t Base = Count / Parts;
  std::size_t Extra = Count % Parts;
  std::size_t Pos = 0;
  for (unsigned P = 0; P != Parts; ++P) {
    std::size_t Len = Base + (P < Extra ? 1 : 0);
    Out.push_back(linq::fromSpan(Data + Pos, Len));
    Pos += Len;
  }
  return Out;
}

/// ParallelEnumerable<T>: a set of per-partition lazy sequences plus the
/// pool they evaluate on. Composable operators extend every partition's
/// iterator chain; aggregates evaluate the chains in parallel and merge.
template <typename T> class ParSeq {
public:
  ParSeq(dryad::ThreadPool &Pool, std::vector<linq::Seq<T>> Partitions)
      : Pool(&Pool), Partitions(std::move(Partitions)) {}

  /// AsParallel() over a borrowed buffer: one partition per pool worker.
  static ParSeq fromSpan(dryad::ThreadPool &Pool, const T *Data,
                         std::size_t Count) {
    return ParSeq(Pool, partitionSpan(Data, Count, Pool.workerCount()));
  }

  unsigned partitionCount() const {
    return static_cast<unsigned>(Partitions.size());
  }

  //===--------------------------------------------------------------===//
  // Composable operators (homomorphic, so they lift partition-wise)
  //===--------------------------------------------------------------===//

  template <typename F> auto select(F Fn) const {
    using U = std::invoke_result_t<F, T>;
    std::vector<linq::Seq<U>> Out;
    Out.reserve(Partitions.size());
    for (const linq::Seq<T> &Part : Partitions)
      Out.push_back(Part.select(Fn));
    return ParSeq<U>(*Pool, std::move(Out));
  }

  template <typename F> ParSeq<T> where(F Pred) const {
    std::vector<linq::Seq<T>> Out;
    Out.reserve(Partitions.size());
    for (const linq::Seq<T> &Part : Partitions)
      Out.push_back(Part.where(Pred));
    return ParSeq<T>(*Pool, std::move(Out));
  }

  template <typename F> auto selectMany(F Fn) const {
    using U = typename std::invoke_result_t<F, T>::value_type;
    std::vector<linq::Seq<U>> Out;
    Out.reserve(Partitions.size());
    for (const linq::Seq<T> &Part : Partitions)
      Out.push_back(Part.selectMany(Fn));
    return ParSeq<U>(*Pool, std::move(Out));
  }

  //===--------------------------------------------------------------===//
  // Aggregates (parallel partials + combine, the Figure 12 shape)
  //===--------------------------------------------------------------===//

  T sum() const {
    FanoutObs Obs("plinq.sum", partitionCount());
    std::vector<T> Partials = dryad::homomorphicApply(
        *Pool, Partitions,
        [](const linq::Seq<T> &Part) { return Part.sum(); });
    T Total{};
    for (const T &V : Partials)
      Total = Total + V;
    return Total;
  }

  std::int64_t count() const {
    FanoutObs Obs("plinq.count", partitionCount());
    std::vector<std::int64_t> Partials = dryad::homomorphicApply(
        *Pool, Partitions,
        [](const linq::Seq<T> &Part) { return Part.count(); });
    std::int64_t Total = 0;
    for (std::int64_t V : Partials)
      Total += V;
    return Total;
  }

  /// Aggregate with an explicit associative combiner (the distributed-
  /// aggregation interface of the paper's [33]).
  template <typename U, typename FStep, typename FCombine>
  U aggregate(U Seed, FStep Step, FCombine Combine) const {
    FanoutObs Obs("plinq.aggregate", partitionCount());
    std::vector<U> Partials = dryad::homomorphicApply(
        *Pool, Partitions, [&Seed, &Step](const linq::Seq<T> &Part) {
          return Part.aggregate(Seed, Step);
        });
    U Total = std::move(Seed);
    for (U &V : Partials)
      Total = Combine(std::move(Total), std::move(V));
    return Total;
  }

  /// Materializes in partition order (PLINQ's AsOrdered semantics).
  std::vector<T> toVector() const {
    FanoutObs Obs("plinq.toVector", partitionCount());
    std::vector<std::vector<T>> Chunks = dryad::homomorphicApply(
        *Pool, Partitions,
        [](const linq::Seq<T> &Part) { return Part.toVector(); });
    std::vector<T> Out;
    for (std::vector<T> &Chunk : Chunks)
      for (T &V : Chunk)
        Out.push_back(std::move(V));
    return Out;
  }

private:
  /// One span + fan-out counter per parallel aggregate evaluation.
  struct FanoutObs {
    obs::Span Span;
    FanoutObs(const char *Name, unsigned Parts) : Span(Name) {
      static obs::Counter &Fanouts = obs::counter("plinq.fanout.count");
      Fanouts.inc();
      Span.arg("partitions", Parts);
    }
  };

  dryad::ThreadPool *Pool;
  std::vector<linq::Seq<T>> Partitions;
};

/// Convenience: xs.AsParallel() over a vector.
template <typename T>
ParSeq<T> asParallel(dryad::ThreadPool &Pool, const std::vector<T> &Data) {
  return ParSeq<T>::fromSpan(Pool, Data.data(), Data.size());
}

} // namespace plinq
} // namespace steno

#endif // STENO_PLINQ_PLINQ_H
