//===- plinq/Plinq.h - Parallel LINQ over iterator chains ------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PLINQ analogue of paper §6: "PLINQ provides the same operators as
/// LINQ, but operates on a ParallelEnumerable collection, which uses a
/// Partitioner object to assign elements to each thread. PLINQ uses
/// iterators to compose query operators, and therefore suffers from
/// similar virtual call overheads to sequential LINQ."
///
/// ParSeq<T> keeps PLINQ's per-element cost model — each worker evaluates
/// a *lazy iterator chain* (the linq baseline) — but its Partitioner is no
/// longer static: work is dispatched as dynamically sized contiguous
/// morsels through dryad::morselFor, so a skewed predicate or nested
/// sub-query rebalances via work stealing instead of making the whole
/// fan-out wait on the slowest static chunk. Aggregates fold per-worker
/// partials (combined once at the join); toVector reassembles chunks by
/// source offset, preserving AsOrdered semantics no matter how stealing
/// interleaved.
///
/// Combiners are trusted associative and commutative, matching .NET
/// PLINQ's Aggregate contract (a stolen morsel folds into the thief's
/// accumulator, so worker partials cover non-adjacent ranges). The
/// certificate-checked path — where the analyzer proves this instead of
/// trusting it — is plinq::ParallelQuery (QueryPar.h).
///
//===----------------------------------------------------------------------===//

#ifndef STENO_PLINQ_PLINQ_H
#define STENO_PLINQ_PLINQ_H

#include "dryad/Morsel.h"
#include "dryad/ThreadPool.h"
#include "linq/Seq.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace steno {
namespace plinq {

/// The static Partitioner of paper §6: chunks [Data, Data+Count) into
/// near-equal contiguous ranges. Kept as the baseline the morsel
/// scheduler is benchmarked against (bench/par_skew) and for callers
/// that need explicit partitions. \p Parts is clamped to [1, max(1,
/// Count)]: an empty or tiny input no longer produces degenerate empty
/// partitions that pay fan-out overhead for no work.
template <typename T>
std::vector<linq::Seq<T>> partitionSpan(const T *Data, std::size_t Count,
                                        unsigned Parts) {
  if (Parts < 1)
    Parts = 1;
  if (Count != 0 && static_cast<std::size_t>(Parts) > Count)
    Parts = static_cast<unsigned>(Count);
  if (Count == 0)
    Parts = 1; // one empty partition, so aggregates still have a seed
  static obs::Counter &Partitions =
      obs::counter("plinq.partitions.created");
  Partitions.inc(Parts);
  std::vector<linq::Seq<T>> Out;
  Out.reserve(Parts);
  std::size_t Base = Count / Parts;
  std::size_t Extra = Count % Parts;
  std::size_t Pos = 0;
  for (unsigned P = 0; P != Parts; ++P) {
    std::size_t Len = Base + (P < Extra ? 1 : 0);
    Out.push_back(linq::fromSpan(Data + Pos, Len));
    Pos += Len;
  }
  return Out;
}

/// ParallelEnumerable<T>: a source span plus the composed operator chain,
/// evaluated lazily per morsel. Composable operators extend the chain;
/// aggregates dispatch morsels onto the pool and merge per-worker
/// partials.
template <typename T> class ParSeq {
public:
  /// Builds the composed iterator chain over source elements
  /// [Begin, End). Must be safe to call concurrently (the linq chain
  /// factories are: they only wrap immutable shared state).
  using ChainBuilder =
      std::function<linq::Seq<T>(std::size_t Begin, std::size_t End)>;

  ParSeq(dryad::ThreadPool &Pool, std::size_t Count, ChainBuilder Chain,
         dryad::MorselOptions Opts = dryad::MorselOptions())
      : Pool(&Pool), Count(Count), Chain(std::move(Chain)), Opts(Opts) {}

  /// AsParallel() over a borrowed buffer.
  static ParSeq fromSpan(dryad::ThreadPool &Pool, const T *Data,
                         std::size_t Count) {
    return ParSeq(Pool, Count, [Data](std::size_t B, std::size_t E) {
      return linq::fromSpan(Data + B, E - B);
    });
  }

  /// Source element count (elements entering the chain, not leaving it).
  std::size_t sourceCount() const { return Count; }

  /// A copy with different scheduler tuning (tests force tiny morsels to
  /// provoke stealing; benches widen the budget).
  ParSeq withMorselOptions(dryad::MorselOptions NewOpts) const {
    return ParSeq(*Pool, Count, Chain, NewOpts);
  }

  //===--------------------------------------------------------------===//
  // Composable operators (homomorphic, so they lift morsel-wise)
  //===--------------------------------------------------------------===//

  template <typename F> auto select(F Fn) const {
    using U = std::invoke_result_t<F, T>;
    return ParSeq<U>(
        *Pool, Count,
        [C = Chain, Fn](std::size_t B, std::size_t E) {
          return C(B, E).select(Fn);
        },
        Opts);
  }

  template <typename F> ParSeq<T> where(F Pred) const {
    return ParSeq<T>(
        *Pool, Count,
        [C = Chain, Pred](std::size_t B, std::size_t E) {
          return C(B, E).where(Pred);
        },
        Opts);
  }

  template <typename F> auto selectMany(F Fn) const {
    using U = typename std::invoke_result_t<F, T>::value_type;
    return ParSeq<U>(
        *Pool, Count,
        [C = Chain, Fn](std::size_t B, std::size_t E) {
          return C(B, E).selectMany(Fn);
        },
        Opts);
  }

  //===--------------------------------------------------------------===//
  // Aggregates (morsel partials + one combine at the join, Figure 12)
  //===--------------------------------------------------------------===//

  T sum() const {
    FanoutObs Obs("plinq.sum", *Pool);
    std::vector<T> Partials(Pool->workerCount(), T{});
    dryad::morselFor(*Pool, Count, Opts,
                     [this, &Partials](std::size_t B, std::size_t E,
                                       unsigned W) {
                       Partials[W] = Partials[W] + Chain(B, E).sum();
                     });
    T Total{};
    for (T &V : Partials)
      Total = Total + V;
    return Total;
  }

  std::int64_t count() const {
    FanoutObs Obs("plinq.count", *Pool);
    std::vector<std::int64_t> Partials(Pool->workerCount(), 0);
    dryad::morselFor(*Pool, Count, Opts,
                     [this, &Partials](std::size_t B, std::size_t E,
                                       unsigned W) {
                       Partials[W] += Chain(B, E).count();
                     });
    std::int64_t Total = 0;
    for (std::int64_t V : Partials)
      Total += V;
    return Total;
  }

  /// Aggregate with an explicit combiner (the distributed-aggregation
  /// interface of the paper's [33]). \p Combine must be associative and
  /// commutative, and \p Seed its identity — .NET PLINQ's contract —
  /// because stealing folds non-adjacent morsels into one worker
  /// accumulator.
  template <typename U, typename FStep, typename FCombine>
  U aggregate(U Seed, FStep Step, FCombine Combine) const {
    FanoutObs Obs("plinq.aggregate", *Pool);
    std::vector<U> Partials(Pool->workerCount(), Seed);
    dryad::morselFor(*Pool, Count, Opts,
                     [this, &Partials, &Step](std::size_t B, std::size_t E,
                                              unsigned W) {
                       Partials[W] =
                           Chain(B, E).aggregate(std::move(Partials[W]),
                                                 Step);
                     });
    U Total = std::move(Seed);
    for (U &V : Partials)
      Total = Combine(std::move(Total), std::move(V));
    return Total;
  }

  /// Materializes in source order (PLINQ's AsOrdered semantics): every
  /// morsel's output chunk is tagged with its source offset and the
  /// chunks are reassembled ascending, so the result is identical to the
  /// sequential chain regardless of stealing.
  std::vector<T> toVector() const {
    FanoutObs Obs("plinq.toVector", *Pool);
    using Tagged = std::pair<std::size_t, std::vector<T>>;
    std::vector<std::vector<Tagged>> PerWorker(Pool->workerCount());
    dryad::morselFor(*Pool, Count, Opts,
                     [this, &PerWorker](std::size_t B, std::size_t E,
                                        unsigned W) {
                       PerWorker[W].emplace_back(B,
                                                 Chain(B, E).toVector());
                     });
    std::vector<Tagged> All;
    for (std::vector<Tagged> &Chunks : PerWorker)
      for (Tagged &C : Chunks)
        All.push_back(std::move(C));
    std::sort(All.begin(), All.end(),
              [](const Tagged &A, const Tagged &B) {
                return A.first < B.first;
              });
    std::vector<T> Out;
    for (Tagged &C : All)
      for (T &V : C.second)
        Out.push_back(std::move(V));
    return Out;
  }

private:
  /// One span + fan-out counter per parallel aggregate evaluation.
  struct FanoutObs {
    obs::Span Span;
    FanoutObs(const char *Name, const dryad::ThreadPool &Pool)
        : Span(Name) {
      static obs::Counter &Fanouts = obs::counter("plinq.fanout.count");
      Fanouts.inc();
      Span.arg("workers", Pool.workerCount());
    }
  };

  dryad::ThreadPool *Pool;
  std::size_t Count;
  ChainBuilder Chain;
  dryad::MorselOptions Opts;
};

/// Convenience: xs.AsParallel() over a vector.
template <typename T>
ParSeq<T> asParallel(dryad::ThreadPool &Pool, const std::vector<T> &Data) {
  return ParSeq<T>::fromSpan(Pool, Data.data(), Data.size());
}

} // namespace plinq
} // namespace steno

#endif // STENO_PLINQ_PLINQ_H
