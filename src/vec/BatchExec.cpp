//===- vec/BatchExec.cpp - Batched chain planning and execution -*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "vec/BatchExec.h"

#include "expr/Analysis.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdint>

using namespace steno;
using namespace steno::vec;
using expr::BinaryOp;
using expr::Builtin;
using expr::Expr;
using expr::ExprKind;
using expr::ExprRef;
using expr::TypeKind;
using expr::Value;
using query::SourceKind;
using quil::Chain;
using quil::Op;
using quil::PredOp;
using quil::Sym;

//===----------------------------------------------------------------------===//
// Planning
//===----------------------------------------------------------------------===//

namespace {

VecPlan reject(std::string Why) {
  VecPlan P;
  P.WhyNot = std::move(Why);
  return P;
}

bool hasNoFreeParams(const ExprRef &E) {
  return !E || expr::freeParams(*E).empty();
}

/// Recognizes `(acc, x) => acc op g(x)` (and the Min/Max call form) so the
/// fold runs as a typed tight loop. Conservative: the accumulator operand
/// must be exactly the bare acc parameter, acc must not occur in g, and
/// acc/g/result must share one numeric type. Everything else (Average's
/// pair accumulator, user folds) takes the Generic per-lane path.
bool recognizeReduce(const expr::Lambda &Fn2, VecPlan &P) {
  if (Fn2.arity() != 2)
    return false;
  const std::string &Acc = Fn2.param(0).Name;
  const std::string &Elem = Fn2.param(1).Name;
  const Expr &B = *Fn2.body();
  auto IsAccParam = [&](const ExprRef &E) {
    return E->kind() == ExprKind::Param && E->paramName() == Acc;
  };
  ExprRef G;
  if (B.kind() == ExprKind::Binary) {
    switch (B.binaryOp()) {
    case BinaryOp::Add:
      P.ROp = VReduceOp::Add;
      break;
    case BinaryOp::Sub:
      P.ROp = VReduceOp::Sub;
      break;
    case BinaryOp::Mul:
      P.ROp = VReduceOp::Mul;
      break;
    default:
      return false;
    }
    if (IsAccParam(B.operand(0))) {
      P.AccFirst = true;
      G = B.operand(1);
    } else if (IsAccParam(B.operand(1)) && P.ROp != VReduceOp::Sub) {
      P.AccFirst = false;
      G = B.operand(0);
    } else {
      return false;
    }
  } else if (B.kind() == ExprKind::Call &&
             (B.builtin() == Builtin::Min || B.builtin() == Builtin::Max)) {
    if (B.operands().size() != 2)
      return false;
    P.ROp = B.builtin() == Builtin::Min ? VReduceOp::Min : VReduceOp::Max;
    if (IsAccParam(B.operand(0))) {
      P.AccFirst = true;
      G = B.operand(1);
    } else if (IsAccParam(B.operand(1))) {
      P.AccFirst = false;
      G = B.operand(0);
    } else {
      return false;
    }
  } else {
    return false;
  }
  if (expr::freeParams(*G).count(Acc))
    return false;
  const expr::TypeRef &Ty = Fn2.body()->type();
  if (!Ty->isNumeric() || !expr::sameType(Ty, Fn2.param(0).Ty) ||
      !expr::sameType(Ty, G->type()))
    return false;
  CompiledExpr CG = compileVecExpr(G, Elem);
  if (!CG.Ok)
    return false;
  P.AggArg = std::move(CG);
  P.AccK = Ty->kind();
  return true;
}

} // namespace

VecPlan vec::planChain(const Chain &C) {
  if (C.Ops.size() < 2)
    return reject("degenerate chain");
  const Op &SrcOp = C.Ops.front();
  if (SrcOp.S != Sym::Src)
    return reject("chain does not start with Src");
  VecPlan P;
  P.Src = SrcOp.Src;
  switch (SrcOp.Src.Kind) {
  case SourceKind::DoubleArray:
  case SourceKind::Int64Array:
    break;
  case SourceKind::Range:
    if (!hasNoFreeParams(SrcOp.Src.Start) ||
        !hasNoFreeParams(SrcOp.Src.CountE))
      return reject("range bounds reference outer parameters");
    break;
  case SourceKind::VecExpr:
    if (!SrcOp.Src.Vec || !hasNoFreeParams(SrcOp.Src.Vec))
      return reject("vec source references outer parameters");
    break;
  case SourceKind::PointArray:
    return reject("point (vec-element) source");
  }
  expr::TypeRef ElemTy = SrcOp.Src.elemType();
  if (!ElemTy || !ElemTy->isScalar())
    return reject("non-scalar source element");
  P.SrcK = ElemTy->kind();
  P.SrcProfSlot = 0;
  P.NumProfOps = C.Ops.size();
  P.RetProfSlot = C.Ops.size() - 1;
  P.ScalarResult = C.Scalar;
  P.BatchSize = batchSizeFromEnv();

  for (std::size_t I = 1; I + 1 < C.Ops.size(); ++I) {
    const Op &O = C.Ops[I];
    VStep S;
    S.ProfSlot = I;
    switch (O.S) {
    case Sym::Trans: {
      if (O.Fn.arity() != 1)
        return reject("non-unary Trans lambda");
      if (!O.OutElem || !O.OutElem->isScalar())
        return reject("non-scalar Trans output");
      S.K = VStepKind::Trans;
      S.ElemName = O.Fn.param(0).Name;
      S.Body = compileVecExpr(O.Fn.body(), S.ElemName);
      if (!S.Body.Ok)
        return reject("unvectorizable Trans body");
      S.OutK = O.OutElem->kind();
      break;
    }
    case Sym::Pred: {
      if (O.P == PredOp::Take || O.P == PredOp::Skip) {
        if (!O.Seed || !hasNoFreeParams(O.Seed))
          return reject("Take/Skip count references outer parameters");
        S.K = O.P == PredOp::Take ? VStepKind::Take : VStepKind::Skip;
        S.Count = O.Seed;
      } else {
        if (O.Fn.arity() != 1)
          return reject("non-unary Pred lambda");
        S.K = O.P == PredOp::Where       ? VStepKind::Where
              : O.P == PredOp::TakeWhile ? VStepKind::TakeWhile
                                         : VStepKind::SkipWhile;
        S.ElemName = O.Fn.param(0).Name;
        S.Body = compileVecExpr(O.Fn.body(), S.ElemName);
        if (!S.Body.Ok)
          return reject("unvectorizable Pred body");
      }
      if (!O.OutElem || !O.OutElem->isScalar())
        return reject("non-scalar Pred element");
      S.OutK = O.OutElem->kind();
      break;
    }
    case Sym::Agg: {
      if (I + 2 != C.Ops.size())
        return reject("Agg not in tail position");
      if (O.StopWhen.valid())
        return reject("early-exit aggregate");
      if (!O.Fn2.valid() || O.Fn2.arity() != 2 || !O.Seed)
        return reject("malformed Agg");
      if (!hasNoFreeParams(O.Seed))
        return reject("Agg seed references outer parameters");
      if (!O.InElem || !O.InElem->isScalar())
        return reject("non-scalar Agg input");
      P.AggProfSlot = I;
      P.AggStep = O.Fn2;
      P.AggSeed = O.Seed;
      P.AggResult = O.Fn3;
      P.Agg = recognizeReduce(O.Fn2, P) ? VAggMode::Reduce
                                        : VAggMode::Generic;
      break;
    }
    case Sym::Sink:
      return reject("sink operator");
    case Sym::Nested:
      return reject("nested query");
    default:
      return reject("unexpected operator");
    }
    if (O.S != Sym::Agg)
      P.Steps.push_back(std::move(S));
  }
  if (C.Ops.back().S != Sym::Ret)
    return reject("chain does not end with Ret");
  if (P.Agg == VAggMode::None && C.Scalar)
    return reject("scalar chain without vectorizable Agg");
  P.Ok = true;
  return P;
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

namespace {

std::uint64_t nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Lanes fromSel(const std::vector<std::int32_t> &S) {
  return Lanes{false, 0, 0, S.data(), 0,
               static_cast<std::int64_t>(S.size())};
}

void trimToFirst(Lanes &L, std::int64_t K) {
  if (L.Dense)
    L.Hi = L.Lo + K;
  else
    L.Cnt = L.Off + K;
}

void dropFirst(Lanes &L, std::int64_t K) {
  if (L.Dense)
    L.Lo += K;
  else
    L.Off += K;
}

/// Position (in selection order) of the first lane whose predicate is
/// false, or L.size() when every live lane passes. A may-trap predicate is
/// evaluated lane by lane, in order, stopping at the boundary — exactly
/// the scalar evaluation order; a trap-free predicate is evaluated
/// columnar (evaluating past the boundary is unobservable: pure + total).
std::int64_t whileBoundary(const VStep &St, EvalCtx &Ctx, const Lanes &L) {
  std::int64_t Sz = L.size();
  if (St.Body.Tree.MayTrap) {
    for (std::int64_t J = 0; J != Sz; ++J)
      if (!evalLane(St.Body.Tree, St.ElemName, Ctx, L.at(J)).asBool())
        return J;
    return Sz;
  }
  Col Pd = evalVec(St.Body.Tree, Ctx, L);
  for (std::int64_t J = 0; J != Sz; ++J)
    if (!Pd.B[L.at(J)])
      return J;
  return Sz;
}

} // namespace

std::vector<Value> vec::executeBatched(const VecPlan &P,
                                       const BatchInput &In) {
  assert(P.Ok && "executing a rejected plan");
  expr::Env Env;
  if (In.Values)
    Env.setCaptures(In.Values);
  if (In.Sources)
    Env.setSources(In.Sources);
  obs::ProfileSink *Prof = In.Profile;
  if (Prof && Prof->Counts.size() != 2 * P.NumProfOps)
    Prof = nullptr;

  // Prologue, in chain-op order (matching the generated code's alpha
  // region): per-op counter/flag seeds first, then the aggregate seed,
  // then the source bounds — Range Start only when the range is non-empty
  // (the scalar loop never evaluates it for an empty source).
  std::vector<std::int64_t> Counters(P.Steps.size(), 0);
  std::vector<std::uint8_t> Flags(P.Steps.size(), 0);
  for (std::size_t I = 0; I != P.Steps.size(); ++I) {
    const VStep &St = P.Steps[I];
    if (St.K == VStepKind::Take || St.K == VStepKind::Skip)
      Counters[I] = expr::evalExpr(*St.Count, Env).asInt64();
    else if (St.K == VStepKind::SkipWhile)
      Flags[I] = 1; // still skipping
  }
  bool IsReduce = P.Agg == VAggMode::Reduce;
  std::int64_t AccI = 0;
  double AccD = 0;
  Value AccV;
  if (P.Agg != VAggMode::None) {
    Value Seed = expr::evalExpr(*P.AggSeed, Env);
    if (IsReduce) {
      if (P.AccK == TypeKind::Int64)
        AccI = Seed.asInt64();
      else
        AccD = Seed.asDouble();
    } else {
      AccV = Seed;
    }
  }

  const double *SrcD = nullptr;
  const std::int64_t *SrcI = nullptr;
  std::int64_t N = 0;
  std::int64_t RangeStart = 0;
  switch (P.Src.Kind) {
  case SourceKind::DoubleArray: {
    const expr::SourceBuffer &B = Env.sourceAt(P.Src.Slot);
    SrcD = B.DoubleData;
    N = B.Count;
    break;
  }
  case SourceKind::Int64Array: {
    const expr::SourceBuffer &B = Env.sourceAt(P.Src.Slot);
    SrcI = B.Int64Data;
    N = B.Count;
    break;
  }
  case SourceKind::Range:
    N = expr::evalExpr(*P.Src.CountE, Env).asInt64();
    if (N < 0)
      N = 0;
    if (N > 0)
      RangeStart = expr::evalExpr(*P.Src.Start, Env).asInt64();
    break;
  case SourceKind::VecExpr: {
    expr::VecView V = expr::evalExpr(*P.Src.Vec, Env).asVec();
    SrcD = V.Data;
    N = V.Len;
    break;
  }
  case SourceKind::PointArray:
    assert(false && "point source in a vectorized plan");
    break;
  }

  Workspace &WS = workspace();
  std::vector<Value> Rows;
  EvalCtx Ctx;
  Ctx.Env = &Env;
  Ctx.Scr = &WS.Scr;

  const std::int64_t BS = static_cast<std::int64_t>(P.BatchSize);
  for (std::int64_t Base = 0; Base < N; Base += BS) {
    std::int64_t M = std::min(BS, N - Base);
    WS.Scr.reset();
    if (Prof)
      Prof->Counts[2 * P.SrcProfSlot + 1] += static_cast<std::uint64_t>(M);

    Col Elem;
    switch (P.Src.Kind) {
    case SourceKind::DoubleArray:
    case SourceKind::VecExpr:
      Elem = Col::dbl(SrcD + Base);
      break;
    case SourceKind::Int64Array:
      Elem = Col::i64(SrcI + Base);
      break;
    default: { // Range
      std::int64_t *O = WS.Scr.col().i64(static_cast<std::size_t>(M));
      for (std::int64_t J = 0; J != M; ++J)
        O[J] = RangeStart + Base + J;
      Elem = Col::i64(O);
      break;
    }
    }
    Lanes L = Lanes::dense(M);

    for (std::size_t SI = 0; SI != P.Steps.size(); ++SI) {
      const VStep &St = P.Steps[SI];
      std::int64_t InCnt = L.size();
      if (Prof)
        Prof->Counts[2 * St.ProfSlot] += static_cast<std::uint64_t>(InCnt);
      if (InCnt == 0)
        continue; // rows-out += 0; nothing reaches the kernel
      std::uint64_t T0 = Prof ? nowNs() : 0;
      Ctx.Elem = Elem;
      switch (St.K) {
      case VStepKind::Trans:
        Elem = evalVec(St.Body.Tree, Ctx, L);
        break;
      case VStepKind::Where: {
        Col Pd = evalVec(St.Body.Tree, Ctx, L);
        std::vector<std::int32_t> &Sel = WS.Scr.sel();
        Sel.clear();
        L.forEach([&](std::int64_t I) {
          if (Pd.B[I])
            Sel.push_back(static_cast<std::int32_t>(I));
        });
        L = fromSel(Sel);
        break;
      }
      case VStepKind::Take: {
        std::int64_t K = std::clamp<std::int64_t>(Counters[SI], 0, InCnt);
        Counters[SI] -= K;
        trimToFirst(L, K);
        break;
      }
      case VStepKind::Skip: {
        std::int64_t K = std::clamp<std::int64_t>(Counters[SI], 0, InCnt);
        Counters[SI] -= K;
        dropFirst(L, K);
        break;
      }
      case VStepKind::TakeWhile: {
        if (Flags[SI]) { // done: everything downstream is filtered
          trimToFirst(L, 0);
          break;
        }
        std::int64_t B = whileBoundary(St, Ctx, L);
        if (B < InCnt) {
          Flags[SI] = 1;
          trimToFirst(L, B);
        }
        break;
      }
      case VStepKind::SkipWhile: {
        if (!Flags[SI]) // boundary already crossed: pass-through
          break;
        std::int64_t B = whileBoundary(St, Ctx, L);
        if (B < InCnt)
          Flags[SI] = 0;
        dropFirst(L, B);
        break;
      }
      }
      if (Prof) {
        Prof->Nanos[St.ProfSlot] += nowNs() - T0;
        Prof->Counts[2 * St.ProfSlot + 1] +=
            static_cast<std::uint64_t>(L.size());
      }
    }

    std::int64_t Out = L.size();
    if (P.Agg != VAggMode::None) {
      if (Prof)
        Prof->Counts[2 * P.AggProfSlot] += static_cast<std::uint64_t>(Out);
      if (Out == 0)
        continue;
      std::uint64_t T0 = Prof ? nowNs() : 0;
      if (IsReduce) {
        Ctx.Elem = Elem;
        Col G = evalVec(P.AggArg.Tree, Ctx, L);
        if (P.AccK == TypeKind::Int64) {
          std::int64_t A = AccI;
          switch (P.ROp) {
          case VReduceOp::Add:
            L.forEach([&](std::int64_t I) { A += G.I[I]; });
            break;
          case VReduceOp::Sub: // acc-left only (planner guarantees)
            L.forEach([&](std::int64_t I) { A -= G.I[I]; });
            break;
          case VReduceOp::Mul:
            L.forEach([&](std::int64_t I) { A *= G.I[I]; });
            break;
          case VReduceOp::Min:
            L.forEach([&](std::int64_t I) { A = std::min(A, G.I[I]); });
            break;
          case VReduceOp::Max:
            L.forEach([&](std::int64_t I) { A = std::max(A, G.I[I]); });
            break;
          }
          AccI = A;
        } else {
          double A = AccD;
          bool AF = P.AccFirst;
          switch (P.ROp) {
          case VReduceOp::Add:
            L.forEach([&](std::int64_t I) { A += G.D[I]; });
            break;
          case VReduceOp::Sub:
            L.forEach([&](std::int64_t I) { A -= G.D[I]; });
            break;
          case VReduceOp::Mul:
            L.forEach([&](std::int64_t I) { A *= G.D[I]; });
            break;
          // Min/Max replicate evalCall's TakeA comparison with the
          // original operand order, so NaN handling matches scalar.
          case VReduceOp::Min:
            L.forEach([&](std::int64_t I) {
              double X = G.D[I];
              A = AF ? (A < X ? A : X) : (X < A ? X : A);
            });
            break;
          case VReduceOp::Max:
            L.forEach([&](std::int64_t I) {
              double X = G.D[I];
              A = AF ? (A > X ? A : X) : (X > A ? X : A);
            });
            break;
          }
          AccD = A;
        }
      } else {
        L.forEach([&](std::int64_t I) {
          AccV = expr::applyLambda(P.AggStep, {AccV, laneValue(Elem, I)},
                                   Env);
        });
      }
      if (Prof) {
        Prof->Nanos[P.AggProfSlot] += nowNs() - T0;
        Prof->Counts[2 * P.AggProfSlot + 1] +=
            static_cast<std::uint64_t>(Out);
      }
    } else {
      if (Prof)
        Prof->Counts[2 * P.RetProfSlot + 1] +=
            static_cast<std::uint64_t>(Out);
      L.forEach(
          [&](std::int64_t I) { Rows.push_back(laneValue(Elem, I)); });
    }
  }

  if (P.Agg != VAggMode::None) {
    Value A = IsReduce ? (P.AccK == TypeKind::Int64 ? Value(AccI)
                                                    : Value(AccD))
                       : AccV;
    Value R = P.AggResult.valid()
                  ? expr::applyLambda(P.AggResult, {A}, Env)
                  : A;
    if (Prof)
      Prof->Counts[2 * P.RetProfSlot + 1] += 1;
    Rows.push_back(std::move(R));
  }
  return Rows;
}
