//===- vec/Batch.cpp ------------------------------------------*- C++ -*-===//

#include "vec/Batch.h"

#include <cstdlib>
#include <string>

using namespace steno;
using namespace steno::vec;

bool vec::vectorizeEnvEnabled() {
  const char *E = std::getenv("STENO_VECTORIZE");
  if (!E)
    return true;
  std::string V(E);
  return !(V == "0" || V == "off");
}

std::size_t vec::batchSizeFromEnv() {
  const char *E = std::getenv("STENO_BATCH_SIZE");
  if (!E || !*E)
    return 1024;
  char *End = nullptr;
  long V = std::strtol(E, &End, 10);
  if (End == E || V <= 0)
    return 1024;
  if (V < 16)
    return 16;
  if (V > 65536)
    return 65536;
  return static_cast<std::size_t>(V);
}

Workspace &vec::workspace() {
  thread_local Workspace W;
  return W;
}
