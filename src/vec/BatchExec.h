//===- vec/BatchExec.h - Batched chain planning and execution --*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plans a lowered QUIL chain for vectorized execution and runs it
/// batch-at-a-time (DESIGN.md §5i). planChain() decides once, at compile
/// time, whether the chain fits the columnar model — linear Src
/// (Trans|Pred)* Agg? Ret over scalar elements, no nested queries, no
/// early-exit aggregates — and compiles every lambda body with
/// compileVecExpr. Chains that do not fit keep the scalar interpreter
/// path; the plan records why in WhyNot.
///
/// executeBatched() is the interpreter-backend executor: it slices the
/// source into batches of Plan.BatchSize elements and pushes each batch
/// through the operator chain — Trans maps a column, Pred narrows the
/// lane selection, Agg folds the surviving lanes into the accumulator.
/// The whole source is always consumed (a Take that is exhausted shrinks
/// the selection to empty but never breaks the batch loop), matching the
/// scalar backends, whose generated loops `continue` past filtered
/// elements rather than `break` — so trap behavior and per-operator
/// profile counts are identical to scalar execution. Profile accounting
/// is per batch: rows-in/rows-out move by lane counts and each timed
/// operator charges one clock read per batch instead of two per element.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_VEC_BATCHEXEC_H
#define STENO_VEC_BATCHEXEC_H

#include "expr/Eval.h"
#include "obs/Profile.h"
#include "quil/Quil.h"
#include "vec/VecEval.h"

#include <cstdint>
#include <string>
#include <vector>

namespace steno {
namespace vec {

/// Kind of one planned operator step (between Src and Agg/Ret).
enum class VStepKind { Trans, Where, Take, Skip, TakeWhile, SkipWhile };

/// How the chain's Agg (if any) executes.
enum class VAggMode {
  None,   ///< Collection chain: surviving lanes become rows.
  Reduce, ///< acc = acc op g(elem): typed tight-loop fold.
  Generic ///< Per-lane applyLambda fold (pair accumulators, odd steps).
};

/// Reduction operator for VAggMode::Reduce.
enum class VReduceOp { Add, Sub, Mul, Min, Max };

/// One planned Trans/Pred step.
struct VStep {
  VStepKind K = VStepKind::Trans;
  /// Compiled lambda body (Trans / Where / TakeWhile / SkipWhile).
  CompiledExpr Body;
  /// The lambda's element parameter name (per-lane fallback binding).
  std::string ElemName;
  /// Take/Skip count expression (the op's Seed).
  expr::ExprRef Count;
  /// Element kind after this step (Trans changes it; Preds keep it).
  expr::TypeKind OutK = expr::TypeKind::Double;
  /// This op's index in the chain's profile slots.
  std::size_t ProfSlot = 0;
};

/// A chain compiled for batch execution.
struct VecPlan {
  bool Ok = false;
  std::string WhyNot; ///< Reason the chain stays scalar when !Ok.

  query::SourceDesc Src;
  expr::TypeKind SrcK = expr::TypeKind::Double;
  std::size_t SrcProfSlot = 0;

  std::vector<VStep> Steps;

  VAggMode Agg = VAggMode::None;
  VReduceOp ROp = VReduceOp::Add;
  /// Whether the accumulator is the reduction's first operand (fixes the
  /// operand order of Sub and the NaN behavior of Min/Max).
  bool AccFirst = true;
  /// Compiled element-side expression g of `acc = acc op g(elem)`.
  CompiledExpr AggArg;
  expr::TypeKind AccK = expr::TypeKind::Double;
  expr::Lambda AggStep;   ///< Fn2, for the Generic fold.
  expr::ExprRef AggSeed;  ///< Evaluated in the prologue, chain order.
  expr::Lambda AggResult; ///< Fn3; may be invalid (result = acc).
  std::size_t AggProfSlot = 0;

  std::size_t RetProfSlot = 0;
  bool ScalarResult = false;
  /// Chain.Ops.size(): the ProfileSink this plan accounts into must have
  /// exactly this many op slots.
  std::size_t NumProfOps = 0;
  /// Elements per batch, captured from STENO_BATCH_SIZE at plan time.
  std::size_t BatchSize = 1024;
};

/// Plans \p C for batched execution; Ok=false (with WhyNot) means the
/// chain keeps the scalar path.
VecPlan planChain(const quil::Chain &C);

/// Bound inputs for one batched execution (mirrors interp::RunInput).
struct BatchInput {
  const std::vector<expr::SourceBuffer> *Sources = nullptr;
  const std::vector<expr::Value> *Values = nullptr;
  /// Per-batch accounting sink; null (or wrongly sized) disables it.
  obs::ProfileSink *Profile = nullptr;
};

/// Executes \p P against \p In. Returns the emitted rows (exactly one for
/// scalar chains). Rows are always scalar Values (the plan guarantees
/// scalar element types), so no arena is needed.
std::vector<expr::Value> executeBatched(const VecPlan &P,
                                        const BatchInput &In);

} // namespace vec
} // namespace steno

#endif // STENO_VEC_BATCHEXEC_H
