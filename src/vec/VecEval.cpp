//===- vec/VecEval.cpp - Columnar expression evaluation --------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "vec/VecEval.h"

#include "expr/Analysis.h"
#include "support/Error.h"

#include <cassert>
#include <climits>
#include <cmath>
#include <cstdint>

using namespace steno;
using namespace steno::vec;
using expr::BinaryOp;
using expr::Builtin;
using expr::Expr;
using expr::ExprKind;
using expr::ExprRef;
using expr::TypeKind;
using expr::UnaryOp;
using expr::Value;

//===----------------------------------------------------------------------===//
// Compilation
//===----------------------------------------------------------------------===//

bool vec::exprMayTrap(const Expr &E) {
  if (E.kind() == ExprKind::Binary &&
      (E.binaryOp() == BinaryOp::Div || E.binaryOp() == BinaryOp::Mod) &&
      E.type()->isInt64())
    return true;
  for (const ExprRef &Op : E.operands())
    if (exprMayTrap(*Op))
      return true;
  return false;
}

namespace {

bool compileNode(const ExprRef &E, const std::string &Elem, VecExpr &Out);

/// Compiles operand \p I of \p Parent. Element-free operands become scalar
/// leaves; the only non-scalar leaf permitted is the vec operand of
/// VecIndex, which the evaluator consumes as a whole Value.
bool compileKid(const Expr &Parent, unsigned I, const std::string &Elem,
                VecExpr &Out) {
  const ExprRef &K = Parent.operand(I);
  if (expr::freeParams(*K).count(Elem) == 0) {
    bool VecLeafOk = Parent.kind() == ExprKind::VecIndex && I == 0;
    if (!K->type()->isScalar() && !VecLeafOk)
      return false;
    Out = VecExpr{K.get(), /*ElemFree=*/true, exprMayTrap(*K), {}};
    return true;
  }
  return compileNode(K, Elem, Out);
}

/// \p E depends on the element parameter. Lane-dependent values must stay
/// scalar (bool / int64 / double columns); pair and vec values over lanes
/// are what forces the scalar fallback.
bool compileNode(const ExprRef &E, const std::string &Elem, VecExpr &Out) {
  if (!E->type()->isScalar())
    return false;
  Out.E = E.get();
  Out.ElemFree = false;
  Out.MayTrap = exprMayTrap(*E);
  Out.Kids.clear();
  switch (E->kind()) {
  case ExprKind::Param:
    return E->paramName() == Elem;
  case ExprKind::Convert:
  case ExprKind::Unary:
  case ExprKind::Binary:
  case ExprKind::Call:
  case ExprKind::Cond:
  case ExprKind::VecIndex: {
    Out.Kids.resize(E->operands().size());
    for (unsigned I = 0; I != E->operands().size(); ++I)
      if (!compileKid(*E, I, Elem, Out.Kids[I]))
        return false;
    return true;
  }
  default:
    // Const/Capture/BufferSlice/SourceLen are element-free by construction;
    // PairNew/PairFirst/PairSecond/VecLen over a lane-dependent operand are
    // not vectorized.
    return false;
  }
}

} // namespace

CompiledExpr vec::compileVecExpr(const ExprRef &E,
                                 const std::string &ElemName) {
  CompiledExpr C;
  C.Root = E;
  if (!E)
    return C;
  // Any free parameter other than the element cannot be bound during
  // columnar evaluation (nested-lambda shapes take the scalar path).
  std::set<std::string> FP = expr::freeParams(*E);
  for (const std::string &P : FP)
    if (P != ElemName)
      return C;
  if (FP.count(ElemName) == 0) {
    if (!E->type()->isScalar())
      return C;
    C.Tree = VecExpr{E.get(), /*ElemFree=*/true, exprMayTrap(*E), {}};
    C.Ok = true;
    return C;
  }
  VecExpr T;
  if (!compileNode(E, ElemName, T))
    return C;
  C.Tree = std::move(T);
  C.Ok = true;
  return C;
}

//===----------------------------------------------------------------------===//
// Evaluation
//===----------------------------------------------------------------------===//

namespace {

/// One past the highest lane index the selection can address — the size
/// every lane-indexed buffer must have. Selections are ascending, so the
/// last entry bounds them.
std::size_t laneBound(const Lanes &L) {
  assert(!L.empty() && "laneBound of empty lanes");
  return static_cast<std::size_t>(L.Dense ? L.Hi : L.Idx[L.Cnt - 1] + 1);
}

Lanes fromSel(const std::vector<std::int32_t> &S) {
  return Lanes{false, 0, 0, S.data(), 0,
               static_cast<std::int64_t>(S.size())};
}

/// Lane read with the numeric coercion of Value::asNumericDouble.
double numAt(const Col &C, std::int64_t I) {
  return C.K == TypeKind::Double ? C.D[I] : static_cast<double>(C.I[I]);
}

[[noreturn]] void divTrap() {
  support::fatalError(
      "steno runtime error [ST2001]: integer division by zero");
}

/// Broadcasts a scalar Value over the live lanes of a fresh column.
Col splat(const Value &V, const EvalCtx &Ctx, const Lanes &L) {
  std::size_t N = laneBound(L);
  ColBuf &Buf = Ctx.Scr->col();
  switch (V.kind()) {
  case TypeKind::Bool: {
    std::uint8_t *O = Buf.bl(N);
    std::uint8_t B = V.asBool() ? 1 : 0;
    L.forEach([&](std::int64_t I) { O[I] = B; });
    return Col::bl(O);
  }
  case TypeKind::Int64: {
    std::int64_t *O = Buf.i64(N);
    std::int64_t X = V.asInt64();
    L.forEach([&](std::int64_t I) { O[I] = X; });
    return Col::i64(O);
  }
  case TypeKind::Double: {
    double *O = Buf.dbl(N);
    double X = V.asDouble();
    L.forEach([&](std::int64_t I) { O[I] = X; });
    return Col::dbl(O);
  }
  default:
    break;
  }
  assert(false && "splat of non-scalar value");
  std::abort();
}

/// Copies the \p Sub lanes of \p Src into \p Dst (same type).
void copyLanes(const Col &Src, const Lanes &Sub, const Col &Dst) {
  switch (Dst.K) {
  case TypeKind::Bool:
    Sub.forEach([&](std::int64_t I) {
      const_cast<std::uint8_t *>(Dst.B)[I] = Src.B[I];
    });
    return;
  case TypeKind::Int64:
    Sub.forEach([&](std::int64_t I) {
      const_cast<std::int64_t *>(Dst.I)[I] = Src.I[I];
    });
    return;
  case TypeKind::Double:
    Sub.forEach(
        [&](std::int64_t I) { const_cast<double *>(Dst.D)[I] = Src.D[I]; });
    return;
  default:
    assert(false && "copyLanes of non-scalar column");
  }
}

Col makeCol(TypeKind K, std::size_t N, const EvalCtx &Ctx) {
  ColBuf &Buf = Ctx.Scr->col();
  switch (K) {
  case TypeKind::Bool:
    return Col::bl(Buf.bl(N));
  case TypeKind::Int64:
    return Col::i64(Buf.i64(N));
  default:
    return Col::dbl(Buf.dbl(N));
  }
}

Col evalConvertVec(const VecExpr &N, const EvalCtx &Ctx, const Lanes &L) {
  Col In = evalVec(N.Kids[0], Ctx, L);
  std::size_t Bn = laneBound(L);
  if (N.E->type()->isDouble()) {
    double *O = Ctx.Scr->col().dbl(Bn);
    if (In.K == TypeKind::Int64)
      L.forEach(
          [&](std::int64_t I) { O[I] = static_cast<double>(In.I[I]); });
    else
      L.forEach([&](std::int64_t I) { O[I] = In.D[I]; });
    return Col::dbl(O);
  }
  assert(N.E->type()->isInt64() && "convert target must be numeric");
  std::int64_t *O = Ctx.Scr->col().i64(Bn);
  if (In.K == TypeKind::Double)
    L.forEach(
        [&](std::int64_t I) { O[I] = static_cast<std::int64_t>(In.D[I]); });
  else
    L.forEach([&](std::int64_t I) { O[I] = In.I[I]; });
  return Col::i64(O);
}

Col evalUnaryVec(const VecExpr &N, const EvalCtx &Ctx, const Lanes &L) {
  Col In = evalVec(N.Kids[0], Ctx, L);
  std::size_t Bn = laneBound(L);
  if (N.E->unaryOp() == UnaryOp::Not) {
    std::uint8_t *O = Ctx.Scr->col().bl(Bn);
    L.forEach([&](std::int64_t I) { O[I] = In.B[I] ? 0 : 1; });
    return Col::bl(O);
  }
  if (In.K == TypeKind::Int64) {
    std::int64_t *O = Ctx.Scr->col().i64(Bn);
    L.forEach([&](std::int64_t I) { O[I] = -In.I[I]; });
    return Col::i64(O);
  }
  double *O = Ctx.Scr->col().dbl(Bn);
  L.forEach([&](std::int64_t I) { O[I] = -In.D[I]; });
  return Col::dbl(O);
}

/// And / Or with per-lane short-circuit: the RHS is evaluated only on the
/// lanes whose LHS did not decide the result, exactly mirroring the scalar
/// evaluator element by element.
Col evalLogicVec(const VecExpr &N, const EvalCtx &Ctx, const Lanes &L) {
  bool IsAnd = N.E->binaryOp() == BinaryOp::And;
  Col Lhs = evalVec(N.Kids[0], Ctx, L);
  std::size_t Bn = laneBound(L);
  std::uint8_t *O = Ctx.Scr->col().bl(Bn);
  std::vector<std::int32_t> &Need = Ctx.Scr->sel();
  Need.clear();
  L.forEach([&](std::int64_t I) {
    bool B = Lhs.B[I] != 0;
    if (B == IsAnd)
      Need.push_back(static_cast<std::int32_t>(I));
    else
      O[I] = B ? 1 : 0;
  });
  if (!Need.empty()) {
    Lanes Sub = fromSel(Need);
    Col Rhs = evalVec(N.Kids[1], Ctx, Sub);
    Sub.forEach([&](std::int64_t I) { O[I] = Rhs.B[I] ? 1 : 0; });
  }
  return Col::bl(O);
}

Col evalArithCompareVec(const VecExpr &N, const EvalCtx &Ctx,
                        const Lanes &L) {
  BinaryOp Op = N.E->binaryOp();
  Col A = evalVec(N.Kids[0], Ctx, L);
  Col B = evalVec(N.Kids[1], Ctx, L);
  std::size_t Bn = laneBound(L);
  if (expr::isArithmetic(Op)) {
    if (A.K == TypeKind::Int64 && B.K == TypeKind::Int64) {
      std::int64_t *O = Ctx.Scr->col().i64(Bn);
      switch (Op) {
      case BinaryOp::Add:
        L.forEach([&](std::int64_t I) { O[I] = A.I[I] + B.I[I]; });
        break;
      case BinaryOp::Sub:
        L.forEach([&](std::int64_t I) { O[I] = A.I[I] - B.I[I]; });
        break;
      case BinaryOp::Mul:
        L.forEach([&](std::int64_t I) { O[I] = A.I[I] * B.I[I]; });
        break;
      case BinaryOp::Div:
        L.forEach([&](std::int64_t I) {
          std::int64_t X = A.I[I], Y = B.I[I];
          if (Y == 0 || (Y == -1 && X == INT64_MIN))
            divTrap();
          O[I] = X / Y;
        });
        break;
      case BinaryOp::Mod:
        L.forEach([&](std::int64_t I) {
          std::int64_t X = A.I[I], Y = B.I[I];
          if (Y == 0 || (Y == -1 && X == INT64_MIN))
            divTrap();
          O[I] = X % Y;
        });
        break;
      default:
        assert(false && "non-arithmetic op");
      }
      return Col::i64(O);
    }
    double *O = Ctx.Scr->col().dbl(Bn);
    switch (Op) {
    case BinaryOp::Add:
      L.forEach([&](std::int64_t I) { O[I] = numAt(A, I) + numAt(B, I); });
      break;
    case BinaryOp::Sub:
      L.forEach([&](std::int64_t I) { O[I] = numAt(A, I) - numAt(B, I); });
      break;
    case BinaryOp::Mul:
      L.forEach([&](std::int64_t I) { O[I] = numAt(A, I) * numAt(B, I); });
      break;
    case BinaryOp::Div:
      L.forEach([&](std::int64_t I) { O[I] = numAt(A, I) / numAt(B, I); });
      break;
    case BinaryOp::Mod:
      L.forEach([&](std::int64_t I) {
        O[I] = std::fmod(numAt(A, I), numAt(B, I));
      });
      break;
    default:
      assert(false && "non-arithmetic op");
    }
    return Col::dbl(O);
  }
  // Comparison. Bool operands admit Eq/Ne only; numeric operands compare
  // through the same double coercion as the scalar evalCompare.
  std::uint8_t *O = Ctx.Scr->col().bl(Bn);
  if (A.K == TypeKind::Bool) {
    bool IsEq = Op == BinaryOp::Eq;
    L.forEach([&](std::int64_t I) {
      bool X = A.B[I] != 0, Y = B.B[I] != 0;
      O[I] = (IsEq ? X == Y : X != Y) ? 1 : 0;
    });
    return Col::bl(O);
  }
  switch (Op) {
  case BinaryOp::Eq:
    L.forEach(
        [&](std::int64_t I) { O[I] = numAt(A, I) == numAt(B, I) ? 1 : 0; });
    break;
  case BinaryOp::Ne:
    L.forEach(
        [&](std::int64_t I) { O[I] = numAt(A, I) != numAt(B, I) ? 1 : 0; });
    break;
  case BinaryOp::Lt:
    L.forEach(
        [&](std::int64_t I) { O[I] = numAt(A, I) < numAt(B, I) ? 1 : 0; });
    break;
  case BinaryOp::Le:
    L.forEach(
        [&](std::int64_t I) { O[I] = numAt(A, I) <= numAt(B, I) ? 1 : 0; });
    break;
  case BinaryOp::Gt:
    L.forEach(
        [&](std::int64_t I) { O[I] = numAt(A, I) > numAt(B, I) ? 1 : 0; });
    break;
  case BinaryOp::Ge:
    L.forEach(
        [&](std::int64_t I) { O[I] = numAt(A, I) >= numAt(B, I) ? 1 : 0; });
    break;
  default:
    assert(false && "non-comparison op");
  }
  return Col::bl(O);
}

Col evalCallVec(const VecExpr &N, const EvalCtx &Ctx, const Lanes &L) {
  Builtin Fn = N.E->builtin();
  Col A0 = evalVec(N.Kids[0], Ctx, L);
  std::size_t Bn = laneBound(L);
  switch (Fn) {
  case Builtin::Sqrt:
  case Builtin::Floor:
  case Builtin::Ceil:
  case Builtin::Exp:
  case Builtin::Log: {
    double *O = Ctx.Scr->col().dbl(Bn);
    switch (Fn) {
    case Builtin::Sqrt:
      L.forEach([&](std::int64_t I) { O[I] = std::sqrt(numAt(A0, I)); });
      break;
    case Builtin::Floor:
      L.forEach([&](std::int64_t I) { O[I] = std::floor(numAt(A0, I)); });
      break;
    case Builtin::Ceil:
      L.forEach([&](std::int64_t I) { O[I] = std::ceil(numAt(A0, I)); });
      break;
    case Builtin::Exp:
      L.forEach([&](std::int64_t I) { O[I] = std::exp(numAt(A0, I)); });
      break;
    default:
      L.forEach([&](std::int64_t I) { O[I] = std::log(numAt(A0, I)); });
      break;
    }
    return Col::dbl(O);
  }
  case Builtin::Abs: {
    if (A0.K == TypeKind::Int64) {
      std::int64_t *O = Ctx.Scr->col().i64(Bn);
      L.forEach([&](std::int64_t I) {
        std::int64_t X = A0.I[I];
        O[I] = X < 0 ? -X : X;
      });
      return Col::i64(O);
    }
    double *O = Ctx.Scr->col().dbl(Bn);
    L.forEach([&](std::int64_t I) { O[I] = std::fabs(A0.D[I]); });
    return Col::dbl(O);
  }
  case Builtin::Min:
  case Builtin::Max: {
    Col A1 = evalVec(N.Kids[1], Ctx, L);
    bool IsMin = Fn == Builtin::Min;
    if (A0.K == TypeKind::Int64 && A1.K == TypeKind::Int64) {
      std::int64_t *O = Ctx.Scr->col().i64(Bn);
      L.forEach([&](std::int64_t I) {
        std::int64_t X = A0.I[I], Y = A1.I[I];
        bool TakeA = IsMin ? X < Y : X > Y;
        O[I] = TakeA ? X : Y;
      });
      return Col::i64(O);
    }
    double *O = Ctx.Scr->col().dbl(Bn);
    L.forEach([&](std::int64_t I) {
      double X = numAt(A0, I), Y = numAt(A1, I);
      bool TakeA = IsMin ? X < Y : X > Y;
      O[I] = TakeA ? X : Y;
    });
    return Col::dbl(O);
  }
  case Builtin::Pow: {
    Col A1 = evalVec(N.Kids[1], Ctx, L);
    double *O = Ctx.Scr->col().dbl(Bn);
    L.forEach([&](std::int64_t I) {
      O[I] = std::pow(numAt(A0, I), numAt(A1, I));
    });
    return Col::dbl(O);
  }
  }
  assert(false && "bad Builtin");
  std::abort();
}

/// Cond evaluates each branch only on the lanes that take it — both for
/// trap fidelity and to avoid wasted work on skewed conditions.
Col evalCondVec(const VecExpr &N, const EvalCtx &Ctx, const Lanes &L) {
  Col C = evalVec(N.Kids[0], Ctx, L);
  std::vector<std::int32_t> &TS = Ctx.Scr->sel();
  std::vector<std::int32_t> &FS = Ctx.Scr->sel();
  TS.clear();
  FS.clear();
  L.forEach([&](std::int64_t I) {
    (C.B[I] ? TS : FS).push_back(static_cast<std::int32_t>(I));
  });
  Col Out = makeCol(N.E->type()->kind(), laneBound(L), Ctx);
  if (!TS.empty()) {
    Lanes TL = fromSel(TS);
    copyLanes(evalVec(N.Kids[1], Ctx, TL), TL, Out);
  }
  if (!FS.empty()) {
    Lanes FL = fromSel(FS);
    copyLanes(evalVec(N.Kids[2], Ctx, FL), FL, Out);
  }
  return Out;
}

Col evalVecIndexVec(const VecExpr &N, const EvalCtx &Ctx, const Lanes &L) {
  assert(N.Kids[0].ElemFree && "VecIndex vec operand must be element-free");
  expr::VecView V = expr::evalExpr(*N.Kids[0].E, *Ctx.Env).asVec();
  Col Idx = evalVec(N.Kids[1], Ctx, L);
  double *O = Ctx.Scr->col().dbl(laneBound(L));
  L.forEach([&](std::int64_t I) { O[I] = V[Idx.I[I]]; });
  return Col::dbl(O);
}

} // namespace

Col vec::evalVec(const VecExpr &N, const EvalCtx &Ctx, const Lanes &L) {
  assert(!L.empty() && "evalVec over empty lanes");
  if (N.ElemFree)
    return splat(expr::evalExpr(*N.E, *Ctx.Env), Ctx, L);
  switch (N.E->kind()) {
  case ExprKind::Param:
    return Ctx.Elem;
  case ExprKind::Convert:
    return evalConvertVec(N, Ctx, L);
  case ExprKind::Unary:
    return evalUnaryVec(N, Ctx, L);
  case ExprKind::Binary: {
    BinaryOp Op = N.E->binaryOp();
    if (Op == BinaryOp::And || Op == BinaryOp::Or)
      return evalLogicVec(N, Ctx, L);
    return evalArithCompareVec(N, Ctx, L);
  }
  case ExprKind::Call:
    return evalCallVec(N, Ctx, L);
  case ExprKind::Cond:
    return evalCondVec(N, Ctx, L);
  case ExprKind::VecIndex:
    return evalVecIndexVec(N, Ctx, L);
  default:
    break;
  }
  assert(false && "unvectorizable node reached evalVec");
  std::abort();
}

Value vec::laneValue(const Col &C, std::int64_t Lane) {
  switch (C.K) {
  case TypeKind::Bool:
    return Value(C.B[Lane] != 0);
  case TypeKind::Int64:
    return Value(C.I[Lane]);
  default:
    return Value(C.D[Lane]);
  }
}

Value vec::evalLane(const VecExpr &N, const std::string &ElemName,
                    const EvalCtx &Ctx, std::int64_t Lane) {
  Ctx.Env->bind(ElemName, laneValue(Ctx.Elem, Lane));
  Value V = expr::evalExpr(*N.E, *Ctx.Env);
  Ctx.Env->pop();
  return V;
}
