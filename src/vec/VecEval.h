//===- vec/VecEval.h - Columnar expression evaluation ----------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates an expression over a whole batch of elements at once: the
/// element parameter becomes a column, every other subexpression is
/// evaluated once per batch with the scalar evaluator and broadcast.
///
/// Semantics contract (the vectorize-on/off fuzz oracle enforces it): a
/// columnar evaluation over lanes L must be indistinguishable from
/// scalar-evaluating the expression on each live lane in order. The two
/// places this bites are laziness and traps:
///
///   * And / Or / Cond evaluate their lazy operand only on the lanes that
///     need it (a refined selection), exactly as the scalar evaluator
///     short-circuits per element — so `x != 0 && 10 / x > 1` never
///     divides on the zero lanes.
///   * Integer Div / Mod raise the same structured ST2001 trap as
///     expr::evalExpr and rt::ckdiv, checked per live lane.
///
/// compileVecExpr() decides once per plan whether an expression is
/// columnar-executable (scalar element type at every lane-dependent node,
/// supported kinds) and precomputes the per-node facts (element-free,
/// may-trap) the batch kernels need, so the per-batch path does no
/// analysis at all.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_VEC_VECEVAL_H
#define STENO_VEC_VECEVAL_H

#include "expr/Eval.h"
#include "expr/Expr.h"
#include "vec/Batch.h"

#include <string>
#include <vector>

namespace steno {
namespace vec {

/// One compiled expression node. ElemFree nodes are leaves here: the whole
/// subtree is evaluated with expr::evalExpr once per batch and broadcast.
struct VecExpr {
  const expr::Expr *E = nullptr;
  bool ElemFree = false;
  /// The subtree contains an int64 Div/Mod that could raise ST2001, so it
  /// must never be evaluated on a lane the scalar path would not reach.
  bool MayTrap = false;
  std::vector<VecExpr> Kids;
};

/// A compiled expression: the VecExpr tree plus the root reference that
/// keeps the expression nodes alive.
struct CompiledExpr {
  bool Ok = false;
  expr::ExprRef Root;
  VecExpr Tree;
};

/// True when evaluating \p E can raise the ST2001 division trap (contains
/// an int64 Div/Mod; divSafe proofs are deliberately ignored — the flag
/// only gates which lanes an expression may be speculated on).
bool exprMayTrap(const expr::Expr &E);

/// Compiles \p E for columnar evaluation with \p ElemName as the element
/// parameter. Fails (Ok = false) when the expression references other free
/// parameters, or when a lane-dependent node has a non-scalar type or an
/// unsupported kind (pair construction/projection over lanes, vec-typed
/// lane values).
CompiledExpr compileVecExpr(const expr::ExprRef &E,
                            const std::string &ElemName);

/// Batch evaluation context: the scalar environment (captures + sources
/// installed, no parameter bindings), the element column, and the scratch
/// pool for temporaries.
struct EvalCtx {
  expr::Env *Env = nullptr;
  Col Elem;
  Scratch *Scr = nullptr;
};

/// Evaluates \p N over the live lanes \p L (which must be non-empty).
/// The returned column is valid until the scratch pool is reset.
Col evalVec(const VecExpr &N, const EvalCtx &Ctx, const Lanes &L);

/// Evaluates \p N on a single lane by scalar evaluation of the original
/// expression (used by the order-sensitive TakeWhile/SkipWhile path when
/// the predicate may trap). \p ElemName names the element parameter.
expr::Value evalLane(const VecExpr &N, const std::string &ElemName,
                     const EvalCtx &Ctx, std::int64_t Lane);

/// The element value of \p C at \p Lane as a scalar Value.
expr::Value laneValue(const Col &C, std::int64_t Lane);

} // namespace vec
} // namespace steno

#endif // STENO_VEC_VECEVAL_H
