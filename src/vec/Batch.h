//===- vec/Batch.h - Columnar batch buffers and lane selections -*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data layer of vectorized execution (DESIGN.md §5i): typed column
/// buffers, lane selections, and the per-thread buffer pool that lets the
/// morsel scheduler push batch after batch through an operator chain
/// without touching the allocator.
///
/// A batch is up to batchSize() consecutive source elements. Each operator
/// kernel reads one column (a contiguous double / int64 / bool buffer, or
/// a borrowed window of the bound source) and either writes another column
/// (Trans) or narrows the set of live lanes (Pred). Lanes are addressed by
/// their position within the batch, so a column written by an early stage
/// stays valid for any later stage regardless of how the selection has
/// shrunk in between.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_VEC_BATCH_H
#define STENO_VEC_BATCH_H

#include "expr/Type.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace steno {
namespace vec {

/// True unless STENO_VECTORIZE is set to "0" or "off" — the default for
/// CompileOptions::Vectorize.
bool vectorizeEnvEnabled();

/// Target batch width in elements: STENO_BATCH_SIZE clamped to
/// [16, 65536]; 1024 when unset or unparsable. Read on every call so a
/// bench sweep can re-point it between compiles.
std::size_t batchSizeFromEnv();

/// Owned backing storage for one column. Only the vector matching the
/// column's type is ever grown; the others stay empty.
struct ColBuf {
  std::vector<double> D;
  std::vector<std::int64_t> I;
  std::vector<std::uint8_t> B;

  double *dbl(std::size_t N) {
    if (D.size() < N)
      D.resize(N);
    return D.data();
  }
  std::int64_t *i64(std::size_t N) {
    if (I.size() < N)
      I.resize(N);
    return I.data();
  }
  std::uint8_t *bl(std::size_t N) {
    if (B.size() < N)
      B.resize(N);
    return B.data();
  }
};

/// Read-only view of one column for the current batch. Points either into
/// a bound source buffer (zero-copy loads) or into a pooled ColBuf.
struct Col {
  expr::TypeKind K = expr::TypeKind::Double;
  const double *D = nullptr;
  const std::int64_t *I = nullptr;
  const std::uint8_t *B = nullptr;

  static Col dbl(const double *P) { return {expr::TypeKind::Double, P, nullptr, nullptr}; }
  static Col i64(const std::int64_t *P) { return {expr::TypeKind::Int64, nullptr, P, nullptr}; }
  static Col bl(const std::uint8_t *P) { return {expr::TypeKind::Bool, nullptr, nullptr, P}; }
};

/// The live lanes of the current batch: a dense window [Lo, Hi) straight
/// off the source, or — once a Where has fired — an ascending index list
/// (the selection vector), windowed by [Off, Cnt) so Skip can drop a
/// prefix without moving memory.
struct Lanes {
  bool Dense = true;
  std::int64_t Lo = 0, Hi = 0;
  const std::int32_t *Idx = nullptr;
  std::int64_t Off = 0, Cnt = 0;

  std::int64_t size() const { return Dense ? Hi - Lo : Cnt - Off; }
  bool empty() const { return size() <= 0; }

  static Lanes dense(std::int64_t N) { return Lanes{true, 0, N, nullptr, 0, 0}; }

  /// Visits live lanes in batch order. \p Fn receives the lane index.
  template <class F> void forEach(F &&Fn) const {
    if (Dense)
      for (std::int64_t L = Lo; L < Hi; ++L)
        Fn(L);
    else
      for (std::int64_t S = Off; S < Cnt; ++S)
        Fn(Idx[S]);
  }

  /// Lane at selection position \p S (order within the batch).
  std::int64_t at(std::int64_t S) const {
    return Dense ? Lo + S : Idx[Off + S];
  }
};

/// Bump pool of column buffers and selection vectors. Everything handed
/// out stays owned by the pool; reset() recycles it all without freeing,
/// so steady-state batch execution performs no allocation at all.
class Scratch {
public:
  ColBuf &col() {
    if (UsedCols == Cols.size())
      Cols.push_back(std::make_unique<ColBuf>());
    return *Cols[UsedCols++];
  }

  std::vector<std::int32_t> &sel() {
    if (UsedSels == Sels.size())
      Sels.push_back(std::make_unique<std::vector<std::int32_t>>());
    return *Sels[UsedSels++];
  }

  void reset() {
    UsedCols = 0;
    UsedSels = 0;
  }

private:
  std::vector<std::unique_ptr<ColBuf>> Cols;
  std::vector<std::unique_ptr<std::vector<std::int32_t>>> Sels;
  std::size_t UsedCols = 0;
  std::size_t UsedSels = 0;
};

/// Per-thread execution workspace: the operator-stage columns, the batch
/// selection vector, and the expression scratch pool. One per worker
/// thread (workspace() below), reused across batches, morsels and
/// queries — the "per-worker buffer pool" that keeps work-stealing free
/// of re-allocation.
struct Workspace {
  std::vector<ColBuf> StageCols; ///< One per Trans stage, grown on demand.
  std::vector<std::int32_t> Sel; ///< The batch's selection vector.
  Scratch Scr;                   ///< Expression temporaries.

  ColBuf &stage(std::size_t I) {
    if (StageCols.size() <= I)
      StageCols.resize(I + 1);
    return StageCols[I];
  }
};

/// The calling thread's workspace (thread-local; created on first use).
Workspace &workspace();

} // namespace vec
} // namespace steno

#endif // STENO_VEC_BATCH_H
