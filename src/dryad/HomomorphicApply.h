//===- dryad/HomomorphicApply.h - Partition-parallel map -------*- C++ -*-===//
///
/// \file
/// The HomomorphicApply operator of paper §6: "maps a function across
/// partitions in parallel (as opposed to each element), and returns a new
/// set of partitions". This is how a compiled (fused) query body is run
/// over every partition with one indirect call per *partition* instead of
/// PLINQ's iterator-based per-element composition.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_DRYAD_HOMOMORPHICAPPLY_H
#define STENO_DRYAD_HOMOMORPHICAPPLY_H

#include "dryad/ThreadPool.h"

#include <type_traits>
#include <vector>

namespace steno {
namespace dryad {

/// Applies \p Fn to every partition in parallel on \p Pool; result i is
/// Fn(Parts[i]). \p Fn must be safe to call concurrently.
template <typename In, typename F>
auto homomorphicApply(ThreadPool &Pool, const std::vector<In> &Parts,
                      F Fn) {
  using Out = std::invoke_result_t<F, const In &>;
  std::vector<Out> Results(Parts.size());
  for (std::size_t I = 0; I != Parts.size(); ++I)
    if (!Pool.submit([&Results, &Parts, &Fn, I] {
          Results[I] = Fn(Parts[I]);
        }))
      Results[I] = Fn(Parts[I]); // pool shutting down: degrade inline
  Pool.wait();
  return Results;
}

} // namespace dryad
} // namespace steno

#endif // STENO_DRYAD_HOMOMORPHICAPPLY_H
