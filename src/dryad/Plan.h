//===- dryad/Plan.h - Homomorphic-subquery planning (§6) -------*- C++ -*-===//
///
/// \file
/// The parallel optimizer of paper §6: traverses the QUIL representation,
/// identifies the maximal prefix of homomorphic (element-independent)
/// operators, and — when the query ends in an associative Agg or
/// GroupByAggregate — splits it into a per-partition vertex chain with a
/// partial Agg_i, plus a combining Agg* stage executed after all
/// partitions (Figure 12).
///
//===----------------------------------------------------------------------===//

#ifndef STENO_DRYAD_PLAN_H
#define STENO_DRYAD_PLAN_H

#include "quil/Quil.h"

#include <optional>
#include <string>

namespace steno {
namespace dryad {

/// How partition outputs are merged by the Agg* stage.
enum class CombineKind {
  Concat,     ///< Pure homomorphic query: concatenate partition outputs.
  Fold,       ///< Scalar aggregate: fold partials with the combiner.
  MergeByKey, ///< GroupByAggregate: merge per-key partials with the
              ///< combiner.
  MergeSorted ///< OrderBy: each partition sorts locally; the combine
              ///< stage k-way-merges the sorted runs (the parallel-sort
              ///< transformation §6 attributes to DryadLINQ, with a merge
              ///< in place of its range-partitioning).
};

/// A parallel execution plan for one query.
struct ParallelPlan {
  /// The per-partition subquery (Src_i ... Agg_i Ret of Figure 12).
  quil::Chain VertexChain;
  CombineKind Kind = CombineKind::Concat;
  /// Associative (acc, acc) -> acc merger for Fold/MergeByKey.
  expr::Lambda Combiner;
  /// Result selector applied after combining: (acc) -> R for Fold,
  /// (key, acc) -> R for MergeByKey. Invalid when the identity.
  expr::Lambda FinalResult;
  /// MergeSorted: the OrderBy key selector (elem) -> numeric.
  expr::Lambda SortKey;
  /// Result type of the whole (combined) query.
  expr::TypeRef ResultType;
  bool ScalarResult = false;
};

/// Builds a plan for \p Chain, or returns std::nullopt with \p WhyNot set
/// when the chain contains a non-homomorphic operator this planner cannot
/// split (stateful predicates, ordering sinks, aggregates without a
/// combiner). Such queries still run sequentially.
std::optional<ParallelPlan> planParallel(const quil::Chain &Chain,
                                         std::string *WhyNot = nullptr);

} // namespace dryad
} // namespace steno

#endif // STENO_DRYAD_PLAN_H
