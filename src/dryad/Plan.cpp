//===- dryad/Plan.cpp -----------------------------------------*- C++ -*-===//

#include "dryad/Plan.h"
#include "expr/Type.h"
#include "support/Error.h"

#include <cassert>

using namespace steno;
using namespace steno::dryad;
using expr::Type;
using quil::Chain;
using quil::Op;
using quil::PredOp;
using quil::SinkOp;
using quil::Sym;

namespace {

/// Homomorphic operators apply to each element independently, so they may
/// run per-partition unchanged (paper §6: "Trans, Pred and nested queries
/// are homomorphic"). Stateful predicates (Take/Skip/TakeWhile/SkipWhile)
/// depend on global element order, so they are not.
bool isHomomorphic(const Op &O) {
  switch (O.S) {
  case Sym::Trans:
  case Sym::Nested:
    return true;
  case Sym::Pred:
    return O.P == PredOp::Where;
  default:
    return false;
  }
}

std::optional<ParallelPlan> fail(std::string *WhyNot, const char *Reason) {
  if (WhyNot)
    *WhyNot = Reason;
  return std::nullopt;
}

} // namespace

std::optional<ParallelPlan> dryad::planParallel(const Chain &C,
                                                std::string *WhyNot) {
  assert(!C.Ops.empty() && C.Ops.front().S == Sym::Src &&
         "planning an unvalidated chain");

  // Collect Src plus the maximal homomorphic prefix.
  Chain Vertex;
  size_t I = 0;
  Vertex.Ops.push_back(C.Ops[I++]);
  while (I < C.Ops.size() && isHomomorphic(C.Ops[I]))
    Vertex.Ops.push_back(C.Ops[I++]);

  const Op &Next = C.Ops[I];

  if (Next.S == Sym::Ret) {
    // Fully homomorphic: each partition yields its elements; Agg* is a
    // concatenation respecting partition order.
    Vertex.Ops.push_back(Next);
    Vertex.Result = C.Result;
    Vertex.Scalar = false;
    ParallelPlan Plan;
    Plan.VertexChain = std::move(Vertex);
    Plan.Kind = CombineKind::Concat;
    Plan.ResultType = C.Result;
    Plan.ScalarResult = false;
    return Plan;
  }

  if (Next.S == Sym::Agg) {
    if (I + 2 != C.Ops.size())
      return fail(WhyNot, "operators between Agg and Ret");
    if (!Next.Combine.valid())
      return fail(WhyNot,
                  "aggregate has no associative combiner (Agg* needs one)");
    // Partial Agg_i: same seed and step, but emit the raw accumulator —
    // the result selector moves to the combining stage.
    Op Partial = Next;
    Partial.Fn3 = expr::Lambda();
    Partial.OutElem = Next.Seed->type();
    Vertex.Ops.push_back(Partial);
    Op Ret;
    Ret.S = Sym::Ret;
    Ret.InElem = Partial.OutElem;
    Ret.OutElem = Partial.OutElem;
    Vertex.Ops.push_back(Ret);
    Vertex.Result = Partial.OutElem;
    Vertex.Scalar = true;

    ParallelPlan Plan;
    Plan.VertexChain = std::move(Vertex);
    Plan.Kind = CombineKind::Fold;
    Plan.Combiner = Next.Combine;
    Plan.FinalResult = Next.Fn3;
    Plan.ResultType = C.Result;
    Plan.ScalarResult = true;
    return Plan;
  }

  if (Next.S == Sym::Sink && Next.K == SinkOp::GroupByAggregate) {
    if (I + 2 != C.Ops.size())
      return fail(WhyNot,
                  "operators between GroupByAggregate and Ret");
    if (!Next.Combine.valid())
      return fail(WhyNot, "GroupByAggregate has no associative combiner");
    // Partial sink: per-partition (key, partial acc) pairs; the result
    // selector moves to the merge stage.
    Op Partial = Next;
    Partial.Fn3 = expr::Lambda();
    Partial.OutElem = Type::pairTy(Type::int64Ty(), Next.Seed->type());
    Vertex.Ops.push_back(Partial);
    Op Ret;
    Ret.S = Sym::Ret;
    Ret.InElem = Partial.OutElem;
    Ret.OutElem = Partial.OutElem;
    Vertex.Ops.push_back(Ret);
    Vertex.Result = Partial.OutElem;
    Vertex.Scalar = false;

    ParallelPlan Plan;
    Plan.VertexChain = std::move(Vertex);
    Plan.Kind = CombineKind::MergeByKey;
    Plan.Combiner = Next.Combine;
    Plan.FinalResult = Next.Fn3;
    Plan.ResultType = C.Result;
    Plan.ScalarResult = false;
    return Plan;
  }

  if (Next.S == Sym::Sink && Next.K == SinkOp::ToArray &&
      I + 2 == C.Ops.size()) {
    // Materialization commutes with concatenation.
    Vertex.Ops.push_back(Next);
    Vertex.Ops.push_back(C.Ops[I + 1]);
    Vertex.Result = C.Result;
    Vertex.Scalar = false;
    ParallelPlan Plan;
    Plan.VertexChain = std::move(Vertex);
    Plan.Kind = CombineKind::Concat;
    Plan.ResultType = C.Result;
    Plan.ScalarResult = false;
    return Plan;
  }

  if (Next.S == Sym::Sink && Next.K == SinkOp::OrderBy &&
      I + 2 == C.Ops.size()) {
    // §6: "it transforms a OrderBy Sink operator into a distributed
    // sort". Each partition sorts its rows in parallel; the Agg* stage
    // k-way-merges the sorted runs.
    Vertex.Ops.push_back(Next);
    Vertex.Ops.push_back(C.Ops[I + 1]);
    Vertex.Result = C.Result;
    Vertex.Scalar = false;
    ParallelPlan Plan;
    Plan.VertexChain = std::move(Vertex);
    Plan.Kind = CombineKind::MergeSorted;
    Plan.SortKey = Next.Fn;
    Plan.ResultType = C.Result;
    Plan.ScalarResult = false;
    return Plan;
  }

  if (Next.S == Sym::Pred)
    return fail(WhyNot, "stateful predicate (Take/Skip/...) is "
                        "order-dependent and not homomorphic");
  return fail(WhyNot, "sink requires repartitioning, which this planner "
                      "does not implement");
}
