//===- dryad/Dist.cpp -----------------------------------------*- C++ -*-===//

#include "dryad/Dist.h"
#include "adapt/Adapt.h"
#include "analysis/Analysis.h"
#include "dryad/HomomorphicApply.h"
#include "dryad/JobGraph.h"
#include "expr/Eval.h"
#include "obs/Metrics.h"
#include "obs/Profile.h"
#include "obs/Trace.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <deque>
#include <unordered_map>

using namespace steno;
using namespace steno::dryad;
using expr::Value;

namespace {

/// Points \p Part's slot \p Slot at elements [Begin, Begin+Len) of the
/// original buffer \p Src (in place; every other slot untouched).
void rebindRange(Bindings &Part, const expr::SourceBuffer &Src,
                 unsigned Slot, std::size_t Begin, std::size_t Len) {
  // Branch on the declared type, never on pointer nullness: an empty
  // source is legally bound with a null data pointer (e.g.
  // bindDoubleArray(0, nullptr, 0)) and must keep its type when rebound.
  // Null buffers also forbid pointer arithmetic, hence the Data guards.
  switch (Src.Kind) {
  case expr::SourceBufKind::Double:
    Part.bindDoubleArray(Slot,
                         Src.DoubleData ? Src.DoubleData + Begin : nullptr,
                         static_cast<std::int64_t>(Len));
    return;
  case expr::SourceBufKind::Int64:
    Part.bindInt64Array(Slot,
                        Src.Int64Data ? Src.Int64Data + Begin : nullptr,
                        static_cast<std::int64_t>(Len));
    return;
  case expr::SourceBufKind::Point:
    Part.bindPointArray(
        Slot, Src.DoubleData ? Src.DoubleData + Begin * Src.Dim : nullptr,
        static_cast<std::int64_t>(Len), Src.Dim);
    return;
  case expr::SourceBufKind::Unbound:
    stenoUnreachable("partition slot bound without a source kind");
  }
  stenoUnreachable("bad SourceBufKind");
}

} // namespace

Bindings dryad::bindingRange(const Bindings &B, unsigned Slot,
                             std::size_t Begin, std::size_t Len) {
  assert(Slot < B.sources().size() && "partition slot is not bound");
  Bindings Part = B; // shares every other slot
  rebindRange(Part, B.sources()[Slot], Slot, Begin, Len);
  return Part;
}

std::vector<Bindings> dryad::partitionBindings(const Bindings &B,
                                               unsigned Parts,
                                               unsigned PartitionSlot) {
  assert(Parts > 0 && "need at least one partition");
  assert(PartitionSlot < B.sources().size() &&
         "partition slot is not bound");
  const expr::SourceBuffer &Src = B.sources()[PartitionSlot];
  std::size_t Count = static_cast<std::size_t>(Src.Count);
  std::size_t Base = Count / Parts;
  std::size_t Extra = Count % Parts;
  std::size_t Pos = 0;
  std::vector<Bindings> Out;
  Out.reserve(Parts);
  for (unsigned P = 0; P != Parts; ++P) {
    std::size_t Len = Base + (P < Extra ? 1 : 0);
    Out.push_back(bindingRange(B, PartitionSlot, Pos, Len));
    Pos += Len;
  }
  return Out;
}

DistributedQuery DistributedQuery::compile(const query::Query &Q,
                                           const DistOptions &Options) {
  static obs::Counter &Parallelized =
      obs::counter("dryad.compile.parallel");
  static obs::Counter &Fallbacks =
      obs::counter("dryad.compile.sequential_fallback");

  quil::Chain Chain = quil::lower(Q);
  if (auto Err = quil::validate(Chain))
    support::fatalError("invalid distributed query '" + Options.Name +
                        "': " + *Err);
  if (Options.Specialize)
    Chain = quil::specializeGroupByAggregate(Chain);

  DistributedQuery DQ;
  DQ.Morsels = Options.Morsels;
  DQ.Adaptive = Options.Adaptive && Options.Profile;

  // Semantic gate: the analyzer's parallel-safety certificate. The
  // planner below only checks chain *shape*; the certificate checks that
  // the split preserves sequential meaning.
  analysis::AnalysisResult Analyzed = analysis::analyzeChain(Chain);
  DQ.Cert = Analyzed.Cert;
  std::string WhyNot;
  std::optional<ParallelPlan> Plan;
  if (!DQ.Cert.parallelSafe()) {
    WhyNot = "analyzer refused certification (" + DQ.Cert.str() + ")";
  } else {
    // Structural gate: the §6 planner's Agg_i + Agg* split.
    Plan = planParallel(Chain, &WhyNot);
  }

  CompileOptions VertexOptions;
  VertexOptions.Exec = Options.Exec;
  VertexOptions.Name = Options.Name + "_vertex";
  VertexOptions.SpecializeGroupByAggregate = false; // already applied
  VertexOptions.Analyze = Options.Analyze;
  VertexOptions.Profile = Options.Profile;
  VertexOptions.Rewrite = Options.Rewrite;
  VertexOptions.Vectorize = Options.Vectorize;

  if (!Plan) {
    // Sequential fallback: compile the whole query as one vertex and
    // refuse fan-out at run time. Documented in DESIGN.md ("Parallel
    // safety"): queries are never rejected for being unparallelizable,
    // they just lose the speedup.
    Fallbacks.inc();
    if (Options.WarnSequentialFallback)
      std::fprintf(stderr,
                   "steno: query '%s' falls back to sequential execution: "
                   "%s\n",
                   Options.Name.c_str(), WhyNot.c_str());
    DQ.Sequential = true;
    DQ.WhyNot = std::move(WhyNot);
    DQ.Vertex = compileChain(Chain, VertexOptions);
    return DQ;
  }

  Parallelized.inc();
  DQ.Vertex = compileChain(Plan->VertexChain, VertexOptions);
  DQ.Plan = std::move(*Plan);
  // Batched vertices want morsels made of whole batches: one ragged tail
  // per stolen range instead of one per morsel.
  if (DQ.Vertex.vectorized() && DQ.Morsels.BatchAlign <= 1)
    DQ.Morsels.BatchAlign = vec::batchSizeFromEnv();
  return DQ;
}

namespace {

/// Applies a 1- or 2-ary lambda to values (top-level combine stage).
Value apply(const expr::Lambda &L, std::vector<Value> Args) {
  expr::Env Env;
  return expr::applyLambda(L, Args, Env);
}

/// The Agg* stage runs once per key per partition, which for dense
/// GroupByAggregate sinks is O(P x keys) — interpreting the combiner
/// lambda there would dominate high-key-count jobs. DryadLINQ generates
/// the combine vertex like any other; we approximate that by compiling
/// the common associative shapes to native closures and falling back to
/// the interpreter otherwise.
using Combiner2 = std::function<Value(const Value &, const Value &)>;

Combiner2 compileCombiner(const expr::Lambda &L) {
  using expr::BinaryOp;
  using expr::ExprKind;
  const std::string &A = L.param(0).Name;
  const std::string &B = L.param(1).Name;
  const expr::Expr &Body = *L.body();

  auto isParam = [](const expr::ExprRef &E, const std::string &Name) {
    return E->kind() == ExprKind::Param && E->paramName() == Name;
  };

  if (Body.kind() == ExprKind::Binary &&
      Body.binaryOp() == BinaryOp::Add &&
      isParam(Body.operand(0), A) && isParam(Body.operand(1), B)) {
    if (Body.type()->isDouble())
      return [](const Value &X, const Value &Y) {
        return Value(X.asDouble() + Y.asDouble());
      };
    if (Body.type()->isInt64())
      return [](const Value &X, const Value &Y) {
        return Value(X.asInt64() + Y.asInt64());
      };
  }

  // Generic fallback: interpret, but reuse one environment.
  auto Env = std::make_shared<expr::Env>();
  return [L, Env](const Value &X, const Value &Y) {
    Env->bind(L.param(0).Name, X);
    Env->bind(L.param(1).Name, Y);
    Value Out = expr::evalExpr(*L.body(), *Env);
    Env->pop();
    Env->pop();
    return Out;
  };
}

/// True when the analyzer certified every combiner in the chain at least
/// associative (Trusted counts: the user declared it associative and the
/// analyzer flagged ST2006 rather than refuting it). Gates the pairwise
/// combine tree; a left fold is the defensive fallback.
bool certifiedAssociative(const analysis::SafetyCertificate &Cert) {
  for (analysis::AggClass C : Cert.AggClasses)
    if (C != analysis::AggClass::Trusted &&
        C != analysis::AggClass::Associative &&
        C != analysis::AggClass::AssociativeCommutative)
      return false;
  return true;
}

/// Pairwise combine tree over in-order partials: round k combines
/// adjacent pairs (2i, 2i+1), so for an associative combiner the result
/// equals the left fold while the join does log2(N) rounds instead of N-1
/// serial applications. Rounds with enough pairs fan out on the pool —
/// each parallel application gets a fresh environment (applyLambda), so
/// interpreted combiners are safe to run concurrently.
Value treeCombine(ThreadPool &Pool, std::vector<Value> Vals,
                  const expr::Lambda &Combiner) {
  static obs::Counter &Rounds = obs::counter("dryad.combine.tree_rounds");
  static obs::Counter &ParallelRounds =
      obs::counter("dryad.combine.tree_rounds_parallel");
  assert(!Vals.empty());
  Combiner2 Fast = compileCombiner(Combiner);
  // Below this many pairs a round runs serially: task submission costs
  // more than the combines themselves for scalar merges.
  constexpr std::size_t MinParallelPairs = 8;
  while (Vals.size() > 1) {
    Rounds.inc();
    std::size_t Pairs = Vals.size() / 2;
    bool Odd = (Vals.size() & 1) != 0;
    std::vector<Value> Next(Pairs + (Odd ? 1 : 0));
    if (Pairs >= MinParallelPairs) {
      ParallelRounds.inc();
      std::vector<std::size_t> Idx(Pairs);
      for (std::size_t I = 0; I != Pairs; ++I)
        Idx[I] = I;
      std::vector<Value> Combined = homomorphicApply(
          Pool, Idx, [&Vals, &Combiner](const std::size_t &I) {
            // apply() builds a fresh Env per call (thread-safe), unlike
            // the shared-Env closure compileCombiner returns.
            return apply(Combiner, {Vals[2 * I], Vals[2 * I + 1]});
          });
      for (std::size_t I = 0; I != Pairs; ++I)
        Next[I] = std::move(Combined[I]);
    } else {
      for (std::size_t I = 0; I != Pairs; ++I)
        Next[I] = Fast(Vals[2 * I], Vals[2 * I + 1]);
    }
    if (Odd)
      Next.back() = std::move(Vals.back());
    Vals = std::move(Next);
  }
  return std::move(Vals.front());
}

/// Re-homes every Vec payload (including inside pairs) into \p Arena so
/// combined rows outlive the per-partition results.
Value rehome(const Value &V, std::deque<std::vector<double>> &Arena) {
  switch (V.kind()) {
  case expr::TypeKind::Vec: {
    expr::VecView View = V.asVec();
    Arena.emplace_back(View.Data, View.Data + View.Len);
    return Value(expr::VecView{
        Arena.back().data(),
        static_cast<std::int64_t>(Arena.back().size())});
  }
  case expr::TypeKind::Pair:
    return Value::makePair(rehome(V.first(), Arena),
                           rehome(V.second(), Arena));
  default:
    return V;
  }
}

} // namespace

QueryResult
DistributedQuery::run(ThreadPool &Pool,
                      const std::vector<Bindings> &PartitionBindings) const {
  assert(!PartitionBindings.empty() && "no partitions to run on");
  if (Sequential) {
    if (PartitionBindings.size() != 1)
      support::fatalError(
          "query '" + Vertex.program().Name +
          "' is sequential-only (" + WhyNot +
          ") but was handed " +
          std::to_string(PartitionBindings.size()) +
          " partitions; consult parallel() before partitioning");
    return Vertex.run(PartitionBindings.front());
  }

  // Stage 1: one vertex per partition (Src_i ... Agg_i of Figure 12),
  // scheduled as a Dryad job graph.
  std::vector<QueryResult> Partials(PartitionBindings.size());
  JobGraph Graph;
  std::vector<JobGraph::VertexId> Stage1;
  Stage1.reserve(PartitionBindings.size());
  for (std::size_t P = 0; P != PartitionBindings.size(); ++P) {
    Stage1.push_back(Graph.addVertex(
        "part" + std::to_string(P),
        [this, &Partials, &PartitionBindings, P] {
          Partials[P] = Vertex.run(PartitionBindings[P]);
        }));
  }
  // Stage 2 placeholder: the combine below runs after graph completion;
  // register it as a vertex so the graph shape matches Figure 12.
  bool CombineRan = false;
  Graph.addVertex(
      "combine", [&CombineRan] { CombineRan = true; }, Stage1);
  Graph.run(Pool);
  assert(CombineRan && "combine vertex did not run");

  return combinePartials(Pool, std::move(Partials));
}

QueryResult
DistributedQuery::combinePartials(ThreadPool &Pool,
                                  std::vector<QueryResult> Partials) const {
  return combineParallelPartials(Pool, Plan, Cert, std::move(Partials));
}

QueryResult
dryad::combineParallelPartials(ThreadPool &Pool, const ParallelPlan &Plan,
                               const analysis::SafetyCertificate &Cert,
                               std::vector<QueryResult> Partials) {
  // Stage 2: Agg* — merge the partial results (in source order).
  switch (Plan.Kind) {
  case CombineKind::Concat: {
    // Rows may reference the per-partition arenas; re-home them into the
    // combined result's arena.
    std::vector<Value> Rows;
    auto Arena = std::make_shared<std::deque<std::vector<double>>>();
    for (QueryResult &Part : Partials)
      for (const Value &V : Part.rows())
        Rows.push_back(rehome(V, *Arena));
    return QueryResult(false, std::move(Rows), std::move(Arena));
  }

  case CombineKind::Fold: {
    // Combine the partials, then the final result selector. With an
    // associativity-certified combiner the partials merge pairwise as a
    // tree (log-depth join); without certification — defensive, the
    // parallel gate should already have refused — serialize left-to-
    // right exactly as before.
    assert(!Partials.empty());
    std::vector<Value> Vals;
    Vals.reserve(Partials.size());
    for (QueryResult &Part : Partials)
      Vals.push_back(Part.scalarValue());
    Value Acc;
    if (certifiedAssociative(Cert)) {
      Acc = treeCombine(Pool, std::move(Vals), Plan.Combiner);
    } else {
      Acc = std::move(Vals.front());
      for (std::size_t P = 1; P != Vals.size(); ++P)
        Acc = apply(Plan.Combiner, {Acc, Vals[P]});
    }
    if (Plan.FinalResult.valid())
      Acc = apply(Plan.FinalResult, {Acc});
    auto Arena = std::make_shared<std::deque<std::vector<double>>>();
    std::vector<Value> Rows = {rehome(Acc, *Arena)};
    return QueryResult(true, std::move(Rows), std::move(Arena));
  }

  case CombineKind::MergeSorted: {
    // K-way merge of per-partition sorted runs by the OrderBy key.
    // Stable across partitions: ties resolve to the earlier partition,
    // matching the sequential stable sort over concatenated input.
    struct Run {
      const std::vector<Value> *Rows;
      std::size_t Pos;
      std::size_t PartIdx;
    };
    std::vector<Run> Runs;
    std::size_t Total = 0;
    for (std::size_t P = 0; P != Partials.size(); ++P) {
      Runs.push_back(Run{&Partials[P].rows(), 0, P});
      Total += Partials[P].rows().size();
    }
    expr::Env KeyEnv;
    const std::string &KeyParam = Plan.SortKey.param(0).Name;
    auto keyOf = [&](const Value &V) {
      KeyEnv.bind(KeyParam, V);
      double Key =
          expr::evalExpr(*Plan.SortKey.body(), KeyEnv).asNumericDouble();
      KeyEnv.pop();
      return Key;
    };
    std::vector<Value> Rows;
    Rows.reserve(Total);
    while (Rows.size() != Total) {
      Run *Best = nullptr;
      double BestKey = 0;
      for (Run &R : Runs) {
        if (R.Pos >= R.Rows->size())
          continue;
        double Key = keyOf((*R.Rows)[R.Pos]);
        if (!Best || Key < BestKey) {
          Best = &R;
          BestKey = Key;
        }
      }
      assert(Best && "merge ran dry early");
      Rows.push_back((*Best->Rows)[Best->Pos++]);
    }
    auto Arena = std::make_shared<std::deque<std::vector<double>>>();
    for (Value &V : Rows)
      V = rehome(V, *Arena);
    return QueryResult(false, std::move(Rows), std::move(Arena));
  }

  case CombineKind::MergeByKey: {
    // Merge per-key partials in first-appearance order, then apply the
    // result selector — the distributed GroupBy-Aggregate of §4.3/§6.
    Combiner2 Combine = compileCombiner(Plan.Combiner);
    std::vector<std::pair<std::int64_t, Value>> Entries;
    std::unordered_map<std::int64_t, std::size_t> Index;
    bool UseIndex = false; // built lazily, only if key orders diverge
    for (const QueryResult &Part : Partials) {
      const std::vector<Value> &Rows = Part.rows();
      if (Entries.empty() && !UseIndex) {
        Entries.reserve(Rows.size());
        for (const Value &Row : Rows)
          Entries.emplace_back(Row.first().asInt64(), Row.second());
        continue;
      }
      // Fast path: dense sinks give every partition the same ordered key
      // sequence, so partials combine positionally.
      if (!UseIndex && Rows.size() == Entries.size()) {
        bool Aligned = true;
        for (std::size_t I = 0; I != Rows.size(); ++I) {
          if (Rows[I].first().asInt64() != Entries[I].first) {
            Aligned = false;
            break;
          }
        }
        if (Aligned) {
          for (std::size_t I = 0; I != Rows.size(); ++I)
            Entries[I].second =
                Combine(Entries[I].second, Rows[I].second());
          continue;
        }
      }
      if (!UseIndex) {
        for (std::size_t I = 0; I != Entries.size(); ++I)
          Index.emplace(Entries[I].first, I);
        UseIndex = true;
      }
      for (const Value &Row : Rows) {
        std::int64_t Key = Row.first().asInt64();
        auto It = Index.find(Key);
        if (It == Index.end()) {
          Index.emplace(Key, Entries.size());
          Entries.emplace_back(Key, Row.second());
          continue;
        }
        Entries[It->second].second =
            Combine(Entries[It->second].second, Row.second());
      }
    }
    std::vector<Value> Rows;
    Rows.reserve(Entries.size());
    for (const auto &[Key, Acc] : Entries) {
      if (Plan.FinalResult.valid())
        Rows.push_back(apply(Plan.FinalResult, {Value(Key), Acc}));
      else
        Rows.push_back(Value::makePair(Value(Key), Acc));
    }
    auto Arena = std::make_shared<std::deque<std::vector<double>>>();
    for (Value &V : Rows)
      V = rehome(V, *Arena);
    return QueryResult(false, std::move(Rows), std::move(Arena));
  }
  }
  stenoUnreachable("bad CombineKind");
}

QueryResult DistributedQuery::runParallel(ThreadPool &Pool,
                                          const Bindings &B,
                                          unsigned PartitionSlot) const {
  if (Sequential) {
    // The documented fallback: same results, no fan-out.
    static obs::Counter &SeqRuns =
        obs::counter("dryad.run.sequential_fallback");
    SeqRuns.inc();
    return Vertex.run(B);
  }

  static obs::Counter &MorselRuns = obs::counter("dryad.run.morsel");
  MorselRuns.inc();
  obs::Span Span("dryad.run.parallel");

  assert(PartitionSlot < B.sources().size() &&
         "partition slot is not bound");
  const expr::SourceBuffer &Src = B.sources()[PartitionSlot];
  std::size_t Count =
      Src.Count > 0 ? static_cast<std::size_t>(Src.Count) : 0;

  // Stage 1, morsel-driven: each morsel is a contiguous view-partition
  // run through the shared vertex program; tagging with the morsel's
  // source offset lets the combine stage see partials in source order,
  // which keeps Concat/MergeSorted/MergeByKey semantics identical to
  // static partitioning no matter how stealing interleaved.
  //
  // Per-call costs are hoisted out of the morsel body: each worker gets
  // one Bindings copy (the body only repoints the partition slot's
  // window) and one QueryRunner (bindings validated once, profile deltas
  // accumulated locally and merged once per worker below). At w1 on a
  // uniform input this is what closes the gap to static partitioning —
  // the body is one rebind plus one dispatch, like the fused loop itself.
  using Tagged = std::pair<std::size_t, QueryResult>;
  unsigned Workers = Pool.workerCount();
  std::vector<std::vector<Tagged>> PerWorker(Workers);
  std::vector<Bindings> Parts(Workers, B);
  std::vector<QueryRunner> Runners;
  Runners.reserve(Workers);
  for (unsigned W = 0; W != Workers; ++W)
    Runners.emplace_back(Vertex);
  // Feedback-tuned morsel sizing: observed per-row cost sizes the morsel
  // to the scheduler's latency budget; observed skew caps the largest
  // grab. Falls back to the static Morsels whenever feedback is absent
  // or not ripe.
  MorselOptions M = Adaptive && adapt::adaptEnvEnabled()
                        ? adapt::tunedMorselOptions(vertexPlanHash(), Morsels)
                        : Morsels;
  MorselStats Stats = morselFor(
      Pool, Count, M,
      [&Src, &PerWorker, &Parts, &Runners, PartitionSlot](
          std::size_t Begin, std::size_t End, unsigned W) {
        rebindRange(Parts[W], Src, PartitionSlot, Begin, End - Begin);
        PerWorker[W].emplace_back(Begin, Runners[W].run(Parts[W]));
      });
  // One ProfileStore merge per worker, tagged with the worker id so
  // profiles still show how stealing spread the morsels.
  for (unsigned W = 0; W != Workers; ++W)
    Runners[W].flush(W);
  Span.arg("morsels", static_cast<std::int64_t>(Stats.Morsels));
  Span.arg("steals", static_cast<std::int64_t>(Stats.Steals));

  std::vector<Tagged> All;
  All.reserve(Stats.Morsels);
  for (std::vector<Tagged> &Chunk : PerWorker)
    for (Tagged &T : Chunk)
      All.push_back(std::move(T));
  std::sort(All.begin(), All.end(),
            [](const Tagged &A, const Tagged &C) {
              return A.first < C.first;
            });
  std::vector<QueryResult> Partials;
  Partials.reserve(All.size() ? All.size() : 1);
  for (Tagged &T : All)
    Partials.push_back(std::move(T.second));
  if (Partials.empty()) // empty source: one vertex over the original
    Partials.push_back(Vertex.run(B)); // bindings (already an empty view)

  return combinePartials(Pool, std::move(Partials));
}
