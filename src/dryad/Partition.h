//===- dryad/Partition.h - Partitioned datasets ----------------*- C++ -*-===//
///
/// \file
/// Partitioning of flat buffers across vertices ("divide the data set into
/// partitions, and execute the query in parallel on each partition",
/// paper §6). Partitions hold owned copies so vertices can run with no
/// shared mutable state, mirroring a cluster where each machine holds its
/// partition on local disk.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_DRYAD_PARTITION_H
#define STENO_DRYAD_PARTITION_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace steno {
namespace dryad {

/// One partition of a flat double dataset (optionally strided points).
struct DoublePartition {
  std::vector<double> Data;
  std::int64_t Dim = 1;

  std::int64_t count() const {
    return static_cast<std::int64_t>(Data.size()) / Dim;
  }
};

/// Splits \p Flat (Count doubles) into \p NumParts near-equal contiguous
/// partitions.
inline std::vector<DoublePartition>
partitionDoubles(const std::vector<double> &Flat, unsigned NumParts) {
  assert(NumParts > 0 && "need at least one partition");
  std::vector<DoublePartition> Out(NumParts);
  std::size_t N = Flat.size();
  std::size_t Base = N / NumParts;
  std::size_t Extra = N % NumParts;
  std::size_t Pos = 0;
  for (unsigned P = 0; P != NumParts; ++P) {
    std::size_t Len = Base + (P < Extra ? 1 : 0);
    Out[P].Data.assign(Flat.begin() + Pos, Flat.begin() + Pos + Len);
    Pos += Len;
  }
  return Out;
}

/// Splits \p Flat (Count x Dim doubles) into \p NumParts partitions along
/// the point axis (points are never split across partitions).
inline std::vector<DoublePartition>
partitionPoints(const std::vector<double> &Flat, std::int64_t Dim,
                unsigned NumParts) {
  assert(NumParts > 0 && "need at least one partition");
  assert(Dim > 0 && Flat.size() % static_cast<std::size_t>(Dim) == 0 &&
         "flat buffer is not a whole number of points");
  std::int64_t Count = static_cast<std::int64_t>(Flat.size()) / Dim;
  std::vector<DoublePartition> Out(NumParts);
  std::int64_t Base = Count / NumParts;
  std::int64_t Extra = Count % NumParts;
  std::int64_t Pos = 0;
  for (unsigned P = 0; P != NumParts; ++P) {
    std::int64_t Len = Base + (static_cast<std::int64_t>(P) < Extra ? 1 : 0);
    Out[P].Dim = Dim;
    Out[P].Data.assign(Flat.begin() + Pos * Dim,
                       Flat.begin() + (Pos + Len) * Dim);
    Pos += Len;
  }
  return Out;
}

} // namespace dryad
} // namespace steno

#endif // STENO_DRYAD_PARTITION_H
