//===- dryad/Dist.h - Distributed query execution (§6) ---------*- C++ -*-===//
///
/// \file
/// The DryadLINQ-analogue engine: takes a declarative query and a set of
/// per-partition bindings, plans the homomorphic split (Plan.h), compiles
/// ONE Steno-optimized vertex program shared by all partitions, executes
/// the partition vertices on a Dryad-style job graph, and merges partials
/// in the Agg* stage. The engine measures phase timings so the Figure 14
/// benchmark can report per-iteration costs.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_DRYAD_DIST_H
#define STENO_DRYAD_DIST_H

#include "dryad/Morsel.h"
#include "dryad/Plan.h"
#include "dryad/ThreadPool.h"
#include "query/Query.h"
#include "steno/Bindings.h"
#include "steno/Result.h"
#include "steno/Steno.h"

#include <string>
#include <vector>

namespace steno {
namespace dryad {

/// Options for distributed execution.
struct DistOptions {
  /// Vertex backend: Native is Steno-optimized vertices; Interp walks the
  /// generated AST (slow; for testing without a compiler).
  steno::Backend Exec = steno::Backend::Native;
  /// Apply the §4.3 specialization before planning.
  bool Specialize = true;
  /// Analyze-phase enforcement for the vertex compile. The parallel-
  /// safety certificate is always computed regardless (it gates fan-out);
  /// this only controls diagnostics reporting/rejection in compileChain.
  analysis::Mode Analyze = analysis::modeFromEnv();
  /// Run the fact-driven plan rewriter on the vertex chain before
  /// codegen (same STENO_REWRITE default as compileQuery).
  bool Rewrite = quil::rewriteEnvEnabled();
  /// Tuning for the morsel scheduler runParallel dispatches through.
  MorselOptions Morsels;
  /// Feedback-driven morsel tuning (DESIGN.md §5j): when profiling is on
  /// and the global adapt::FeedbackStore holds ripe observations for the
  /// vertex plan, runParallel sizes morsels from the observed per-row
  /// cost and per-worker skew (adapt::tunedMorselOptions) instead of the
  /// static Morsels defaults. No effect without Profile (nothing is ever
  /// observed), under STENO_ADAPT=off, or below the minimum-sample
  /// threshold.
  bool Adaptive = true;
  /// Print the one-shot stderr warning when a query compiles into the
  /// sequential fallback. The differential fuzzer compiles thousands of
  /// deliberately-uncertifiable queries and turns this off; everything
  /// else should leave it on (the fallback is a surprise worth a line).
  bool WarnSequentialFallback = true;
  /// Profile the vertex program: every vertex run (one per partition or
  /// morsel) merges per-operator statistics into the ProfileStore under
  /// vertexPlanHash(), tagged with the executing worker's id. Under
  /// runParallel the merge happens once per worker (QueryRunner
  /// accumulates morsel deltas locally), not once per morsel.
  bool Profile = obs::profilingEnvEnabled();
  /// Vectorized batch execution for the vertex program (DESIGN.md §5i,
  /// same default and env knob as CompileOptions::Vectorize). When the
  /// vertex vectorizes, runParallel also batch-aligns morsel boundaries
  /// so every morsel runs whole batches.
  bool Vectorize = vec::vectorizeEnvEnabled();
  std::string Name = "dist_query";
};

/// PLINQ-style partitioner (paper §6): splits one set of bindings into
/// \p Parts per-partition bindings by VIEW-partitioning the source buffer
/// at \p PartitionSlot — no data is copied; each partition's binding
/// points into a contiguous range of the original buffer (whole points
/// for strided sources). Every other slot is shared as-is.
std::vector<Bindings> partitionBindings(const Bindings &B, unsigned Parts,
                                        unsigned PartitionSlot = 0);

/// One view-partition: a copy of \p B whose source slot \p Slot points at
/// elements [Begin, Begin+Len) of the original buffer (whole points for
/// strided sources; no data copied). The unit the morsel scheduler hands
/// a vertex program.
Bindings bindingRange(const Bindings &B, unsigned Slot, std::size_t Begin,
                      std::size_t Len);

/// The Agg* stage (Figure 12) as a standalone: merges in-source-order
/// per-partition partials according to \p Plan — concatenation, a
/// pairwise Fold combine tree (gated on \p Cert's associativity
/// classification, with a serial left fold as the defensive fallback),
/// a per-key merge for GroupByAggregate, or a stable k-way merge of
/// sorted runs — and applies the final result selector. Shared by
/// DistributedQuery (whose partials come from in-process vertices) and
/// the shard router (steno::shard, whose partials arrive over the
/// serve wire protocol from other processes).
QueryResult combineParallelPartials(ThreadPool &Pool,
                                    const ParallelPlan &Plan,
                                    const analysis::SafetyCertificate &Cert,
                                    std::vector<QueryResult> Partials);

/// A query compiled for partition-parallel execution. Reusable across
/// invocations with different partition bindings (so the one-off JIT cost
/// amortizes across iterations, as in the paper's k-means job).
///
/// Fan-out is gated twice: structurally by the §6 planner (the chain must
/// split into Agg_i + Agg*), and semantically by the analyzer's
/// parallel-safety certificate (the split must preserve sequential
/// meaning — no possible traps, no order-sensitive operators, no provably
/// non-associative combiner). A query failing either gate is NOT
/// rejected: it compiles into a sequential fallback — one whole-query
/// vertex — and a documented warning is printed once at compile time.
class DistributedQuery {
public:
  /// Plans and compiles \p Q. Never aborts for unparallelizable queries;
  /// they compile into the sequential fallback (see parallel()).
  static DistributedQuery compile(const query::Query &Q,
                                  const DistOptions &Options = DistOptions());

  /// Executes one vertex per element of \p PartitionBindings on \p Pool,
  /// then runs the combining stage. A sequential-fallback query accepts
  /// exactly one partition (callers that partitioned by hand must consult
  /// parallel() first) and aborts otherwise.
  QueryResult run(ThreadPool &Pool,
                  const std::vector<Bindings> &PartitionBindings) const;

  /// The multi-core PLINQ path of §6, morsel-driven: dispatches \p B's
  /// source slot \p PartitionSlot through the work-stealing scheduler
  /// (dryad/Morsel.h) as dynamically sized contiguous view-partitions —
  /// one indirect call per *morsel*, like the HomomorphicApply operator,
  /// instead of PLINQ's per-element iterator composition, but load-
  /// balanced under skew instead of barriering on the slowest static
  /// chunk. Per-morsel partials are reassembled in source order before
  /// the combine stage, so results match run() over static partitions
  /// and the sequential reference. For a sequential-fallback query this
  /// runs the whole query unpartitioned on the calling thread (same
  /// results, no fan-out). Must be called from outside \p Pool's workers.
  QueryResult runParallel(ThreadPool &Pool, const Bindings &B,
                          unsigned PartitionSlot = 0) const;

  /// One-off compile cost of the vertex program (ms).
  double compileMillis() const { return Vertex.compileMillis(); }
  /// ProfileStore key of the vertex program. The planner rewrites the
  /// chain into a per-partition vertex, so this differs from the hash of
  /// the whole-query plan compiled standalone.
  std::uint64_t vertexPlanHash() const { return Vertex.planHash(); }
  /// The generated vertex source.
  const std::string &vertexSource() const {
    return Vertex.generatedSource();
  }
  const ParallelPlan &plan() const { return Plan; }

  /// False when the query compiled into the sequential fallback.
  bool parallel() const { return !Sequential; }
  /// Why fan-out was refused (empty when parallel() is true).
  const std::string &whyNotParallel() const { return WhyNot; }
  /// The analyzer's parallel-safety certificate for the (specialized)
  /// chain.
  const analysis::SafetyCertificate &certificate() const { return Cert; }

private:
  DistributedQuery() = default;

  /// The Agg* stage over in-order partials (shared by run() and
  /// runParallel()). Fold-kind plans combine pairwise as a tree — keyed
  /// off the analyzer's associativity certificate — instead of
  /// serializing every partial through a single left fold at the join.
  QueryResult combinePartials(ThreadPool &Pool,
                              std::vector<QueryResult> Partials) const;

  ParallelPlan Plan;
  CompiledQuery Vertex;
  analysis::SafetyCertificate Cert;
  MorselOptions Morsels;
  /// Consult the FeedbackStore for morsel sizing on each runParallel
  /// (set at compile from DistOptions::Adaptive && Profile, so
  /// unprofiled queries never pay the lookup).
  bool Adaptive = false;
  bool Sequential = false;
  std::string WhyNot;
};

} // namespace dryad
} // namespace steno

#endif // STENO_DRYAD_DIST_H
