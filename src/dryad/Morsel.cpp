//===- dryad/Morsel.cpp - Work-stealing morsel scheduler -------*- C++ -*-===//

#include "dryad/Morsel.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Random.h"
#include "support/Timing.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

using namespace steno;
using namespace steno::dryad;

namespace {

/// Ranges are packed as Begin<<32 | End; one morselFor window therefore
/// covers at most 2^31 elements (larger inputs run as consecutive
/// windows, see morselFor below).
constexpr std::size_t MaxWindow = std::size_t(1) << 31;

std::uint64_t pack(std::size_t Begin, std::size_t End) {
  return (static_cast<std::uint64_t>(Begin) << 32) |
         static_cast<std::uint64_t>(End);
}

void unpack(std::uint64_t V, std::size_t &Begin, std::size_t &End) {
  Begin = static_cast<std::size_t>(V >> 32);
  End = static_cast<std::size_t>(V & 0xffffffffu);
}

struct Instruments {
  obs::Counter &Dispatched = obs::counter("dryad.morsel.dispatched");
  obs::Counter &Steals = obs::counter("dryad.morsel.steals");
  obs::Counter &FailedSteals = obs::counter("dryad.morsel.steals_failed");
  obs::Counter &Splits = obs::counter("dryad.morsel.splits");
  obs::Counter &InlineRuns = obs::counter("dryad.morsel.inline_runs");
  obs::Counter &BusyMicros = obs::counter("dryad.morsel.busy_micros");
  obs::Counter &IdleMicros = obs::counter("dryad.morsel.idle_micros");
  obs::Histogram &SizeHist = obs::histogram(
      "dryad.morsel.size_elems",
      {256, 1024, 4096, 16384, 65536, 262144, 1048576});
};

Instruments &instruments() {
  static Instruments I;
  return I;
}

/// Shared state of one in-flight morselFor window.
struct SchedulerState {
  SchedulerState(unsigned Workers, std::size_t Count,
                 const MorselOptions &Opts, const MorselBody &Body)
      : Workers(Workers), Opts(Opts), Body(Body), Remaining(Count) {
    Deques.reserve(Workers);
    for (unsigned W = 0; W != Workers; ++W)
      Deques.emplace_back();
  }

  unsigned Workers;
  const MorselOptions &Opts;
  const MorselBody &Body;
  std::vector<WorkStealDeque> Deques;
  /// Elements not yet processed; workers exit when this reaches zero.
  std::atomic<std::size_t> Remaining;
  std::atomic<std::uint64_t> Morsels{0};
  std::atomic<std::uint64_t> Steals{0};
  std::atomic<std::uint64_t> FailedSteals{0};
  std::atomic<std::uint64_t> Splits{0};
};

/// One worker's scheduling loop: pop local (LIFO) / steal (FIFO), lazily
/// split popped ranges, process morsel-sized bites, adapt the morsel size
/// toward the latency budget.
void drive(SchedulerState &S, unsigned W) {
  Instruments &Ins = instruments();
  obs::Span WorkerSpan("dryad.morsel.worker");

  std::size_t MorselSize =
      std::clamp(S.Opts.InitialMorsel, S.Opts.MinMorsel, S.Opts.MaxMorsel);
  support::SplitMix64 Rng(0x517cc1b727220a95ULL * (W + 1));
  std::uint64_t MyMorsels = 0, MySteals = 0, MyFailed = 0, MySplits = 0;
  double BusyUs = 0, IdleUs = 0;
  unsigned FailedRounds = 0;

  // Processes one owned range: keep the deque stocked for thieves by
  // pushing far halves while the range is big, then run one morsel and
  // push the remainder back (the LIFO pop returns it, so the owner stays
  // on its contiguous range — static partitioning's locality — while the
  // pushed-back tail is stealable the whole time).
  const std::size_t Align = S.Opts.BatchAlign > 1 ? S.Opts.BatchAlign : 1;
  auto processRange = [&](std::uint64_t Packed) {
    std::size_t Begin, End;
    unpack(Packed, Begin, End);
    while (Begin != End) {
      while (End - Begin > 2 * MorselSize) {
        std::size_t Mid = Begin + (End - Begin) / 2;
        // Split on a batch boundary (global index space) so both halves
        // stay batch-aligned; an unsplittable sub-batch range runs whole.
        Mid -= Mid % Align;
        if (Mid <= Begin)
          break;
        if (!S.Deques[W].push(pack(Mid, End)))
          break; // deque full: keep the whole range local
        ++MySplits;
        End = Mid;
      }
      std::size_t Take = std::min(MorselSize, End - Begin);
      if (Align != 1 && Take != End - Begin) {
        // Land the morsel end on a batch boundary; when the morsel is
        // smaller than the distance to one, extend to the next boundary
        // instead of stalling (ragged heads re-align after one morsel).
        std::size_t Rem = (Begin + Take) % Align;
        Take = Rem < Take ? Take - Rem
                          : std::min(Align - Begin % Align, End - Begin);
      }
      support::WallTimer T;
      S.Body(Begin, Begin + Take, W);
      double Us = T.seconds() * 1e6;
      BusyUs += Us;
      ++MyMorsels;
      Ins.SizeHist.observe(static_cast<double>(Take));
      S.Remaining.fetch_sub(Take, std::memory_order_acq_rel);
      Begin += Take;
      // Adapt multiplicatively toward the per-morsel latency budget,
      // damped to [0.5x, 2x] per step so one noisy measurement cannot
      // swing the size by more than one binary order of magnitude.
      if (Us > 1e-3) {
        double Ratio =
            std::clamp(S.Opts.TargetMorselMicros / Us, 0.5, 2.0);
        MorselSize = std::clamp(
            static_cast<std::size_t>(static_cast<double>(MorselSize) *
                                     Ratio),
            S.Opts.MinMorsel, S.Opts.MaxMorsel);
      }
      if (Begin != End && S.Deques[W].push(pack(Begin, End)))
        return; // tail is queued (and stealable); pop resumes it
      // Deque full: chew through the remainder inline.
    }
  };

  while (S.Remaining.load(std::memory_order_acquire) != 0) {
    std::uint64_t Packed;
    if (S.Deques[W].pop(Packed)) {
      FailedRounds = 0;
      processRange(Packed);
      continue;
    }
    // Local deque dry: steal from random victims, FIFO end (their
    // biggest, coldest range).
    bool Got = false;
    for (unsigned Tries = 0; !Got && Tries != 2 * S.Workers; ++Tries) {
      unsigned V = static_cast<unsigned>(Rng.nextBelow(S.Workers));
      if (V != W && S.Deques[V].steal(Packed))
        Got = true;
    }
    if (Got) {
      FailedRounds = 0;
      ++MySteals;
      processRange(Packed);
      continue;
    }
    ++MyFailed;
    // Nothing visible to steal but elements remain (another worker holds
    // the tail of an in-flight range — e.g. a long morsel body or a
    // deque-full remainder being chewed inline). Spinning on yield()
    // would burn a full core for the whole window, so back off
    // exponentially: yield for the first few rounds (new work usually
    // appears within microseconds), then sleep with a doubling interval
    // capped at 1ms so wake-up latency stays negligible next to the
    // per-morsel budget.
    support::WallTimer T;
    ++FailedRounds;
    if (FailedRounds <= 4) {
      std::this_thread::yield();
    } else {
      unsigned Shift = std::min(FailedRounds - 5, 5u); // 32us..1ms
      std::this_thread::sleep_for(
          std::chrono::microseconds(32u << Shift));
    }
    IdleUs += T.seconds() * 1e6;
  }

  S.Morsels.fetch_add(MyMorsels, std::memory_order_relaxed);
  S.Steals.fetch_add(MySteals, std::memory_order_relaxed);
  S.FailedSteals.fetch_add(MyFailed, std::memory_order_relaxed);
  S.Splits.fetch_add(MySplits, std::memory_order_relaxed);
  Ins.Dispatched.inc(MyMorsels);
  Ins.Steals.inc(MySteals);
  Ins.FailedSteals.inc(MyFailed);
  Ins.Splits.inc(MySplits);
  Ins.BusyMicros.inc(static_cast<std::uint64_t>(BusyUs));
  Ins.IdleMicros.inc(static_cast<std::uint64_t>(IdleUs));
  WorkerSpan.arg("worker", W);
  WorkerSpan.arg("morsels", static_cast<std::int64_t>(MyMorsels));
  WorkerSpan.arg("steals", static_cast<std::int64_t>(MySteals));
  WorkerSpan.arg("busy_us", static_cast<std::int64_t>(BusyUs));
}

/// One window (Count <= MaxWindow) of the scheduler.
MorselStats morselForWindow(ThreadPool &Pool, std::size_t Count,
                            const MorselOptions &Opts,
                            const MorselBody &Body) {
  MorselStats Stats;
  if (Count == 0)
    return Stats; // no elements: no fan-out, no Body calls

  Instruments &Ins = instruments();
  unsigned Workers = Pool.workerCount();

  // Inputs too small to amortize task submission (or a one-worker pool,
  // where there is nobody to balance against) run inline on the caller.
  if (Workers == 1 || Count <= Opts.InlineBelow) {
    Ins.InlineRuns.inc();
    Ins.SizeHist.observe(static_cast<double>(Count));
    Ins.Dispatched.inc();
    support::WallTimer T;
    Body(0, Count, 0);
    Ins.BusyMicros.inc(static_cast<std::uint64_t>(T.seconds() * 1e6));
    Stats.Morsels = 1;
    Stats.RanInline = true;
    return Stats;
  }

  obs::Span ForSpan("dryad.morsel.for");
  SchedulerState S(Workers, Count, Opts, Body);

  // Seed every deque with one contiguous shard — the uniform case then
  // degenerates to static partitioning (same locality), and stealing
  // only kicks in under skew. Seeding happens before the driver tasks
  // are submitted, so the pool's queue mutex orders these pushes before
  // any pop/steal.
  std::size_t Base = Count / Workers;
  std::size_t Extra = Count % Workers;
  std::size_t Align = Opts.BatchAlign > 1 ? Opts.BatchAlign : 1;
  std::size_t Pos = 0;
  for (unsigned W = 0; W != Workers; ++W) {
    std::size_t ShardEnd = Pos + Base + (W < Extra ? 1 : 0);
    // Shard boundaries land on batch multiples (batched bodies then see
    // whole batches); the last shard absorbs the rounding and the tail.
    if (W + 1 != Workers)
      ShardEnd -= ShardEnd % Align;
    else
      ShardEnd = Count;
    if (ShardEnd > Pos)
      S.Deques[W].push(pack(Pos, ShardEnd));
    Pos = ShardEnd;
  }

  for (unsigned W = 0; W != Workers; ++W) {
    bool Accepted = Pool.submit([&S, W] { drive(S, W); });
    if (!Accepted) {
      // Pool shutting down (callers normally never get here): drain the
      // remaining work on this thread so the contract — every element
      // processed exactly once — still holds.
      drive(S, W);
    }
  }
  Pool.wait();

  Stats.Morsels = S.Morsels.load(std::memory_order_relaxed);
  Stats.Steals = S.Steals.load(std::memory_order_relaxed);
  Stats.FailedSteals = S.FailedSteals.load(std::memory_order_relaxed);
  Stats.Splits = S.Splits.load(std::memory_order_relaxed);
  ForSpan.arg("count", static_cast<std::int64_t>(Count));
  ForSpan.arg("workers", Workers);
  ForSpan.arg("morsels", static_cast<std::int64_t>(Stats.Morsels));
  ForSpan.arg("steals", static_cast<std::int64_t>(Stats.Steals));
  return Stats;
}

} // namespace

MorselStats dryad::morselFor(ThreadPool &Pool, std::size_t Count,
                             const MorselOptions &Opts,
                             const MorselBody &Body) {
  assert(Opts.MinMorsel > 0 && Opts.MinMorsel <= Opts.MaxMorsel &&
         "bad morsel bounds");
  if (Count <= MaxWindow)
    return morselForWindow(Pool, Count, Opts, Body);
  // Ranges pack into 32-bit halves; astronomically large inputs run as
  // consecutive windows (each internally stolen-from, windows in order).
  MorselStats Total;
  for (std::size_t WinBase = 0; WinBase < Count; WinBase += MaxWindow) {
    std::size_t Len = std::min(MaxWindow, Count - WinBase);
    MorselStats S = morselForWindow(
        Pool, Len, Opts,
        [&Body, WinBase](std::size_t B, std::size_t E, unsigned W) {
          Body(WinBase + B, WinBase + E, W);
        });
    Total.Morsels += S.Morsels;
    Total.Steals += S.Steals;
    Total.FailedSteals += S.FailedSteals;
    Total.Splits += S.Splits;
    Total.RanInline = Total.RanInline || S.RanInline;
  }
  return Total;
}
