//===- dryad/ThreadPool.h - Worker pool for the job scheduler --*- C++ -*-===//
///
/// \file
/// A fixed-size worker pool. Stands in for the machines of the paper's
/// 100-node research cluster and for the PLINQ thread pool of §6; on this
/// box it provides the execution substrate for dryad::JobGraph and
/// dryad::homomorphicApply.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_DRYAD_THREADPOOL_H
#define STENO_DRYAD_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace steno {
namespace dryad {

/// Fixed pool of worker threads draining a FIFO task queue.
class ThreadPool {
public:
  /// Spawns \p Workers threads (at least one).
  explicit ThreadPool(unsigned Workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned workerCount() const { return Workers; }

  /// Enqueues \p Task for execution. Tasks must not throw. Returns false
  /// — deterministically, without enqueuing — once shutdown() has begun;
  /// a rejected task never runs, and the caller owns the fallback (run
  /// it inline, or drop it). Before this contract, a submit racing the
  /// destructor could enqueue a task after the last worker had already
  /// exited, leaving it silently unexecuted and a later wait() hung.
  bool submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished.
  void wait();

  /// Begins shutdown: every submit from this point on is rejected, the
  /// workers drain the already-accepted queue and exit. Idempotent;
  /// called by the destructor. Returns after all workers have joined.
  void shutdown();

private:
  void workerLoop();

  unsigned Workers;
  std::vector<std::thread> Threads;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkReady;
  std::condition_variable AllDone;
  unsigned Pending = 0;
  bool ShuttingDown = false;
};

} // namespace dryad
} // namespace steno

#endif // STENO_DRYAD_THREADPOOL_H
