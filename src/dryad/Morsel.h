//===- dryad/Morsel.h - Work-stealing morsel scheduler ---------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Morsel-driven parallel execution for the §6 PLINQ/Dryad paths.
///
/// The paper (and our plinq::partitionSpan) hands each worker ONE
/// contiguous partition; a skewed predicate or nested sub-query then makes
/// the whole fan-out wait on the slowest chunk at the join barrier. This
/// scheduler replaces static chunking with dynamic dispatch:
///
///  - the index space [0, Count) is pre-sharded contiguously, one shard
///    per worker, so the common (uniform) case keeps the locality of
///    static partitioning;
///  - each worker owns a Chase–Lev-style deque of index ranges. The owner
///    pushes/pops at the bottom (LIFO, cache-warm end); thieves steal from
///    the top (FIFO, largest/oldest ranges first);
///  - a worker popping a range larger than its current morsel size splits
///    it lazily — the far half goes back on the deque (stealable), the
///    near half is processed in morsel-sized bites;
///  - morsel size adapts per worker toward a fixed per-morsel latency
///    budget (TargetMorselMicros), so cheap fused loop bodies get big
///    morsels (low dispatch overhead) and expensive per-element work gets
///    small ones (fine-grained balancing);
///  - an idle worker steals from random victims until the global
///    remaining-element count reaches zero, backing off exponentially
///    (yield, then capped sleeps) when repeated steal rounds find
///    nothing, so a long in-flight morsel elsewhere does not leave the
///    rest of the pool spinning at 100%.
///
/// Because every morsel is a contiguous [Begin, End) range, order-
/// sensitive consumers (AsOrdered toVector, Concat/MergeSorted combines)
/// reassemble deterministically by tagging outputs with Begin — results
/// are identical to sequential execution no matter how stealing
/// interleaved.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_DRYAD_MORSEL_H
#define STENO_DRYAD_MORSEL_H

#include "dryad/ThreadPool.h"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace steno {
namespace dryad {

/// A single-owner, multi-thief deque of uint64 payloads (packed index
/// ranges). Chase–Lev shape: the owner pushes and pops at the bottom
/// (LIFO), thieves CAS the top (FIFO). Fixed capacity; push reports
/// overflow instead of growing so callers can degrade gracefully.
///
/// Implementation note: the buffer cells are themselves atomics and the
/// bottom/top indices use seq_cst on the racy owner-pop vs. steal edge
/// (instead of the classic standalone fences), which keeps the algorithm
/// correct under the C++ memory model *and* exactly analyzable by
/// ThreadSanitizer — the scheduler stress test runs TSan-clean in CI.
class WorkStealDeque {
public:
  /// \p Capacity must be a power of two (Mask = Capacity - 1 relies on
  /// it; anything else silently corrupts cell indexing).
  explicit WorkStealDeque(std::size_t Capacity = 256)
      : Mask(Capacity - 1), Cells(Capacity) {
    assert(Capacity != 0 && (Capacity & (Capacity - 1)) == 0 &&
           "deque capacity must be a power of two");
  }

  WorkStealDeque(WorkStealDeque &&Other) noexcept
      : Mask(Other.Mask), Cells(Other.Cells.size()),
        Top(Other.Top.load(std::memory_order_relaxed)),
        Bottom(Other.Bottom.load(std::memory_order_relaxed)) {
    for (std::size_t I = 0; I != Cells.size(); ++I)
      Cells[I].store(Other.Cells[I].load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  }
  WorkStealDeque(const WorkStealDeque &) = delete;
  WorkStealDeque &operator=(const WorkStealDeque &) = delete;

  /// Owner only. False when full (caller processes the range inline).
  bool push(std::uint64_t V) {
    std::int64_t B = Bottom.load(std::memory_order_relaxed);
    std::int64_t T = Top.load(std::memory_order_acquire);
    if (B - T >= static_cast<std::int64_t>(Cells.size()))
      return false;
    Cells[static_cast<std::size_t>(B) & Mask].store(
        V, std::memory_order_relaxed);
    // Release: a thief that acquires this Bottom sees the cell write.
    Bottom.store(B + 1, std::memory_order_release);
    return true;
  }

  /// Owner only; LIFO. False when empty (or lost the last element to a
  /// concurrent thief).
  bool pop(std::uint64_t &V) {
    std::int64_t B = Bottom.load(std::memory_order_relaxed) - 1;
    // seq_cst store/load pair: the Bottom decrement must be globally
    // ordered against the thief's Top bump (the classic fence, folded
    // into the accesses).
    Bottom.store(B, std::memory_order_seq_cst);
    std::int64_t T = Top.load(std::memory_order_seq_cst);
    if (T > B) { // empty
      Bottom.store(B + 1, std::memory_order_relaxed);
      return false;
    }
    V = Cells[static_cast<std::size_t>(B) & Mask].load(
        std::memory_order_relaxed);
    if (T == B) {
      // Last element: race the thieves for it via Top.
      if (!Top.compare_exchange_strong(T, T + 1,
                                       std::memory_order_seq_cst,
                                       std::memory_order_relaxed)) {
        Bottom.store(B + 1, std::memory_order_relaxed);
        return false; // a thief got it
      }
      Bottom.store(B + 1, std::memory_order_relaxed);
    }
    return true;
  }

  /// Any thread; FIFO. False when empty or when the CAS lost a race
  /// (caller should try another victim).
  bool steal(std::uint64_t &V) {
    std::int64_t T = Top.load(std::memory_order_seq_cst);
    std::int64_t B = Bottom.load(std::memory_order_seq_cst);
    if (T >= B)
      return false;
    V = Cells[static_cast<std::size_t>(T) & Mask].load(
        std::memory_order_relaxed);
    return Top.compare_exchange_strong(T, T + 1,
                                       std::memory_order_seq_cst,
                                       std::memory_order_relaxed);
  }

  /// Racy size estimate (monitoring only).
  std::size_t sizeApprox() const {
    std::int64_t B = Bottom.load(std::memory_order_relaxed);
    std::int64_t T = Top.load(std::memory_order_relaxed);
    return B > T ? static_cast<std::size_t>(B - T) : 0;
  }

private:
  std::size_t Mask;
  std::vector<std::atomic<std::uint64_t>> Cells;
  alignas(64) std::atomic<std::int64_t> Top{0};
  alignas(64) std::atomic<std::int64_t> Bottom{0};
};

/// Tuning knobs for one morselFor invocation.
struct MorselOptions {
  /// Morsel size bounds, in elements.
  std::size_t MinMorsel = 256;
  std::size_t MaxMorsel = std::size_t(1) << 17; // 128k elements
  /// First morsel of every worker (then adaptive).
  std::size_t InitialMorsel = 4096;
  /// Per-morsel latency budget the adaptive sizing steers toward. 100us
  /// keeps dispatch overhead under ~1% for bodies as cheap as a fused
  /// sum loop while still rebalancing ~10^4 times per second.
  double TargetMorselMicros = 100.0;
  /// Inputs at most this size run inline on the calling thread: a
  /// fan-out that cannot possibly amortize its submission cost is not
  /// performed at all (see plinq.partitionSpan's old empty-partition
  /// overhead).
  std::size_t InlineBelow = 2048;
  /// Align seed shards, lazy-split midpoints and morsel boundaries to
  /// whole multiples of this (typically the vectorized batch size, so a
  /// batched body runs full batches with at most one ragged tail per
  /// range instead of one per morsel). 1 disables alignment. Best-effort:
  /// the final tail of a range is always dispatched whatever its length.
  std::size_t BatchAlign = 1;
};

/// What one morselFor invocation did (also mirrored into obs metrics).
struct MorselStats {
  std::uint64_t Morsels = 0;      ///< Body invocations.
  std::uint64_t Steals = 0;       ///< Ranges taken from another worker.
  std::uint64_t FailedSteals = 0; ///< Empty/contended steal attempts.
  std::uint64_t Splits = 0;       ///< Lazy range splits pushed back.
  bool RanInline = false;         ///< Took the small-input inline path.
};

/// The morsel body: process elements [Begin, End). \p Worker identifies
/// the executing worker (dense in [0, workerCount)), for per-worker
/// accumulators. Bodies must not throw and must tolerate running
/// concurrently with other ranges.
using MorselBody =
    std::function<void(std::size_t Begin, std::size_t End, unsigned Worker)>;

/// Runs \p Body over every element of [0, Count) exactly once, dynamically
/// load-balanced across \p Pool's workers with work stealing. Blocks until
/// all elements are processed. Ranges handed to \p Body are contiguous and
/// disjoint; their union is [0, Count).
MorselStats morselFor(ThreadPool &Pool, std::size_t Count,
                      const MorselOptions &Opts, const MorselBody &Body);

} // namespace dryad
} // namespace steno

#endif // STENO_DRYAD_MORSEL_H
