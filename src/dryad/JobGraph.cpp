//===- dryad/JobGraph.cpp -------------------------------------*- C++ -*-===//

#include "dryad/JobGraph.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <mutex>

using namespace steno;
using namespace steno::dryad;

JobGraph::VertexId JobGraph::addVertex(std::string Name,
                                       std::function<void()> Work,
                                       std::vector<VertexId> Deps) {
  VertexId Id = Vertices.size();
  Vertex V;
  V.Name = std::move(Name);
  V.Work = std::move(Work);
  V.UnmetDeps = static_cast<unsigned>(Deps.size());
  Vertices.push_back(std::move(V));
  for (VertexId Dep : Deps) {
    assert(Dep < Id && "dependency on a not-yet-added vertex");
    Vertices[Dep].Dependents.push_back(Id);
  }
  return Id;
}

void JobGraph::run(ThreadPool &Pool) {
  if (Vertices.empty())
    return;

  static obs::Counter &VerticesRun = obs::counter("dryad.vertices.run");
  obs::Span GraphSpan("dryad.graph.run");
  GraphSpan.arg("vertices", static_cast<std::int64_t>(Vertices.size()));

  std::mutex Mutex;
  std::condition_variable Done;
  std::size_t Remaining = Vertices.size();

  // The scheduler: when a vertex completes, decrement its dependents'
  // unmet-dependency counters and submit any that become ready.
  std::function<void(VertexId)> Schedule = [&](VertexId Id) {
    auto Run = [&, Id] {
      {
        // Per-vertex span, named after the vertex so the trace shows
        // which partition/stage ran where (paper §6's vertex programs).
        obs::Span VertexSpan(obs::tracingEnabled()
                                 ? "dryad.vertex:" + Vertices[Id].Name
                                 : std::string());
        Vertices[Id].Work();
      }
      VerticesRun.inc();
      std::vector<VertexId> NowReady;
      {
        std::unique_lock<std::mutex> Lock(Mutex);
        for (VertexId Dep : Vertices[Id].Dependents)
          if (--Vertices[Dep].UnmetDeps == 0)
            NowReady.push_back(Dep);
        if (--Remaining == 0)
          Done.notify_all();
      }
      for (VertexId Ready : NowReady)
        Schedule(Ready);
    };
    if (!Pool.submit(Run))
      Run(); // pool shutting down: finish the graph on this thread
  };

  std::vector<VertexId> Roots;
  for (VertexId Id = 0; Id != Vertices.size(); ++Id)
    if (Vertices[Id].UnmetDeps == 0)
      Roots.push_back(Id);
  assert(!Roots.empty() && "job graph has no root vertices");

  for (VertexId Id : Roots)
    Schedule(Id);

  std::unique_lock<std::mutex> Lock(Mutex);
  Done.wait(Lock, [&] { return Remaining == 0; });
}
