//===- dryad/ThreadPool.cpp -----------------------------------*- C++ -*-===//

#include "dryad/ThreadPool.h"

#include <cassert>

using namespace steno;
using namespace steno::dryad;

ThreadPool::ThreadPool(unsigned Workers)
    : Workers(Workers == 0 ? 1 : Workers) {
  Threads.reserve(this->Workers);
  for (unsigned I = 0; I != this->Workers; ++I)
    Threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkReady.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    assert(!ShuttingDown && "submit after shutdown");
    Queue.push_back(std::move(Task));
    ++Pending;
  }
  WorkReady.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return Pending == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkReady.wait(Lock,
                     [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty())
        return; // shutting down
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      --Pending;
      if (Pending == 0)
        AllDone.notify_all();
    }
  }
}
