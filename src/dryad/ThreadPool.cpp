//===- dryad/ThreadPool.cpp -----------------------------------*- C++ -*-===//

#include "dryad/ThreadPool.h"
#include "obs/Metrics.h"
#include "support/Timing.h"

#include <cassert>

using namespace steno;
using namespace steno::dryad;

ThreadPool::ThreadPool(unsigned Workers)
    : Workers(Workers == 0 ? 1 : Workers) {
  Threads.reserve(this->Workers);
  for (unsigned I = 0; I != this->Workers; ++I)
    Threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkReady.notify_all();
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();
}

bool ThreadPool::submit(std::function<void()> Task) {
  static obs::Counter &Submitted = obs::counter("dryad.tasks.submitted");
  static obs::Counter &Rejected =
      obs::counter("dryad.tasks.rejected_shutdown");
  static obs::Gauge &QueueDepth = obs::gauge("dryad.queue.depth");
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    if (ShuttingDown) {
      // Deterministic rejection: the task is never enqueued, so it can
      // never race the worker join and be silently dropped mid-drain.
      Rejected.inc();
      return false;
    }
    Queue.push_back(std::move(Task));
    ++Pending;
  }
  Submitted.inc();
  QueueDepth.add(1);
  WorkReady.notify_one();
  return true;
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return Pending == 0; });
}

void ThreadPool::workerLoop() {
  // Busy time across all workers; utilization over a window is
  // busy_micros / (wall micros * workerCount()).
  static obs::Counter &Completed = obs::counter("dryad.tasks.completed");
  static obs::Counter &BusyMicros =
      obs::counter("dryad.worker.busy_micros");
  static obs::Gauge &QueueDepth = obs::gauge("dryad.queue.depth");
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkReady.wait(Lock,
                     [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty())
        return; // shutting down
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    QueueDepth.sub(1);
    support::WallTimer Timer;
    Task();
    Completed.inc();
    BusyMicros.inc(static_cast<std::uint64_t>(Timer.seconds() * 1e6));
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      --Pending;
      if (Pending == 0)
        AllDone.notify_all();
    }
  }
}
