//===- dryad/JobGraph.h - Task dependency graph ----------------*- C++ -*-===//
///
/// \file
/// The Dryad substrate (Isard et al., EuroSys 2007, as used by paper §1 and
/// §6): a directed acyclic graph of vertices, each executing a unit of
/// work on a partition of the data, scheduled onto a worker pool once all
/// of its dependencies have completed. DryadLINQ compiles queries into
/// such graphs; dryad::runDistributed in this repo does the same with
/// Steno-optimized vertex programs.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_DRYAD_JOBGRAPH_H
#define STENO_DRYAD_JOBGRAPH_H

#include "dryad/ThreadPool.h"

#include <functional>
#include <string>
#include <vector>

namespace steno {
namespace dryad {

/// A DAG of named work items. Build with addVertex, then run once.
class JobGraph {
public:
  using VertexId = std::size_t;

  /// Adds a vertex executing \p Work after every vertex in \p Deps has
  /// finished. Returns its id for use in later Deps lists.
  VertexId addVertex(std::string Name, std::function<void()> Work,
                     std::vector<VertexId> Deps = {});

  std::size_t vertexCount() const { return Vertices.size(); }

  /// Executes the whole graph on \p Pool; returns when every vertex has
  /// completed. The graph must be acyclic (guaranteed by construction:
  /// Deps reference existing vertices only) and may be run only once.
  void run(ThreadPool &Pool);

private:
  struct Vertex {
    std::string Name;
    std::function<void()> Work;
    std::vector<VertexId> Dependents;
    unsigned UnmetDeps = 0;
  };

  std::vector<Vertex> Vertices;
};

} // namespace dryad
} // namespace steno

#endif // STENO_DRYAD_JOBGRAPH_H
