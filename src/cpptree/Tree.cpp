//===- cpptree/Tree.cpp ---------------------------------------*- C++ -*-===//

#include "cpptree/Tree.h"

#include <cassert>

using namespace steno;
using namespace steno::cpptree;

StmtRef Stmt::region() {
  auto S = std::make_shared<Stmt>();
  S->K = StmtKind::Region;
  return S;
}

StmtRef Stmt::declareLocal(std::string Name, expr::TypeRef Ty,
                           expr::ExprRef Init) {
  assert(Init && "declaration needs an initializer");
  auto S = std::make_shared<Stmt>();
  S->K = StmtKind::DeclareLocal;
  S->Name = std::move(Name);
  S->Ty = std::move(Ty);
  S->E = std::move(Init);
  return S;
}

StmtRef Stmt::declareSinkView(std::string Name, std::string SinkName) {
  auto S = std::make_shared<Stmt>();
  S->K = StmtKind::DeclareSinkView;
  S->Name = std::move(Name);
  S->SlotVar = std::move(SinkName);
  return S;
}

StmtRef Stmt::assign(std::string Name, expr::ExprRef Value) {
  assert(Value && "assignment needs a value");
  auto S = std::make_shared<Stmt>();
  S->K = StmtKind::Assign;
  S->Name = std::move(Name);
  S->E = std::move(Value);
  return S;
}

StmtRef Stmt::ifThen(expr::ExprRef Cond, StmtList Then) {
  assert(Cond && Cond->type()->isBool() && "if condition must be bool");
  auto S = std::make_shared<Stmt>();
  S->K = StmtKind::If;
  S->E = std::move(Cond);
  S->Body = std::move(Then);
  return S;
}

StmtRef Stmt::continueStmt() {
  auto S = std::make_shared<Stmt>();
  S->K = StmtKind::Continue;
  return S;
}

StmtRef Stmt::breakStmt() {
  auto S = std::make_shared<Stmt>();
  S->K = StmtKind::Break;
  return S;
}

StmtRef Stmt::loop(LoopInfo Info) {
  auto S = std::make_shared<Stmt>();
  S->K = StmtKind::Loop;
  S->Loop = std::move(Info);
  return S;
}

StmtRef Stmt::declareSink(std::string Name, SinkDecl Decl) {
  auto S = std::make_shared<Stmt>();
  S->K = StmtKind::DeclareSink;
  S->Name = std::move(Name);
  S->Sink = std::move(Decl);
  return S;
}

StmtRef Stmt::sinkGroupPut(std::string SinkName, expr::ExprRef Key,
                           expr::ExprRef Value) {
  auto S = std::make_shared<Stmt>();
  S->K = StmtKind::SinkGroupPut;
  S->Name = std::move(SinkName);
  S->E = std::move(Key);
  S->E2 = std::move(Value);
  return S;
}

StmtRef Stmt::sinkGroupAggUpdate(std::string SinkName, expr::ExprRef Key,
                                 expr::ExprRef Seed, std::string SlotVar,
                                 expr::ExprRef Update) {
  auto S = std::make_shared<Stmt>();
  S->K = StmtKind::SinkGroupAggUpdate;
  S->Name = std::move(SinkName);
  S->E = std::move(Key);
  S->E2 = std::move(Seed);
  S->SlotVar = std::move(SlotVar);
  S->E3 = std::move(Update);
  return S;
}

StmtRef Stmt::sinkVecPush(std::string SinkName, expr::ExprRef Elem) {
  auto S = std::make_shared<Stmt>();
  S->K = StmtKind::SinkVecPush;
  S->Name = std::move(SinkName);
  S->E = std::move(Elem);
  return S;
}

StmtRef Stmt::sortSinkVec(std::string SinkName, expr::TypeRef ElemType,
                          expr::Lambda KeyFn, bool Descending) {
  auto S = std::make_shared<Stmt>();
  S->K = StmtKind::SortSinkVec;
  S->Name = std::move(SinkName);
  S->Ty = std::move(ElemType);
  S->KeyFn = std::move(KeyFn);
  S->Descending = Descending;
  return S;
}

StmtRef Stmt::emit(expr::ExprRef Elem) {
  assert(Elem && "emit needs an element");
  auto S = std::make_shared<Stmt>();
  S->K = StmtKind::Emit;
  S->E = std::move(Elem);
  return S;
}

StmtRef Stmt::profileCount(unsigned Slot) {
  auto S = std::make_shared<Stmt>();
  S->K = StmtKind::ProfileCount;
  S->ProfSlot = Slot;
  return S;
}

StmtRef Stmt::profileTimed(unsigned OpIndex, StmtList Body) {
  auto S = std::make_shared<Stmt>();
  S->K = StmtKind::ProfileTimed;
  S->ProfSlot = OpIndex;
  S->Body = std::move(Body);
  return S;
}
