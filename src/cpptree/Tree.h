//===- cpptree/Tree.h - Object model of generated loop code ----*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CodeDOM analogue (paper §3.2): an object model for the small subset
/// of C++ that Steno generates — declarations, loops, conditionals,
/// assignments, sink operations and result emission. The code-generator
/// automaton builds this AST; the cpptree printer renders it to compilable
/// C++ for the native JIT backend, and the interp module executes it
/// directly for the portable backend. Expressions inside statements reuse
/// expr::Expr, with generated local variables represented as Param nodes
/// bearing their generated names — so the same tree prints and evaluates.
///
/// Insertion-point regions (the α/μ/ω pointers of Figure 5, and their
/// stack of Figure 9) are modelled with Region statements: a Region is an
/// inline, append-only statement list spliced transparently into its
/// parent, so "insert at α" is "append to the α Region's list" and never
/// disturbs previously inserted code.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_CPPTREE_TREE_H
#define STENO_CPPTREE_TREE_H

#include "expr/Expr.h"
#include "expr/Lambda.h"
#include "query/Query.h"

#include <memory>
#include <string>
#include <vector>

namespace steno {
namespace cpptree {

/// The intermediate collections a query may build (paper Table 1's Sink
/// class and §4.3's specialized sink).
enum class SinkKind {
  Group,    ///< int64 key -> bag of doubles, insertion-ordered.
  GroupAgg, ///< int64 key -> partial accumulator (the §4.3 sink).
  Vec       ///< flat vector of elements (ToArray / OrderBy buffer).
};

/// Declaration payload for a sink object.
struct SinkDecl {
  SinkKind Kind = SinkKind::Vec;
  /// Element type for Vec sinks.
  expr::TypeRef ElemType;
  /// Accumulator type for GroupAgg sinks.
  expr::TypeRef AccType;
  /// Dense GroupAgg sinks: key-range bound and per-slot seed, evaluated
  /// at declaration time. Null for hash sinks.
  expr::ExprRef DenseKeys;
  expr::ExprRef DenseSeed;

  bool isDense() const { return DenseKeys != nullptr; }
};

struct Stmt;
using StmtRef = std::shared_ptr<Stmt>;
using StmtList = std::vector<StmtRef>;

enum class StmtKind {
  Region,             ///< Transparent inline sub-list (insertion region).
  DeclareLocal,       ///< T name = expr;
  DeclareSinkView,    ///< VecView name{sink.data(), sink.size()}; — the
                      ///< Figure 10(b) "element = sink" case.
  Assign,             ///< name = expr;
  If,                 ///< if (expr) { ... }
  Continue,           ///< continue;
  Break,              ///< break;
  Loop,               ///< A counted loop over a source or a sink.
  DeclareSink,        ///< Sink object declaration (loop prelude).
  SinkGroupPut,       ///< sink.put(key, value);
  SinkGroupAggUpdate, ///< auto &s = sink.slot(key, seed); s = update;
  SinkVecPush,        ///< sink.push_back(elem);
  SortSinkVec,        ///< stable_sort of a Vec sink by an inlined key.
  Emit,               ///< Emit an element/scalar row to the caller.
  ProfileCount,       ///< ++prof_c_[slot]; — a profile row counter bump.
  ProfileTimed        ///< RAII-timed statement run: a ProfTimer charging
                      ///< prof_ns_[slot] is live across Body, stopping at
                      ///< the end of Body or on any continue/break out of
                      ///< it. Body is NOT a C++ scope: declarations inside
                      ///< stay visible to following statements.
};

/// What a Loop statement iterates.
enum class LoopKind {
  Source,       ///< A query::SourceDesc (array / range / vec expression).
  GroupSink,    ///< Groups of a Group sink: elem = Pair(key, VecView).
  GroupAggSink, ///< Entries of a GroupAgg sink: declares key + acc vars.
  VecSink       ///< Elements of a Vec sink.
};

/// Loop header description. The loop declares its index variable and
/// (depending on the kind) the element/key/accumulator variables visible
/// in its body.
struct LoopInfo {
  LoopKind Kind = LoopKind::Source;
  query::SourceDesc Src; ///< For Source loops.
  std::string SinkName;  ///< For sink loops.
  SinkDecl Sink;         ///< Decl of that sink (typing).
  std::string IndexVar;
  std::string BoundVar;  ///< Temp holding the trip count (Range/VecExpr).
  std::string VecVar;    ///< Temp holding the VecView (VecExpr sources).
  std::string ElemVar;   ///< Declared element variable (not GroupAggSink).
  expr::TypeRef ElemType;
  std::string KeyVar;    ///< GroupAggSink loops: int64 key variable.
  std::string AccVar;    ///< GroupAggSink loops: accumulator variable.
};

/// One generated statement. A small tagged struct rather than a class
/// hierarchy: the printer and the interpreter switch over K.
struct Stmt {
  StmtKind K = StmtKind::Region;

  /// Region contents / If-then branch / Loop body.
  StmtList Body;

  /// DeclareLocal, Assign, SinkGroupAggUpdate slot, DeclareSinkView,
  /// DeclareSink, SinkGroupPut, SinkVecPush, SortSinkVec: target name.
  std::string Name;
  /// DeclareLocal: declared type.
  expr::TypeRef Ty;
  /// Primary expression: init / value / condition / group key / emitted
  /// element.
  expr::ExprRef E;
  /// Secondary expression: SinkGroupPut value, SinkGroupAggUpdate seed.
  expr::ExprRef E2;
  /// Tertiary expression: SinkGroupAggUpdate update (references SlotVar).
  expr::ExprRef E3;
  /// SinkGroupAggUpdate: the name of the accumulator reference variable.
  std::string SlotVar;

  LoopInfo Loop;
  SinkDecl Sink;

  /// SortSinkVec: key selector (unary lambda over the element type) and
  /// direction.
  expr::Lambda KeyFn;
  bool Descending = false;

  /// ProfileCount: counter slot index (2k = op k rows in, 2k+1 = rows
  /// out). ProfileTimed: op index k charged to prof_ns_[k].
  unsigned ProfSlot = 0;

  //===--------------------------------------------------------------===//
  // Factories
  //===--------------------------------------------------------------===//

  static StmtRef region();
  static StmtRef declareLocal(std::string Name, expr::TypeRef Ty,
                              expr::ExprRef Init);
  static StmtRef declareSinkView(std::string Name, std::string SinkName);
  static StmtRef assign(std::string Name, expr::ExprRef Value);
  static StmtRef ifThen(expr::ExprRef Cond, StmtList Then);
  static StmtRef continueStmt();
  static StmtRef breakStmt();
  static StmtRef loop(LoopInfo Info);
  static StmtRef declareSink(std::string Name, SinkDecl Decl);
  static StmtRef sinkGroupPut(std::string SinkName, expr::ExprRef Key,
                              expr::ExprRef Value);
  static StmtRef sinkGroupAggUpdate(std::string SinkName, expr::ExprRef Key,
                                    expr::ExprRef Seed, std::string SlotVar,
                                    expr::ExprRef Update);
  static StmtRef sinkVecPush(std::string SinkName, expr::ExprRef Elem);
  static StmtRef sortSinkVec(std::string SinkName, expr::TypeRef ElemType,
                             expr::Lambda KeyFn, bool Descending);
  static StmtRef emit(expr::ExprRef Elem);
  static StmtRef profileCount(unsigned Slot);
  static StmtRef profileTimed(unsigned OpIndex, StmtList Body);
};

/// Static descriptor of one profiled operator: display label, loop
/// nesting depth (tree indentation) and whether a nanosecond timer is
/// attached. Plain data so cpptree stays independent of the obs layer;
/// the steno facade converts these into an obs::PlanDesc.
struct ProfOp {
  std::string Label;
  unsigned Depth = 0;
  bool Timed = false;
  /// Stable identity of the operator's defining lambda (expr::hashLambda
  /// of a Where predicate, 0 otherwise). Lets profile consumers match an
  /// observed selectivity back to a specific predicate even after the
  /// plan rewriter permutes adjacent filters.
  std::uint64_t OpId = 0;
};

/// A whole generated query body.
struct Program {
  /// Entry symbol name (C identifier).
  std::string Name = "steno_query";
  StmtList Body;
  /// Scalar result type, or element type for collection results.
  expr::TypeRef ResultType;
  bool ScalarResult = false;
  /// Profiled operators, in instrumentation order; op k owns counter
  /// slots 2k/2k+1 and nanos slot k. Empty unless the generator ran with
  /// GenOptions::Profile.
  std::vector<ProfOp> ProfOps;
};

} // namespace cpptree
} // namespace steno

#endif // STENO_CPPTREE_TREE_H
