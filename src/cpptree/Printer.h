//===- cpptree/Printer.h - Render generated AST to C++ source --*- C++ -*-===//
///
/// \file
/// Renders a cpptree::Program into a self-contained C++ translation unit
/// exposing one extern "C" entry point
///
///   extern "C" void <name>(const steno::rt::Captures *Caps_,
///                          steno::rt::Emitter *Out_);
///
/// which the JIT backend compiles into a shared object (paper §3.3). All
/// runtime support (VecView, Pair, the sink classes, emitRow) lives in
/// steno/Rt.h, which the generated source includes.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_CPPTREE_PRINTER_H
#define STENO_CPPTREE_PRINTER_H

#include "cpptree/Tree.h"

#include <set>
#include <string>

namespace steno {
namespace cpptree {

/// Slots a program touches; used to validate bindings before running.
struct SlotUsage {
  std::set<unsigned> SourceSlots;
  std::set<unsigned> ValueSlots;
};

/// Computes the source/capture slots referenced anywhere in \p P.
SlotUsage scanSlots(const Program &P);

/// Renders \p P as a complete C++ source file.
std::string printProgram(const Program &P);

} // namespace cpptree
} // namespace steno

#endif // STENO_CPPTREE_PRINTER_H
