//===- query/Query.cpp ----------------------------------------*- C++ -*-===//

#include "query/Query.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace steno;
using namespace steno::query;
using expr::Lambda;
using expr::Type;
using expr::TypeRef;

TypeRef SourceDesc::elemType() const {
  switch (Kind) {
  case SourceKind::DoubleArray:
  case SourceKind::VecExpr:
    return Type::doubleTy();
  case SourceKind::Int64Array:
  case SourceKind::Range:
    return Type::int64Ty();
  case SourceKind::PointArray:
    return Type::vecTy();
  }
  stenoUnreachable("bad SourceKind");
}

bool QueryNode::isAggregate() const {
  switch (Kind) {
  case OpKind::Aggregate:
  case OpKind::Sum:
  case OpKind::Min:
  case OpKind::Max:
  case OpKind::Count:
  case OpKind::Average:
  case OpKind::Any:
  case OpKind::All:
  case OpKind::FirstOrDefault:
  case OpKind::Contains:
    return true;
  default:
    return false;
  }
}

bool QueryNode::isSink() const {
  switch (Kind) {
  case OpKind::GroupBy:
  case OpKind::GroupByAggregate:
  case OpKind::OrderBy:
  case OpKind::ToArray:
    return true;
  default:
    return false;
  }
}

const TypeRef &Query::resultType() const {
  assert(Last && "resultType() of invalid query");
  return Last->resultType();
}

bool Query::scalarResult() const {
  assert(Last && "scalarResult() of invalid query");
  return Last->isAggregate();
}

const TypeRef &Query::elemType() const {
  assert(Last && "operator applied to invalid query");
  assert(!Last->isAggregate() &&
         "cannot extend a query past its aggregate");
  return Last->resultType();
}

std::vector<QueryNodeRef> Query::chain() const {
  std::vector<QueryNodeRef> Out;
  for (QueryNodeRef N = Last; N; N = N->upstream())
    Out.push_back(N);
  std::reverse(Out.begin(), Out.end());
  return Out;
}

namespace steno {
namespace query {

/// Out-of-line factory with friend access to QueryNode's private fields.
class QueryNodeFactory {
public:
  struct Fields {
    SourceDesc Src;
    Lambda Fn;
    Lambda Fn2;
    Lambda Fn3;
    Lambda Fn4;
    expr::ExprRef Arg;
    expr::ExprRef Arg2;
    QueryNodeRef Nested;
    std::string OuterParam;
    TypeRef OuterParamTy;
  };

  static QueryNodeRef make(OpKind Kind, QueryNodeRef Upstream, Fields F,
                           TypeRef Result) {
    auto *N = new QueryNode();
    N->Kind = Kind;
    N->Upstream = std::move(Upstream);
    N->Src = std::move(F.Src);
    N->Fn = std::move(F.Fn);
    N->Fn2 = std::move(F.Fn2);
    N->Fn3 = std::move(F.Fn3);
    N->Fn4 = std::move(F.Fn4);
    N->Arg = std::move(F.Arg);
    N->Arg2 = std::move(F.Arg2);
    N->Nested = std::move(F.Nested);
    N->OuterParam = std::move(F.OuterParam);
    N->OuterParamTy = std::move(F.OuterParamTy);
    N->Result = std::move(Result);
    return QueryNodeRef(N);
  }
};

} // namespace query
} // namespace steno

using Fields = QueryNodeFactory::Fields;

static QueryNodeRef makeNode(OpKind Kind, QueryNodeRef Upstream, Fields F,
                             TypeRef Result) {
  return QueryNodeFactory::make(Kind, std::move(Upstream), std::move(F),
                                std::move(Result));
}

//===----------------------------------------------------------------===//
// Sources
//===----------------------------------------------------------------===//

static Query makeSourceQuery(SourceDesc Src) {
  TypeRef Elem = Src.elemType();
  Fields F;
  F.Src = std::move(Src);
  return Query(
      makeNode(OpKind::Source, nullptr, std::move(F), std::move(Elem)));
}

Query Query::doubleArray(unsigned Slot) {
  SourceDesc S;
  S.Kind = SourceKind::DoubleArray;
  S.Slot = Slot;
  return makeSourceQuery(std::move(S));
}

Query Query::int64Array(unsigned Slot) {
  SourceDesc S;
  S.Kind = SourceKind::Int64Array;
  S.Slot = Slot;
  return makeSourceQuery(std::move(S));
}

Query Query::pointArray(unsigned Slot) {
  SourceDesc S;
  S.Kind = SourceKind::PointArray;
  S.Slot = Slot;
  return makeSourceQuery(std::move(S));
}

Query Query::range(expr::dsl::E Start, expr::dsl::E Count) {
  assert(Start.type()->isInt64() && Count.type()->isInt64() &&
         "range bounds must be int64");
  SourceDesc S;
  S.Kind = SourceKind::Range;
  S.Start = Start.node();
  S.CountE = Count.node();
  return makeSourceQuery(std::move(S));
}

Query Query::overVec(expr::dsl::E Vec) {
  assert(Vec.type()->isVec() && "overVec needs a vec expression");
  SourceDesc S;
  S.Kind = SourceKind::VecExpr;
  S.Vec = Vec.node();
  return makeSourceQuery(std::move(S));
}

//===----------------------------------------------------------------===//
// Composable operators
//===----------------------------------------------------------------===//

Query Query::select(Lambda Fn) const {
  assert(Fn.arity() == 1 && "select lambda takes one parameter");
  assert(expr::sameType(Fn.param(0).Ty, elemType()) &&
         "select lambda parameter type mismatch");
  TypeRef Out = Fn.resultType();
  Fields F;
  F.Fn = std::move(Fn);
  return Query(makeNode(OpKind::Select, Last, std::move(F), std::move(Out)));
}

Query Query::selectNested(const expr::dsl::E &Outer,
                          const Query &Nested) const {
  assert(Outer.node()->kind() == expr::ExprKind::Param &&
         "outer binder must be a param() handle");
  assert(expr::sameType(Outer.type(), elemType()) &&
         "outer binder type must match element type");
  assert(Nested.valid() && Nested.scalarResult() &&
         "selectNested needs a scalar nested query");
  TypeRef Out = Nested.resultType();
  Fields F;
  F.Nested = Nested.node();
  F.OuterParam = Outer.node()->paramName();
  F.OuterParamTy = Outer.type();
  return Query(
      makeNode(OpKind::SelectNested, Last, std::move(F), std::move(Out)));
}

Query Query::where(Lambda Pred) const {
  assert(Pred.arity() == 1 && "where lambda takes one parameter");
  assert(expr::sameType(Pred.param(0).Ty, elemType()) &&
         "where lambda parameter type mismatch");
  assert(Pred.resultType()->isBool() && "where lambda must return bool");
  TypeRef Out = elemType();
  Fields F;
  F.Fn = std::move(Pred);
  return Query(makeNode(OpKind::Where, Last, std::move(F), std::move(Out)));
}

Query Query::whereNested(const expr::dsl::E &Outer,
                         const Query &Nested) const {
  assert(Outer.node()->kind() == expr::ExprKind::Param &&
         "outer binder must be a param() handle");
  assert(expr::sameType(Outer.type(), elemType()) &&
         "outer binder type must match element type");
  assert(Nested.valid() && Nested.scalarResult() &&
         Nested.resultType()->isBool() &&
         "whereNested needs a scalar bool nested query");
  TypeRef Out = elemType();
  Fields F;
  F.Nested = Nested.node();
  F.OuterParam = Outer.node()->paramName();
  F.OuterParamTy = Outer.type();
  return Query(
      makeNode(OpKind::WhereNested, Last, std::move(F), std::move(Out)));
}

Query Query::take(expr::dsl::E Count) const {
  assert(Count.type()->isInt64() && "take count must be int64");
  TypeRef Out = elemType();
  Fields F;
  F.Arg = Count.node();
  return Query(makeNode(OpKind::Take, Last, std::move(F), std::move(Out)));
}

Query Query::skip(expr::dsl::E Count) const {
  assert(Count.type()->isInt64() && "skip count must be int64");
  TypeRef Out = elemType();
  Fields F;
  F.Arg = Count.node();
  return Query(makeNode(OpKind::Skip, Last, std::move(F), std::move(Out)));
}

Query Query::takeWhile(Lambda Pred) const {
  assert(Pred.arity() == 1 && Pred.resultType()->isBool() &&
         expr::sameType(Pred.param(0).Ty, elemType()) &&
         "takeWhile needs a unary bool lambda over the element type");
  TypeRef Out = elemType();
  Fields F;
  F.Fn = std::move(Pred);
  return Query(
      makeNode(OpKind::TakeWhile, Last, std::move(F), std::move(Out)));
}

Query Query::skipWhile(Lambda Pred) const {
  assert(Pred.arity() == 1 && Pred.resultType()->isBool() &&
         expr::sameType(Pred.param(0).Ty, elemType()) &&
         "skipWhile needs a unary bool lambda over the element type");
  TypeRef Out = elemType();
  Fields F;
  F.Fn = std::move(Pred);
  return Query(
      makeNode(OpKind::SkipWhile, Last, std::move(F), std::move(Out)));
}

Query Query::selectMany(const expr::dsl::E &Outer,
                        const Query &Nested) const {
  assert(Outer.node()->kind() == expr::ExprKind::Param &&
         "outer binder must be a param() handle");
  assert(expr::sameType(Outer.type(), elemType()) &&
         "outer binder type must match element type");
  assert(Nested.valid() && !Nested.scalarResult() &&
         "selectMany needs a collection nested query");
  TypeRef Out = Nested.resultType();
  Fields F;
  F.Nested = Nested.node();
  F.OuterParam = Outer.node()->paramName();
  F.OuterParamTy = Outer.type();
  return Query(
      makeNode(OpKind::SelectMany, Last, std::move(F), std::move(Out)));
}

//===----------------------------------------------------------------===//
// Sinks
//===----------------------------------------------------------------===//

Query Query::groupBy(Lambda KeySel) const {
  assert(elemType()->isDouble() &&
         "groupBy (bag form) supports double elements");
  assert(KeySel.arity() == 1 && KeySel.resultType()->isInt64() &&
         expr::sameType(KeySel.param(0).Ty, elemType()) &&
         "groupBy key selector must map the element to int64");
  TypeRef Out = Type::pairTy(Type::int64Ty(), Type::vecTy());
  Fields F;
  F.Fn = std::move(KeySel);
  return Query(makeNode(OpKind::GroupBy, Last, std::move(F), std::move(Out)));
}

Query Query::groupByAggregate(Lambda KeySel, expr::dsl::E Seed, Lambda Step,
                              Lambda Result, Lambda Combine) const {
  TypeRef Elem = elemType();
  assert(KeySel.arity() == 1 && KeySel.resultType()->isInt64() &&
         expr::sameType(KeySel.param(0).Ty, Elem) &&
         "groupByAggregate key selector must map the element to int64");
  TypeRef Acc = Seed.type();
  assert(Step.arity() == 2 && expr::sameType(Step.param(0).Ty, Acc) &&
         expr::sameType(Step.param(1).Ty, Elem) &&
         expr::sameType(Step.resultType(), Acc) &&
         "groupByAggregate step must be (acc, elem) -> acc");
  TypeRef Out;
  if (Result.valid()) {
    assert(Result.arity() == 2 && Result.param(0).Ty->isInt64() &&
           expr::sameType(Result.param(1).Ty, Acc) &&
           "groupByAggregate result must be (key, acc) -> R");
    Out = Result.resultType();
  } else {
    Out = Type::pairTy(Type::int64Ty(), Acc);
  }
  if (Combine.valid())
    assert(Combine.arity() == 2 &&
           expr::sameType(Combine.param(0).Ty, Acc) &&
           expr::sameType(Combine.param(1).Ty, Acc) &&
           expr::sameType(Combine.resultType(), Acc) &&
           "combiner must be (acc, acc) -> acc");
  Fields F;
  F.Fn = std::move(KeySel);
  F.Fn2 = std::move(Step);
  F.Fn3 = std::move(Result);
  F.Fn4 = std::move(Combine);
  F.Arg = Seed.node();
  return Query(
      makeNode(OpKind::GroupByAggregate, Last, std::move(F), std::move(Out)));
}

Query Query::groupByAggregateDense(Lambda KeySel, expr::dsl::E NumKeys,
                                   expr::dsl::E Seed, Lambda Step,
                                   Lambda Result, Lambda Combine) const {
  assert(NumKeys.type()->isInt64() && "dense key bound must be int64");
  Query Hash = groupByAggregate(std::move(KeySel), std::move(Seed),
                                std::move(Step), std::move(Result),
                                std::move(Combine));
  // Rebuild the node with the dense-key bound attached.
  const QueryNode &N = *Hash.node();
  Fields F;
  F.Fn = N.fn();
  F.Fn2 = N.fn2();
  F.Fn3 = N.fn3();
  F.Fn4 = N.combiner();
  F.Arg = N.arg();
  F.Arg2 = NumKeys.node();
  return Query(makeNode(OpKind::GroupByAggregate, Last, std::move(F),
                        N.resultType()));
}

Query Query::orderBy(Lambda KeySel) const {
  assert(KeySel.arity() == 1 && KeySel.resultType()->isNumeric() &&
         expr::sameType(KeySel.param(0).Ty, elemType()) &&
         "orderBy key selector must map the element to a number");
  TypeRef Out = elemType();
  Fields F;
  F.Fn = std::move(KeySel);
  return Query(makeNode(OpKind::OrderBy, Last, std::move(F), std::move(Out)));
}

Query Query::toArray() const {
  TypeRef Out = elemType();
  return Query(makeNode(OpKind::ToArray, Last, Fields(), std::move(Out)));
}

//===----------------------------------------------------------------===//
// Aggregates
//===----------------------------------------------------------------===//

Query Query::aggregate(expr::dsl::E Seed, Lambda Step, Lambda Result,
                       Lambda Combine) const {
  TypeRef Elem = elemType();
  TypeRef Acc = Seed.type();
  assert(Step.arity() == 2 && expr::sameType(Step.param(0).Ty, Acc) &&
         expr::sameType(Step.param(1).Ty, Elem) &&
         expr::sameType(Step.resultType(), Acc) &&
         "aggregate step must be (acc, elem) -> acc");
  TypeRef Out = Acc;
  if (Result.valid()) {
    assert(Result.arity() == 1 && expr::sameType(Result.param(0).Ty, Acc) &&
           "aggregate result selector must take the accumulator");
    Out = Result.resultType();
  }
  if (Combine.valid())
    assert(Combine.arity() == 2 &&
           expr::sameType(Combine.param(0).Ty, Acc) &&
           expr::sameType(Combine.param(1).Ty, Acc) &&
           expr::sameType(Combine.resultType(), Acc) &&
           "combiner must be (acc, acc) -> acc");
  Fields F;
  F.Fn = std::move(Step);
  F.Fn2 = std::move(Result);
  F.Fn4 = std::move(Combine);
  F.Arg = Seed.node();
  return Query(
      makeNode(OpKind::Aggregate, Last, std::move(F), std::move(Out)));
}

Query Query::sum() const {
  assert(elemType()->isNumeric() && "sum() needs numeric elements");
  TypeRef Out = elemType();
  return Query(makeNode(OpKind::Sum, Last, Fields(), std::move(Out)));
}

Query Query::min() const {
  assert(elemType()->isNumeric() && "min() needs numeric elements");
  TypeRef Out = elemType();
  return Query(makeNode(OpKind::Min, Last, Fields(), std::move(Out)));
}

Query Query::max() const {
  assert(elemType()->isNumeric() && "max() needs numeric elements");
  TypeRef Out = elemType();
  return Query(makeNode(OpKind::Max, Last, Fields(), std::move(Out)));
}

Query Query::count() const {
  TypeRef Out = Type::int64Ty();
  (void)elemType();
  return Query(makeNode(OpKind::Count, Last, Fields(), std::move(Out)));
}

Query Query::average() const {
  assert(elemType()->isNumeric() && "average() needs numeric elements");
  TypeRef Out = Type::doubleTy();
  return Query(makeNode(OpKind::Average, Last, Fields(), std::move(Out)));
}

Query Query::any() const {
  (void)elemType();
  return Query(makeNode(OpKind::Any, Last, Fields(), Type::boolTy()));
}

Query Query::all(Lambda Pred) const {
  assert(Pred.arity() == 1 && Pred.resultType()->isBool() &&
         expr::sameType(Pred.param(0).Ty, elemType()) &&
         "all() needs a unary bool lambda over the element type");
  Fields F;
  F.Fn = std::move(Pred);
  return Query(makeNode(OpKind::All, Last, std::move(F), Type::boolTy()));
}

Query Query::firstOrDefault(expr::dsl::E Default) const {
  assert(expr::sameType(Default.type(), elemType()) &&
         "firstOrDefault default must match the element type");
  TypeRef Out = elemType();
  Fields F;
  F.Arg = Default.node();
  return Query(
      makeNode(OpKind::FirstOrDefault, Last, std::move(F), std::move(Out)));
}

Query Query::contains(expr::dsl::E Value) const {
  assert(elemType()->isScalar() && "contains() needs scalar elements");
  assert(expr::sameType(Value.type(), elemType()) &&
         "contains() value must match the element type");
  Fields F;
  F.Arg = Value.node();
  return Query(
      makeNode(OpKind::Contains, Last, std::move(F), Type::boolTy()));
}

//===----------------------------------------------------------------===//
// Debug rendering
//===----------------------------------------------------------------===//

static const char *opName(OpKind K) {
  switch (K) {
  case OpKind::Source:
    return "source";
  case OpKind::Select:
    return "select";
  case OpKind::SelectNested:
    return "selectNested";
  case OpKind::Where:
    return "where";
  case OpKind::WhereNested:
    return "whereNested";
  case OpKind::Take:
    return "take";
  case OpKind::Skip:
    return "skip";
  case OpKind::TakeWhile:
    return "takeWhile";
  case OpKind::SkipWhile:
    return "skipWhile";
  case OpKind::SelectMany:
    return "selectMany";
  case OpKind::GroupBy:
    return "groupBy";
  case OpKind::GroupByAggregate:
    return "groupByAggregate";
  case OpKind::OrderBy:
    return "orderBy";
  case OpKind::ToArray:
    return "toArray";
  case OpKind::Aggregate:
    return "aggregate";
  case OpKind::Sum:
    return "sum";
  case OpKind::Min:
    return "min";
  case OpKind::Max:
    return "max";
  case OpKind::Count:
    return "count";
  case OpKind::Average:
    return "average";
  case OpKind::Any:
    return "any";
  case OpKind::All:
    return "all";
  case OpKind::FirstOrDefault:
    return "firstOrDefault";
  case OpKind::Contains:
    return "contains";
  }
  stenoUnreachable("bad OpKind");
}

std::string Query::str() const {
  if (!Last)
    return "<invalid>";
  std::string Out;
  for (const QueryNodeRef &N : chain()) {
    if (!Out.empty())
      Out += ".";
    Out += opName(N->kind());
    if (N->kind() == OpKind::Source)
      Out += "(" + std::to_string(N->source().Slot) + ")";
    else if (N->fn().valid())
      Out += "(" + N->fn().str() + ")";
    else if (N->nested())
      Out += "(<nested " + N->outerParam() + ">)";
    else
      Out += "()";
  }
  return Out;
}
