//===- query/Query.h - Declarative query AST and builder -------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The query AST: a chain of LINQ-level operator nodes, built by a fluent
/// Query DSL. This is the artifact the paper's "query extraction" step
/// (§3.1) produces from the LINQ provider; in C++ the user builds it
/// directly (lambdas are opaque at run time, so they are written in the
/// expr DSL).
///
/// Queries reference two kinds of run-time slots, bound at invocation:
///   * source slots — flat data buffers (double / int64 / strided points);
///   * value capture slots — scalar or vec-view values used inside lambdas
///     (the "placeholder instance variables" of paper §3.3).
///
/// Nested queries (paper §5) appear as the body of Select / Where /
/// SelectMany: the inner query's lambdas may reference the outer lambda's
/// parameter by name; the optimizer rewrites those references (§5.2).
///
//===----------------------------------------------------------------------===//

#ifndef STENO_QUERY_QUERY_H
#define STENO_QUERY_QUERY_H

#include "expr/Dsl.h"
#include "expr/Expr.h"
#include "expr/Lambda.h"

#include <memory>
#include <string>

namespace steno {
namespace query {

/// LINQ-level operator kinds. Table 1 of the paper maps these onto QUIL
/// symbols; see quil/Lower.cpp for the mapping in this codebase.
enum class OpKind {
  Source,           ///< Leaf: enumerable source collection.
  Select,           ///< Trans: element-wise transformation lambda.
  SelectNested,     ///< Trans via nested scalar query (paper §5).
  Where,            ///< Pred: filter lambda.
  WhereNested,      ///< Pred via nested scalar (bool) query.
  Take,             ///< Pred with counter state.
  Skip,             ///< Pred with counter state.
  TakeWhile,        ///< Pred with flag state.
  SkipWhile,        ///< Pred with flag state.
  SelectMany,       ///< Nested: flattening over a nested collection query.
  GroupBy,          ///< Sink: double elements -> (key, bag) groups.
  GroupByAggregate, ///< Sink: the fused form of §4.3.
  OrderBy,          ///< Sink: stable sort by key.
  ToArray,          ///< Sink: materialize (enables the Figure 8 footnote-3
                    ///< optimization).
  Aggregate,        ///< Agg: explicit left fold.
  Sum,              ///< Agg sugar.
  Min,              ///< Agg sugar.
  Max,              ///< Agg sugar.
  Count,            ///< Agg sugar.
  Average,          ///< Agg sugar.
  Any,              ///< Agg sugar with early exit.
  All,              ///< Agg sugar with early exit.
  FirstOrDefault,   ///< Agg sugar with early exit.
  Contains          ///< Agg sugar with early exit.
};

/// How a Source operator obtains elements.
enum class SourceKind {
  DoubleArray, ///< Bound buffer of doubles; element type Double.
  Int64Array,  ///< Bound buffer of int64; element type Int64.
  PointArray,  ///< Bound strided buffer: Count points x Dim doubles; element
               ///< type Vec.
  Range,       ///< Generated int64 range (LINQ Enumerable.Range).
  VecExpr      ///< Elements of a Vec-typed expression (used by nested
               ///< queries that iterate a point or a group's bag).
};

/// Payload of a Source operator. Start/CountE/Vec may reference outer-query
/// parameters and captures when the source begins a nested query.
struct SourceDesc {
  SourceKind Kind = SourceKind::DoubleArray;
  unsigned Slot = 0;       ///< Source-buffer slot for the *Array kinds.
  expr::ExprRef Start;     ///< Range start (int64 expr).
  expr::ExprRef CountE;    ///< Range count (int64 expr).
  expr::ExprRef Vec;       ///< VecExpr source (vec expr).

  /// Element type produced by this source.
  expr::TypeRef elemType() const;
};

class QueryNode;
using QueryNodeRef = std::shared_ptr<const QueryNode>;

/// One operator application. Immutable; chains share upstream tails.
class QueryNode {
public:
  OpKind kind() const { return Kind; }
  const QueryNodeRef &upstream() const { return Upstream; }
  const SourceDesc &source() const { return Src; }
  const expr::Lambda &fn() const { return Fn; }
  const expr::Lambda &fn2() const { return Fn2; }
  const expr::Lambda &fn3() const { return Fn3; }
  /// Optional associative combiner (acc, acc) -> acc for parallel partial
  /// aggregation (paper §6's Agg* / the distributed-aggregation interface
  /// of Yu et al.). Invalid when the aggregation is not known combinable.
  const expr::Lambda &combiner() const { return Fn4; }
  const expr::ExprRef &arg() const { return Arg; }
  /// Dense GroupByAggregate key-range bound; null for the hash sink.
  const expr::ExprRef &denseKeys() const { return Arg2; }
  const QueryNodeRef &nested() const { return Nested; }
  const std::string &outerParam() const { return OuterParam; }
  const expr::TypeRef &outerParamType() const { return OuterParamTy; }

  /// For collection-valued operators: the element type produced. For
  /// aggregate operators: the scalar result type.
  const expr::TypeRef &resultType() const { return Result; }

  /// True if this operator ends the query with a scalar (Agg class).
  bool isAggregate() const;

  /// True if this operator is a sink (Sink class of Table 1).
  bool isSink() const;

  friend class QueryNodeFactory;

private:
  QueryNode() = default;

  OpKind Kind = OpKind::Source;
  QueryNodeRef Upstream;
  SourceDesc Src;
  expr::Lambda Fn;
  expr::Lambda Fn2;
  expr::Lambda Fn3;
  expr::Lambda Fn4;
  expr::ExprRef Arg;
  expr::ExprRef Arg2;
  QueryNodeRef Nested;
  std::string OuterParam;
  expr::TypeRef OuterParamTy;
  expr::TypeRef Result;
};

/// Fluent builder over QueryNode chains. Cheap value type (shared
/// immutable nodes); every method returns an extended query.
///
/// Example — the paper's §5 Cartesian-product query:
/// \code
///   using namespace steno::expr::dsl;
///   auto X = param("x", Type::doubleTy());
///   auto Y = param("y", Type::doubleTy());
///   Query Q = Query::doubleArray(0).selectMany(
///       X, Query::doubleArray(1).select(lambda({Y}, X * Y))).sum();
/// \endcode
class Query {
public:
  Query() = default;

  /// Wraps an existing node chain. Intended for the optimizer pipeline;
  /// user code should build queries through the fluent methods.
  explicit Query(QueryNodeRef Last) : Last(std::move(Last)) {}

  //===--------------------------------------------------------------===//
  // Sources
  //===--------------------------------------------------------------===//

  /// Query over a bound double buffer (source slot \p Slot).
  static Query doubleArray(unsigned Slot);
  /// Query over a bound int64 buffer.
  static Query int64Array(unsigned Slot);
  /// Query over a bound strided point buffer; elements are Vec views.
  static Query pointArray(unsigned Slot);
  /// Enumerable.Range(start, count); operands are int64 expressions and may
  /// reference outer parameters/captures inside nested queries.
  static Query range(expr::dsl::E Start, expr::dsl::E Count);
  /// Query over the doubles of a Vec expression (nested-query source).
  static Query overVec(expr::dsl::E Vec);

  //===--------------------------------------------------------------===//
  // Composable operators
  //===--------------------------------------------------------------===//

  Query select(expr::Lambda Fn) const;
  /// Select whose body is a nested query with scalar result; \p Outer is
  /// the param() handle the nested query references.
  Query selectNested(const expr::dsl::E &Outer, const Query &Nested) const;
  Query where(expr::Lambda Pred) const;
  /// Where whose predicate is a nested query with bool scalar result.
  Query whereNested(const expr::dsl::E &Outer, const Query &Nested) const;
  Query take(expr::dsl::E Count) const;
  Query skip(expr::dsl::E Count) const;
  Query takeWhile(expr::Lambda Pred) const;
  Query skipWhile(expr::Lambda Pred) const;
  /// SelectMany: flattens the nested collection query \p Nested, which may
  /// reference \p Outer.
  Query selectMany(const expr::dsl::E &Outer, const Query &Nested) const;

  //===--------------------------------------------------------------===//
  // Sinks
  //===--------------------------------------------------------------===//

  /// GroupBy over double elements with an int64 key; produces
  /// Pair(key, Vec-of-members) elements (the HAVING pattern of §4.2).
  Query groupBy(expr::Lambda KeySel) const;
  /// The fused GroupByAggregate sink (§4.3): per-key accumulator updated
  /// element-wise. \p Step has params (acc, elem); \p Result has params
  /// (key, acc) and defaults to pair(key, acc).
  /// \p Combine, when given, must be an associative (acc, acc) -> acc
  /// merger; it enables per-partition partial aggregation (§6).
  Query groupByAggregate(expr::Lambda KeySel, expr::dsl::E Seed,
                         expr::Lambda Step,
                         expr::Lambda Result = expr::Lambda(),
                         expr::Lambda Combine = expr::Lambda()) const;
  /// Dense-key GroupByAggregate (the closing optimization of §4.3): the
  /// keys are known to lie in [0, NumKeys), so the sink is a flat array of
  /// accumulators instead of a hash table. Every key in range is reported
  /// (untouched keys carry the seed), in key order.
  Query groupByAggregateDense(expr::Lambda KeySel, expr::dsl::E NumKeys,
                              expr::dsl::E Seed, expr::Lambda Step,
                              expr::Lambda Result = expr::Lambda(),
                              expr::Lambda Combine = expr::Lambda()) const;
  Query orderBy(expr::Lambda KeySel) const;
  Query toArray() const;

  //===--------------------------------------------------------------===//
  // Aggregates (terminate the query with a scalar)
  //===--------------------------------------------------------------===//

  /// Aggregate(seed, step[, result[, combine]]): step params (acc, elem);
  /// optional result param (acc). Inside nested queries, \p Result may
  /// reference outer parameters. \p Combine, when given, must be an
  /// associative (acc, acc) -> acc merger enabling parallel partial
  /// aggregation (§6).
  Query aggregate(expr::dsl::E Seed, expr::Lambda Step,
                  expr::Lambda Result = expr::Lambda(),
                  expr::Lambda Combine = expr::Lambda()) const;
  Query sum() const;
  Query min() const;
  Query max() const;
  Query count() const;
  Query average() const;
  /// Any(): true iff the sequence is non-empty; Any(pred) via
  /// .where(pred).any(). Generates an early-exit loop (the first match
  /// breaks out).
  Query any() const;
  /// All(pred): true iff every element satisfies \p Pred; early-exits on
  /// the first counterexample.
  Query all(expr::Lambda Pred) const;
  /// FirstOrDefault(default): the first element, or \p Default when the
  /// sequence is empty; early-exits after one element.
  Query firstOrDefault(expr::dsl::E Default) const;
  /// Contains(value): membership test with early exit. Element type must
  /// be scalar.
  Query contains(expr::dsl::E Value) const;

  //===--------------------------------------------------------------===//
  // Introspection
  //===--------------------------------------------------------------===//

  bool valid() const { return Last != nullptr; }
  const QueryNodeRef &node() const { return Last; }
  /// Element type (collection queries) or scalar type (aggregate queries).
  const expr::TypeRef &resultType() const;
  /// True if the query ends with an aggregate.
  bool scalarResult() const;
  /// The operator chain source-first (paper §3.1's post-order traversal of
  /// the method-call AST).
  std::vector<QueryNodeRef> chain() const;
  /// Debug rendering, e.g. "doubleArray(0).where(...).select(...).sum()".
  std::string str() const;

private:
  /// Element type of the current (collection) query; asserts the query is
  /// not already scalar.
  const expr::TypeRef &elemType() const;

  QueryNodeRef Last;
};

} // namespace query
} // namespace steno

#endif // STENO_QUERY_QUERY_H
