//===- shard/Shard.cpp - Sharded multi-process serving (§6) ----*- C++ -*-===//

#include "shard/Shard.h"

#include "analysis/Analysis.h"
#include "obs/Metrics.h"
#include "quil/Quil.h"
#include "shard/Spawn.h"
#include "support/StringUtil.h"
#include "support/Timing.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <optional>
#include <sstream>
#include <thread>
#include <unistd.h>

using namespace steno;
using namespace steno::shard;
using serve::Response;
using serve::Status;

namespace {

struct ShardMetrics {
  obs::Counter &PrepareSplit = obs::counter("shard.prepare.split");
  obs::Counter &PrepareFallback = obs::counter("shard.prepare.fallback");
  obs::Counter &ExecSplit = obs::counter("shard.exec.split");
  obs::Counter &ExecFallback = obs::counter("shard.exec.fallback");
  obs::Counter &NonAssoc = obs::counter("shard.fallback.nonassoc");
  obs::Counter &SubSent = obs::counter("shard.subreq.sent");
  obs::Counter &Retries = obs::counter("shard.subreq.retries");
  obs::Counter &Connects = obs::counter("shard.conn.connects");
  obs::Counter &Deaths = obs::counter("shard.conn.deaths");
};

ShardMetrics &metrics() {
  static ShardMetrics M;
  return M;
}

std::uint64_t fnv1a(const std::string &S) {
  std::uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

/// WireClient::prepare reports both semantic rejections and transport
/// failures through the same Err string; transport failures have a
/// closed set of spellings (ours), everything else is the shard's error
/// message.
bool isWireFailure(const std::string &Err) {
  return Err == "write failed" || Err == "connection closed" ||
         Err.rfind("unexpected frame", 0) == 0 ||
         Err.rfind("malformed prepared frame", 0) == 0;
}

} // namespace

//===--------------------------------------------------------------------===//
// Connection pool
//===--------------------------------------------------------------------===//

struct ShardRouter::Conn {
  int Fd;
  serve::WireClient W;
  /// Spec text -> this connection's handle (handles are connection-local
  /// on the serve side, so every fresh connection re-prepares).
  std::unordered_map<std::string, std::uint64_t> Prepared;

  explicit Conn(int Fd) : Fd(Fd), W(Fd) {}
  ~Conn() { ::close(Fd); }
  Conn(const Conn &) = delete;
  Conn &operator=(const Conn &) = delete;
};

struct ShardRouter::ShardState {
  std::mutex M;
  std::condition_variable CV;
  std::vector<std::unique_ptr<Conn>> Free;
  unsigned Live = 0; ///< Connections in existence (free + checked out).
};

std::unique_ptr<ShardRouter::Conn>
ShardRouter::acquire(unsigned Shard,
                     std::chrono::steady_clock::time_point GiveUp) {
  ShardState &S = *Shards[Shard];
  std::unique_lock<std::mutex> Lock(S.M);
  for (;;) {
    if (!S.Free.empty()) {
      std::unique_ptr<Conn> C = std::move(S.Free.back());
      S.Free.pop_back();
      return C;
    }
    if (S.Live < Options.ConnsPerShard) {
      ++S.Live;
      Lock.unlock();
      int Fd = Options.Connect(Shard);
      if (Fd < 0) {
        Lock.lock();
        --S.Live;
        S.CV.notify_one();
        return nullptr; // caller backs off and retries
      }
      metrics().Connects.inc();
      NConnects.fetch_add(1, std::memory_order_relaxed);
      return std::make_unique<Conn>(Fd);
    }
    if (std::chrono::steady_clock::now() >= GiveUp)
      return nullptr;
    S.CV.wait_until(Lock, GiveUp);
  }
}

void ShardRouter::release(unsigned Shard, std::unique_ptr<Conn> C) {
  ShardState &S = *Shards[Shard];
  std::lock_guard<std::mutex> Lock(S.M);
  S.Free.push_back(std::move(C));
  S.CV.notify_one();
}

void ShardRouter::discard(unsigned Shard, std::unique_ptr<Conn> C) {
  C.reset(); // close before another waiter reconnects
  metrics().Deaths.inc();
  NDeaths.fetch_add(1, std::memory_order_relaxed);
  ShardState &S = *Shards[Shard];
  std::lock_guard<std::mutex> Lock(S.M);
  --S.Live;
  S.CV.notify_one();
}

//===--------------------------------------------------------------------===//
// Router
//===--------------------------------------------------------------------===//

ShardRouter::ShardRouter(const RouterOptions &O)
    : Options(O),
      NumShards(static_cast<unsigned>(O.ShardSockets.size())),
      CombinePool(O.CombineWorkers ? O.CombineWorkers : 1) {
  assert(NumShards > 0 && "router needs at least one shard");
  if (!Options.Connect) {
    // Default transport: the worker's Unix socket, with a short probe
    // budget (the retry loop above this absorbs longer outages).
    std::vector<std::string> Sockets = Options.ShardSockets;
    Options.Connect = [Sockets](unsigned I) {
      return WorkerProcess::connectTo(Sockets[I],
                                      std::chrono::milliseconds(1000));
    };
  }
  for (unsigned I = 0; I != NumShards; ++I) {
    Shards.push_back(std::make_unique<ShardState>());
    ShardLatency.push_back(&obs::histogram(
        "shard" + std::to_string(I) + ".latency_us",
        {10, 100, 1e3, 1e4, 1e5, 1e6, 1e7}));
    for (unsigned V = 0; V != 16; ++V)
      Ring.emplace_back(fnv1a("shard:" + std::to_string(I) + ":" +
                              std::to_string(V)),
                        I);
  }
  std::sort(Ring.begin(), Ring.end());
}

ShardRouter::~ShardRouter() = default;

RoutedHandle ShardRouter::prepare(const std::string &SpecText,
                                  std::string *Err) {
  {
    std::lock_guard<std::mutex> Lock(PrepMutex);
    auto It = Prepared.find(SpecText);
    if (It != Prepared.end())
      return It->second;
  }
  auto fail = [&](const std::string &M) {
    if (Err)
      *Err = M;
    return RoutedHandle();
  };

  auto Q = std::make_shared<RoutedQuery>();
  Q->SpecText = SpecText;
  std::string E;
  if (!fuzz::parseSpec(SpecText, Q->Spec, &E))
    return fail("spec parse error: " + E);
  fuzz::BuiltQuery Built; // for planning only; buffers dropped after
  if (!fuzz::buildSpec(Q->Spec, Built, &E))
    return fail("spec build error: " + E);
  Q->SourceCount =
      Q->Spec.Sources.empty() || Q->Spec.Sources[0].Count < 0
          ? 0
          : static_cast<std::size_t>(Q->Spec.Sources[0].Count);

  quil::Chain Chain = quil::lower(Built.Q);
  if (auto VErr = quil::validate(Chain))
    return fail("invalid query: " + *VErr);
  Chain = quil::specializeGroupByAggregate(Chain);
  analysis::AnalysisResult Analyzed = analysis::analyzeChain(Chain);
  if (!Analyzed.ok())
    return fail("rejected by analysis: " +
                Analyzed.Diags.render(analysis::Severity::Error));
  Q->Cert = Analyzed.Cert;

  // The split decision (§6 over processes): certificate gate first, then
  // the structural planner. With one shard the fan-out buys nothing, so
  // the query routes whole regardless.
  std::string WhyNot;
  std::optional<dryad::ParallelPlan> Plan;
  if (!Q->Cert.shardSafe(Options.StrictFp)) {
    WhyNot = "analyzer refused certification (" + Q->Cert.str() + ")";
  } else {
    Plan = dryad::planParallel(Chain, &WhyNot);
  }

  // Home shard for the fallback path: consistent hash of the spec text
  // onto the virtual-point ring.
  std::uint64_t H = fnv1a(SpecText);
  auto It = std::lower_bound(
      Ring.begin(), Ring.end(), std::make_pair(H, 0u),
      [](const auto &A, const auto &B) { return A.first < B.first; });
  Q->HomeShard = (It == Ring.end() ? Ring.front() : *It).second;

  if (Plan && NumShards > 1) {
    Q->Split = true;
    Q->Plan = std::move(*Plan);
    metrics().PrepareSplit.inc();
    NSplitPrepared.fetch_add(1, std::memory_order_relaxed);
  } else {
    Q->WhyNot = Plan ? "single-shard fleet" : WhyNot;
    metrics().PrepareFallback.inc();
    NFallbackPrepared.fetch_add(1, std::memory_order_relaxed);
    if (!Q->Cert.combinersAssociative()) {
      metrics().NonAssoc.inc();
      NNonAssocFallbacks.fetch_add(1, std::memory_order_relaxed);
    }
  }
  NPrepares.fetch_add(1, std::memory_order_relaxed);

  std::lock_guard<std::mutex> Lock(PrepMutex);
  return Prepared.emplace(SpecText, std::move(Q)).first->second;
}

serve::WireClient::PartialResult
ShardRouter::subRequest(unsigned Shard, const RoutedQuery &Q, bool Partial,
                        std::size_t Begin, std::size_t Len,
                        std::uint64_t Rid,
                        std::chrono::milliseconds Deadline) {
  using PR = serve::WireClient::PartialResult;
  support::WallTimer Timer;
  auto Start = std::chrono::steady_clock::now();
  auto GiveUp = Start + std::min(Deadline, Options.RetryBudget);
  PR Out;
  bool First = true;

  for (;;) {
    if (!First) {
      metrics().Retries.inc();
      NRetries.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(Options.RetryBackoff);
    }
    if (std::chrono::steady_clock::now() >= GiveUp) {
      Out = PR();
      Out.St = Status::Timeout;
      break;
    }

    std::unique_ptr<Conn> C = acquire(Shard, GiveUp);
    if (!C) {
      // Shard down (connect failed) or pool starved past the budget.
      First = false;
      continue;
    }

    // Handles are connection-local: a fresh connection (including one
    // replacing a killed shard's) re-prepares the spec first. Workers
    // re-synthesize identical buffers from the spec's seeds, so the
    // re-prepared handle is equivalent.
    auto It = C->Prepared.find(Q.SpecText);
    std::uint64_t Handle;
    if (It != C->Prepared.end()) {
      Handle = It->second;
    } else {
      std::string PrepErr;
      if (!C->W.prepare(Q.SpecText, Handle, PrepErr)) {
        if (isWireFailure(PrepErr)) {
          discard(Shard, std::move(C));
          First = false;
          continue;
        }
        // Semantic rejection: terminal, the connection is still good.
        release(Shard, std::move(C));
        Out = PR();
        Out.St = Status::Error;
        Out.Error = PrepErr;
        break;
      }
      C->Prepared.emplace(Q.SpecText, Handle);
      if (!First) {
        NReprepares.fetch_add(1, std::memory_order_relaxed);
      }
    }

    auto Remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        GiveUp - std::chrono::steady_clock::now());
    long long AttemptMs = std::max<long long>(1, Remaining.count());
    metrics().SubSent.inc();
    NSubSent.fetch_add(1, std::memory_order_relaxed);
    bool WireOk = Partial
                      ? C->W.pexec(Handle, Begin, Len, AttemptMs, Rid, Out)
                      : C->W.xexec(Handle, AttemptMs, Rid, Out);
    if (!WireOk) {
      // Torn frame / dead shard / stale rid: the response for this rid
      // was never observed, so re-issuing it elsewhere cannot duplicate
      // a delivery — exactly-once holds per rid.
      discard(Shard, std::move(C));
      First = false;
      continue;
    }
    if (Out.St == Status::Shed) {
      // Worker overloaded: back off and retry within the budget.
      release(Shard, std::move(C));
      First = false;
      continue;
    }
    release(Shard, std::move(C));
    break; // Ok / Timeout / Error pass through
  }

  ShardLatency[Shard]->observe(Timer.seconds() * 1e6);
  return Out;
}

serve::Response ShardRouter::execute(const RoutedHandle &H) {
  return execute(H, Options.DefaultDeadline);
}

serve::Response ShardRouter::execute(const RoutedHandle &H,
                                     std::chrono::milliseconds Deadline) {
  using PR = serve::WireClient::PartialResult;
  Response Rsp;
  Rsp.Id = NextRid.fetch_add(1, std::memory_order_relaxed);
  if (!H) {
    Rsp.St = Status::Error;
    Rsp.Message = "null routed handle";
    NErrors.fetch_add(1, std::memory_order_relaxed);
    return Rsp;
  }
  NExecs.fetch_add(1, std::memory_order_relaxed);
  support::WallTimer RunTimer;

  if (!H->Split) {
    metrics().ExecFallback.inc();
    NFallbackExecs.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t Rid = NextRid.fetch_add(1, std::memory_order_relaxed);
    PR R = subRequest(H->HomeShard, *H, /*Partial=*/false, 0, 0, Rid,
                      Deadline);
    Rsp.St = R.St;
    Rsp.Message = R.Error;
    Rsp.Result = std::move(R.Result);
    Rsp.NativePlan = R.Native;
    Rsp.RunMicros = RunTimer.seconds() * 1e6;
    switch (Rsp.St) {
    case Status::Ok:
      NOk.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::Timeout:
      NTimeouts.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      NErrors.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    return Rsp;
  }

  metrics().ExecSplit.inc();
  NSplitExecs.fetch_add(1, std::memory_order_relaxed);

  // Range partition (same Base/Extra arithmetic as partitionBindings,
  // so per-shard partials match the in-process decomposition exactly).
  unsigned N = NumShards;
  std::size_t Base = H->SourceCount / N;
  std::size_t Extra = H->SourceCount % N;
  std::vector<std::pair<std::size_t, std::size_t>> Ranges(N);
  std::size_t Pos = 0;
  for (unsigned I = 0; I != N; ++I) {
    std::size_t Len = Base + (I < Extra ? 1 : 0);
    Ranges[I] = {Pos, Len};
    Pos += Len;
  }

  // Fan out: this thread takes shard 0, one short-lived thread per
  // remaining shard. Each sub-request gets its own rid.
  std::uint64_t RidBase = NextRid.fetch_add(N, std::memory_order_relaxed);
  std::vector<PR> Parts(N);
  std::vector<std::thread> Threads;
  Threads.reserve(N - 1);
  for (unsigned I = 1; I != N; ++I)
    Threads.emplace_back([this, &Parts, &Ranges, &H, RidBase, Deadline,
                          I] {
      Parts[I] = subRequest(I, *H, /*Partial=*/true, Ranges[I].first,
                            Ranges[I].second, RidBase + I, Deadline);
    });
  Parts[0] = subRequest(0, *H, /*Partial=*/true, Ranges[0].first,
                        Ranges[0].second, RidBase, Deadline);
  for (std::thread &T : Threads)
    T.join();

  // All partials must arrive; the worst failure wins (Error dominates
  // Timeout so a real fault is never masked as slowness).
  bool AllNative = true;
  for (unsigned I = 0; I != N; ++I) {
    AllNative = AllNative && Parts[I].Native;
    if (Parts[I].St == Status::Ok)
      continue;
    Rsp.St = Parts[I].St;
    Rsp.Message = Parts[I].Error.empty()
                      ? "shard " + std::to_string(I) + " failed"
                      : "shard " + std::to_string(I) + ": " +
                            Parts[I].Error;
    for (unsigned J = 0; J != N; ++J)
      if (Parts[J].St == Status::Error) {
        Rsp.St = Status::Error;
        if (!Parts[J].Error.empty())
          Rsp.Message =
              "shard " + std::to_string(J) + ": " + Parts[J].Error;
        break;
      }
    if (Rsp.St == Status::Timeout)
      NTimeouts.fetch_add(1, std::memory_order_relaxed);
    else
      NErrors.fetch_add(1, std::memory_order_relaxed);
    return Rsp;
  }

  // Agg*: the same combine stage the in-process engine runs, over
  // partials that crossed a process boundary.
  std::vector<QueryResult> Partials;
  Partials.reserve(N);
  for (PR &P : Parts)
    Partials.push_back(std::move(P.Result));
  Rsp.Result = dryad::combineParallelPartials(CombinePool, H->Plan,
                                              H->Cert,
                                              std::move(Partials));
  Rsp.St = Status::Ok;
  Rsp.NativePlan = AllNative;
  Rsp.RunMicros = RunTimer.seconds() * 1e6;
  NOk.fetch_add(1, std::memory_order_relaxed);
  return Rsp;
}

ShardRouter::Stats ShardRouter::stats() const {
  Stats S;
  S.Prepares = NPrepares.load(std::memory_order_relaxed);
  S.SplitPrepared = NSplitPrepared.load(std::memory_order_relaxed);
  S.FallbackPrepared = NFallbackPrepared.load(std::memory_order_relaxed);
  S.NonAssocFallbacks = NNonAssocFallbacks.load(std::memory_order_relaxed);
  S.Execs = NExecs.load(std::memory_order_relaxed);
  S.SplitExecs = NSplitExecs.load(std::memory_order_relaxed);
  S.FallbackExecs = NFallbackExecs.load(std::memory_order_relaxed);
  S.SubSent = NSubSent.load(std::memory_order_relaxed);
  S.Retries = NRetries.load(std::memory_order_relaxed);
  S.Reprepares = NReprepares.load(std::memory_order_relaxed);
  S.Connects = NConnects.load(std::memory_order_relaxed);
  S.Deaths = NDeaths.load(std::memory_order_relaxed);
  S.Ok = NOk.load(std::memory_order_relaxed);
  S.Timeouts = NTimeouts.load(std::memory_order_relaxed);
  S.Errors = NErrors.load(std::memory_order_relaxed);
  return S;
}

std::string ShardRouter::statsJson() const {
  Stats S = stats();
  std::ostringstream Out;
  Out << "{\"shards\":" << NumShards << ",\"prepares\":" << S.Prepares
      << ",\"split_prepared\":" << S.SplitPrepared
      << ",\"fallback_prepared\":" << S.FallbackPrepared
      << ",\"nonassoc_fallbacks\":" << S.NonAssocFallbacks
      << ",\"execs\":" << S.Execs << ",\"split_execs\":" << S.SplitExecs
      << ",\"fallback_execs\":" << S.FallbackExecs
      << ",\"sub_sent\":" << S.SubSent << ",\"retries\":" << S.Retries
      << ",\"reprepares\":" << S.Reprepares
      << ",\"connects\":" << S.Connects << ",\"deaths\":" << S.Deaths
      << ",\"ok\":" << S.Ok << ",\"timeouts\":" << S.Timeouts
      << ",\"errors\":" << S.Errors << ",\"shard_latency_us\":[";
  for (unsigned I = 0; I != NumShards; ++I) {
    if (I)
      Out << ',';
    char Buf[128];
    std::snprintf(Buf, sizeof Buf,
                  "{\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f}",
                  ShardLatency[I]->percentile(0.50),
                  ShardLatency[I]->percentile(0.95),
                  ShardLatency[I]->percentile(0.99));
    Out << Buf;
  }
  Out << "]}";
  return Out.str();
}

//===--------------------------------------------------------------------===//
// Router wire front end
//===--------------------------------------------------------------------===//

void shard::serveRouterConnection(ShardRouter &Router, int Fd) {
  serve::FdStream S(Fd);
  std::vector<RoutedHandle> Handles; // connection-local handle table

  auto errorFrame = [](std::string Msg) {
    for (std::size_t I = 0; (I = Msg.find('\n', I)) != std::string::npos;)
      Msg.replace(I, 1, "; ");
    return "error " + Msg + "\n";
  };

  std::string Line;
  while (S.readLine(Line)) {
    std::istringstream Fields(Line);
    std::string Cmd;
    if (!(Fields >> Cmd))
      continue;

    if (Cmd == "quit") {
      S.writeAll("bye\n");
      return;
    }

    if (Cmd == "prepare") {
      std::string SpecText, SpecLine;
      bool SawEnd = false;
      while (S.readLine(SpecLine)) {
        SpecText += SpecLine;
        SpecText += '\n';
        if (SpecLine == "end") {
          SawEnd = true;
          break;
        }
      }
      if (!SawEnd)
        return;
      std::string Err;
      RoutedHandle H = Router.prepare(SpecText, &Err);
      if (!H) {
        if (!S.writeAll(errorFrame(Err)))
          return;
        continue;
      }
      Handles.push_back(H);
      if (!S.writeAll(support::strFormat("prepared %zu\n",
                                         Handles.size() - 1)))
        return;
      continue;
    }

    if (Cmd == "exec") {
      std::size_t Handle = 0;
      long long DeadlineMs = -1;
      if (!(Fields >> Handle)) {
        if (!S.writeAll(errorFrame("exec needs a handle")))
          return;
        continue;
      }
      Fields >> DeadlineMs;
      if (Handle >= Handles.size()) {
        if (!S.writeAll(errorFrame(support::strFormat(
                "unknown handle %zu", Handle))))
          return;
        continue;
      }
      Response R =
          DeadlineMs >= 0
              ? Router.execute(Handles[Handle],
                               std::chrono::milliseconds(DeadlineMs))
              : Router.execute(Handles[Handle]);
      if (!S.writeAll(serve::renderResponse(R)))
        return;
      continue;
    }

    if (Cmd == "stats") {
      if (!S.writeAll("stats " + Router.statsJson() + "\n"))
        return;
      continue;
    }

    if (Cmd == "metrics") {
      std::string Text = obs::exportPrometheus();
      std::size_t NLines = static_cast<std::size_t>(
          std::count(Text.begin(), Text.end(), '\n'));
      if (!S.writeAll(support::strFormat("metrics %zu\n", NLines) + Text))
        return;
      continue;
    }

    if (!S.writeAll(errorFrame("unknown command '" + Cmd + "'")))
      return;
  }
}
