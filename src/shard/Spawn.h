//===- shard/Spawn.h - Worker process management ---------------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Spawning and killing steno_serve worker processes — the harness side
/// of the shard layer, shared by steno_router --spawn, the loadgen's
/// chaos mode (SIGKILL + respawn mid-stream), and the shard tests.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_SHARD_SPAWN_H
#define STENO_SHARD_SPAWN_H

#include <chrono>
#include <string>
#include <sys/types.h>
#include <vector>

namespace steno {
namespace shard {

/// One steno_serve worker child. Movable, not copyable; does NOT kill
/// the child on destruction (chaos harnesses kill explicitly; a router
/// shutdown kills its spawned fleet itself).
class WorkerProcess {
public:
  WorkerProcess() = default;
  WorkerProcess(std::string Bin, std::string Socket,
                std::vector<std::string> ExtraArgs = {})
      : Bin(std::move(Bin)), Socket(std::move(Socket)),
        ExtraArgs(std::move(ExtraArgs)) {}

  WorkerProcess(WorkerProcess &&O) noexcept;
  WorkerProcess &operator=(WorkerProcess &&O) noexcept;
  WorkerProcess(const WorkerProcess &) = delete;
  WorkerProcess &operator=(const WorkerProcess &) = delete;

  /// Forks and execs `Bin --socket Socket <ExtraArgs...>`, then probes
  /// the socket until the worker accepts (the serve tool unlinks a stale
  /// socket before binding, so respawning on the same path works).
  /// False with \p Err filled when the exec fails or the worker never
  /// starts listening within \p Budget.
  bool start(std::string *Err,
             std::chrono::milliseconds Budget =
                 std::chrono::milliseconds(10000));

  /// SIGKILLs the child and reaps it. Safe to call when not running.
  void kill9();

  /// True while a started child has not been reaped.
  bool running() const { return Pid > 0; }
  pid_t pid() const { return Pid; }
  const std::string &socket() const { return Socket; }

  /// Connects to a worker's Unix socket, retrying until \p Budget runs
  /// out (covers the window while a freshly spawned worker binds).
  /// Returns the connected fd, or -1.
  static int connectTo(const std::string &Socket,
                       std::chrono::milliseconds Budget);

private:
  std::string Bin;
  std::string Socket;
  std::vector<std::string> ExtraArgs;
  pid_t Pid = -1;
};

} // namespace shard
} // namespace steno

#endif // STENO_SHARD_SPAWN_H
