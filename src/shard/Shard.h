//===- shard/Shard.h - Sharded multi-process serving (§6) ------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shard router (DESIGN.md §5k): scales steno::serve past one process
/// by fanning prepared queries out across N steno_serve workers over Unix
/// sockets, using the paper's §6 decomposition *between processes* —
/// each shard runs the homomorphic prefix + Agg_i vertex over its range
/// of the (deterministically re-synthesized) source, and the router runs
/// the combining Agg* stage over the wire-returned partials.
///
/// Routing policy, decided once per spec at prepare():
///
///  * **Split** — the SafetyCertificate passes shardSafe() and the §6
///    planner finds the Agg_i + Agg* decomposition: every execute range-
///    partitions source slot 0 across all shards (same Base/Extra
///    arithmetic as dryad::partitionBindings), issues one `pexec` per
///    shard, and combines with dryad::combineParallelPartials.
///  * **Fallback** — uncertified or structurally unsplittable plans route
///    whole to one *home* shard chosen by consistent-hashing the spec
///    text onto a ring of virtual shard points (so re-preparing a spec
///    lands on the same shard, and adding a shard only remaps ~1/N of
///    specs). Non-associative combiners are counted separately
///    (shard.fallback.nonassoc).
///
/// **Exactly-once retry.** Every sub-request carries a router-unique
/// request id, echoed by the worker in its answer frame. Wire failures
/// (dead shard, torn frame, rid mismatch) discard the connection and
/// retry the sub-request — on a fresh connection, re-preparing the spec
/// first (handles are connection-local) — within a per-request retry
/// budget. Retries are safe because queries are pure and every worker
/// re-synthesizes identical source buffers from the spec's seeds; the
/// router returns exactly one Response per execute() regardless of how
/// many attempts ran beneath it. A worker that *sheds* backs the
/// sub-request off and retries the same way; budget exhaustion answers
/// Timeout.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_SHARD_SHARD_H
#define STENO_SHARD_SHARD_H

#include "dryad/Dist.h"
#include "dryad/ThreadPool.h"
#include "serve/Wire.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace steno {
namespace obs {
class Histogram;
} // namespace obs

namespace shard {

/// Router configuration.
struct RouterOptions {
  /// Unix-socket paths of the steno_serve workers, one per shard.
  std::vector<std::string> ShardSockets;
  /// Test seam: returns a connected fd to shard \p I (or -1). Defaults
  /// to connecting ShardSockets[I] with a short probe budget. In-process
  /// tests substitute a socketpair factory and never touch the
  /// filesystem.
  std::function<int(unsigned)> Connect;
  /// Connection-pool bound per shard (connections are created on demand
  /// up to this; further sub-requests wait for a free one).
  unsigned ConnsPerShard = 4;
  /// Deadline for execute() calls made without one.
  std::chrono::milliseconds DefaultDeadline{30000};
  /// Total time a sub-request may spend retrying across shard deaths
  /// before the router answers Timeout.
  std::chrono::milliseconds RetryBudget{15000};
  /// Pause before reconnecting after a wire failure or shed.
  std::chrono::milliseconds RetryBackoff{50};
  /// Refuse the split for FP-reassociating plans (SafetyCertificate::
  /// shardSafe(true)): bit-equal results at the cost of fan-out.
  bool StrictFp = false;
  /// Workers for the router-side Agg* combine pool (treeCombine rounds).
  unsigned CombineWorkers = 2;
};

/// One prepared spec's routing decision, immutable after prepare().
struct RoutedQuery {
  std::string SpecText;
  fuzz::QuerySpec Spec;
  /// Elements in source slot 0 (the partitioned source).
  std::size_t SourceCount = 0;
  /// True: fan out per-shard partials + Agg*. False: whole-query on
  /// HomeShard.
  bool Split = false;
  unsigned HomeShard = 0;
  std::string WhyNot; ///< Why the split was refused (when !Split).
  dryad::ParallelPlan Plan;           ///< Valid when Split.
  analysis::SafetyCertificate Cert;
};

using RoutedHandle = std::shared_ptr<const RoutedQuery>;

/// The router. One instance fronts a fixed shard fleet; thread-safe for
/// concurrent prepare/execute from any number of client threads.
class ShardRouter {
public:
  explicit ShardRouter(const RouterOptions &Options);
  ~ShardRouter();

  ShardRouter(const ShardRouter &) = delete;
  ShardRouter &operator=(const ShardRouter &) = delete;

  unsigned shards() const { return NumShards; }
  const RouterOptions &options() const { return Options; }

  /// Parses and routes \p SpecText (memoized by text: re-preparing
  /// returns the same handle). Null with \p Err set on a malformed or
  /// analysis-rejected spec.
  RoutedHandle prepare(const std::string &SpecText, std::string *Err);

  /// Runs one request: split fan-out + Agg* combine, or whole-query on
  /// the home shard. Blocks until the merged response. Exactly one
  /// Response per call (ids are router-local).
  serve::Response execute(const RoutedHandle &H,
                          std::chrono::milliseconds Deadline);
  serve::Response execute(const RoutedHandle &H);

  /// Router-local monotonic statistics.
  struct Stats {
    std::uint64_t Prepares = 0;
    std::uint64_t SplitPrepared = 0;
    std::uint64_t FallbackPrepared = 0;
    std::uint64_t NonAssocFallbacks = 0; ///< Fallbacks due to combiners.
    std::uint64_t Execs = 0;
    std::uint64_t SplitExecs = 0;
    std::uint64_t FallbackExecs = 0;
    std::uint64_t SubSent = 0;  ///< Sub-requests issued (incl. retries).
    std::uint64_t Retries = 0;  ///< Sub-request retry attempts.
    std::uint64_t Reprepares = 0; ///< Spec re-prepared on a fresh conn.
    std::uint64_t Connects = 0; ///< Shard connections established.
    std::uint64_t Deaths = 0;   ///< Connections discarded on failure.
    std::uint64_t Ok = 0;
    std::uint64_t Timeouts = 0;
    std::uint64_t Errors = 0;
  };
  Stats stats() const;

  /// One JSON object: the counters above plus per-shard latency
  /// percentiles (shard<i>.latency_us histograms).
  std::string statsJson() const;

private:
  struct Conn;
  struct ShardState;

  /// Issues one sub-request (pexec when \p Partial, else xexec) to
  /// \p Shard with exactly-once retry inside RetryBudget.
  serve::WireClient::PartialResult
  subRequest(unsigned Shard, const RoutedQuery &Q, bool Partial,
             std::size_t Begin, std::size_t Len, std::uint64_t Rid,
             std::chrono::milliseconds Deadline);

  std::unique_ptr<Conn> acquire(unsigned Shard,
                                std::chrono::steady_clock::time_point
                                    GiveUp);
  void release(unsigned Shard, std::unique_ptr<Conn> C);
  void discard(unsigned Shard, std::unique_ptr<Conn> C);

  RouterOptions Options;
  unsigned NumShards;
  /// Consistent-hash ring: 16 virtual points per shard, sorted by hash.
  std::vector<std::pair<std::uint64_t, unsigned>> Ring;
  std::vector<std::unique_ptr<ShardState>> Shards;
  std::vector<obs::Histogram *> ShardLatency; ///< shard<i>.latency_us.
  dryad::ThreadPool CombinePool;

  std::mutex PrepMutex; ///< Guards Prepared.
  std::unordered_map<std::string, RoutedHandle> Prepared;

  std::atomic<std::uint64_t> NextRid{1};
  std::atomic<std::uint64_t> NPrepares{0}, NSplitPrepared{0},
      NFallbackPrepared{0}, NNonAssocFallbacks{0}, NExecs{0},
      NSplitExecs{0}, NFallbackExecs{0}, NSubSent{0}, NRetries{0},
      NReprepares{0}, NConnects{0}, NDeaths{0}, NOk{0}, NTimeouts{0},
      NErrors{0};
};

/// Serves one router client connection on \p Fd: the same line protocol
/// as steno_serve (prepare/exec/stats/quit; responses rendered with
/// serve::renderResponse), so loadgen's socket mode points at a router
/// unchanged. Blocking; one thread per connection.
void serveRouterConnection(ShardRouter &Router, int Fd);

} // namespace shard
} // namespace steno

#endif // STENO_SHARD_SHARD_H
