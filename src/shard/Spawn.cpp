//===- shard/Spawn.cpp - Worker process management -------------*- C++ -*-===//

#include "shard/Spawn.h"

#include <cerrno>
#include <cstring>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

using namespace steno;
using namespace steno::shard;

WorkerProcess::WorkerProcess(WorkerProcess &&O) noexcept
    : Bin(std::move(O.Bin)), Socket(std::move(O.Socket)),
      ExtraArgs(std::move(O.ExtraArgs)), Pid(O.Pid) {
  O.Pid = -1;
}

WorkerProcess &WorkerProcess::operator=(WorkerProcess &&O) noexcept {
  if (this != &O) {
    Bin = std::move(O.Bin);
    Socket = std::move(O.Socket);
    ExtraArgs = std::move(O.ExtraArgs);
    Pid = O.Pid;
    O.Pid = -1;
  }
  return *this;
}

bool WorkerProcess::start(std::string *Err,
                          std::chrono::milliseconds Budget) {
  if (Pid > 0) {
    if (Err)
      *Err = "worker already running";
    return false;
  }

  pid_t Child = ::fork();
  if (Child < 0) {
    if (Err)
      *Err = std::string("fork failed: ") + std::strerror(errno);
    return false;
  }
  if (Child == 0) {
    std::vector<char *> Argv;
    Argv.push_back(const_cast<char *>(Bin.c_str()));
    Argv.push_back(const_cast<char *>("--socket"));
    Argv.push_back(const_cast<char *>(Socket.c_str()));
    for (const std::string &A : ExtraArgs)
      Argv.push_back(const_cast<char *>(A.c_str()));
    Argv.push_back(nullptr);
    ::execv(Bin.c_str(), Argv.data());
    _exit(127); // exec failed; the probe below reports the start failure
  }

  Pid = Child;
  int Fd = connectTo(Socket, Budget);
  if (Fd < 0) {
    if (Err)
      *Err = "worker '" + Bin + "' never started listening on " + Socket;
    kill9();
    return false;
  }
  ::close(Fd);
  return true;
}

void WorkerProcess::kill9() {
  if (Pid <= 0)
    return;
  ::kill(Pid, SIGKILL);
  int Status = 0;
  ::waitpid(Pid, &Status, 0);
  Pid = -1;
}

int WorkerProcess::connectTo(const std::string &Socket,
                             std::chrono::milliseconds Budget) {
  auto GiveUp = std::chrono::steady_clock::now() + Budget;
  for (;;) {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd >= 0) {
      sockaddr_un Addr{};
      Addr.sun_family = AF_UNIX;
      std::strncpy(Addr.sun_path, Socket.c_str(),
                   sizeof Addr.sun_path - 1);
      if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                    sizeof Addr) == 0)
        return Fd;
      ::close(Fd);
    }
    if (std::chrono::steady_clock::now() >= GiveUp)
      return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}
