//===- tools/steno_serve.cpp - Query service over a Unix socket ----------===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
//
// A long-lived serving process: listens on a Unix-domain socket and runs
// one serve::serveConnection thread per client. The protocol is the
// line-oriented one in serve/Wire.h; try it interactively with
//
//   steno_serve --socket /tmp/steno.sock &
//   nc -U /tmp/steno.sock
//
// Exit: 0 on clean SIGINT/SIGTERM shutdown, 2 on usage/bind errors.
//
//===----------------------------------------------------------------------===//

#include "serve/Serve.h"
#include "serve/Wire.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace steno;

namespace {

std::atomic<bool> Stop{false};
int ListenFdForSignal = -1;

void onSignal(int) {
  Stop.store(true);
  // Unblock accept(): shutdown() on a listening socket is
  // implementation-defined, but close() reliably fails the accept.
  if (ListenFdForSignal >= 0)
    ::close(ListenFdForSignal);
}

void usage() {
  std::fprintf(
      stderr,
      "usage: steno_serve [options]\n"
      "  --socket PATH      Unix socket path (default /tmp/steno-serve.sock)\n"
      "  --workers N        execution pool size (default 4)\n"
      "  --max-queue N      admission bound, queued+running (default 64)\n"
      "  --compile-workers N  background JIT threads (default 1)\n"
      "  --deadline-ms N    default request deadline (default 5000)\n"
      "  --no-recompile     stay on the interpreter backend forever\n"
      "  --profile          per-operator query profiling (wire command\n"
      "                     `profile <handle>`; also STENO_PROFILE=1)\n"
      "  --no-adapt         disable feedback-driven re-planning (also\n"
      "                     STENO_ADAPT=off)\n"
      "  --replan-every N   adaptive re-plan cadence in executions per\n"
      "                     handle (default 64; 0 = never)\n"
      "  --adapt-window N   post-swap judgement window in runs\n"
      "                     (default 32)\n");
}

bool parseUnsigned(const char *S, unsigned long long &Out) {
  char *End = nullptr;
  Out = std::strtoull(S, &End, 10);
  return End && *End == '\0' && End != S;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string SocketPath = "/tmp/steno-serve.sock";
  serve::ServeOptions Opts;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "steno_serve: %s needs a value\n", Arg.c_str());
        std::exit(2);
      }
      return Argv[++I];
    };
    unsigned long long N = 0;
    if (Arg == "--socket") {
      SocketPath = next();
    } else if (Arg == "--workers" && parseUnsigned(next(), N)) {
      Opts.Workers = static_cast<unsigned>(N);
    } else if (Arg == "--max-queue" && parseUnsigned(next(), N)) {
      Opts.MaxQueue = static_cast<unsigned>(N);
    } else if (Arg == "--compile-workers" && parseUnsigned(next(), N)) {
      Opts.CompileWorkers = static_cast<unsigned>(N);
    } else if (Arg == "--deadline-ms" && parseUnsigned(next(), N)) {
      Opts.DefaultDeadline = std::chrono::milliseconds(N);
    } else if (Arg == "--no-recompile") {
      Opts.BackgroundRecompile = false;
    } else if (Arg == "--profile") {
      Opts.Profile = true;
    } else if (Arg == "--no-adapt") {
      Opts.AdaptiveReplan = false;
    } else if (Arg == "--replan-every" && parseUnsigned(next(), N)) {
      Opts.ReplanEvery = static_cast<unsigned>(N);
    } else if (Arg == "--adapt-window" && parseUnsigned(next(), N)) {
      Opts.AdaptWindow = static_cast<unsigned>(N);
    } else {
      usage();
      return 2;
    }
  }

  int ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    std::perror("steno_serve: socket");
    return 2;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof Addr.sun_path) {
    std::fprintf(stderr, "steno_serve: socket path too long\n");
    return 2;
  }
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof Addr.sun_path - 1);
  ::unlink(SocketPath.c_str()); // stale socket from a previous run
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) <
          0 ||
      ::listen(ListenFd, 64) < 0) {
    std::perror("steno_serve: bind/listen");
    return 2;
  }

  ListenFdForSignal = ListenFd;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGPIPE, SIG_IGN); // client hangups surface as write errors

  serve::QueryService Svc(Opts);
  std::fprintf(stderr,
               "steno_serve: listening on %s (workers=%u max-queue=%u)\n",
               SocketPath.c_str(), Opts.Workers, Opts.MaxQueue);

  std::vector<std::thread> Connections;
  while (!Stop.load()) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (Stop.load() || errno == EBADF)
        break;
      if (errno == EINTR)
        continue;
      std::perror("steno_serve: accept");
      break;
    }
    Connections.emplace_back([&Svc, Fd] {
      serve::serveConnection(Svc, Fd);
      ::close(Fd);
    });
  }

  for (std::thread &T : Connections)
    T.join();
  ::unlink(SocketPath.c_str());
  serve::QueryService::Stats S = Svc.stats();
  std::fprintf(stderr,
               "steno_serve: shut down; served %llu requests "
               "(%llu ok, %llu shed, %llu timeout, %llu error)\n",
               static_cast<unsigned long long>(S.Accepted),
               static_cast<unsigned long long>(S.Ok),
               static_cast<unsigned long long>(S.Shed),
               static_cast<unsigned long long>(S.Timeouts),
               static_cast<unsigned long long>(S.Errors));
  return 0;
}
