//===- tools/steno_fuzz.cpp - Differential fuzzer CLI ----------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
//
// The entry point CI's fuzz-smoke job and developers share:
//
//   steno_fuzz --seed 1 --iters 5000            # the CI configuration
//   steno_fuzz --seed 7 --iters 200 --jit-every 1   # full JIT coverage
//   steno_fuzz --backend dryad-morsel --iters 1000  # one backend only
//   steno_fuzz --replay tests/fuzz_corpus           # replay a corpus
//
// Exit status: 0 when every query matched the reference oracle on every
// backend; 1 on any mismatch (shrunken reproducers are written to --out);
// 2 on usage errors.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzz.h"
#include "obs/Metrics.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace steno;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: steno_fuzz [options]\n"
      "  --seed N         generator seed (default 1)\n"
      "  --iters N        queries to generate (default 1000)\n"
      "  --backend NAME   restrict to one backend: interp |\n"
      "                   interp-norewrite | interp-vec | interp-adapt |\n"
      "                   jit | plinq1 | plinq2 | plinq8 |\n"
      "                   dryad-static | dryad-morsel\n"
      "  --jit-every N    run the JIT backend every Nth query (default 50;\n"
      "                   0 disables, 1 = every query)\n"
      "  --out DIR        directory for shrunken reproducers\n"
      "                   (default fuzz_failures)\n"
      "  --replay DIR     replay every .fuzzspec in DIR instead of\n"
      "                   generating\n"
      "  --verbose        per-query progress on stderr\n"
      "  --metrics        dump obs counters on exit\n");
}

bool parseUnsigned(const char *S, unsigned long long &Out) {
  char *End = nullptr;
  Out = std::strtoull(S, &End, 10);
  return End && *End == '\0' && End != S;
}

} // namespace

int main(int Argc, char **Argv) {
  fuzz::FuzzOptions Opts;
  Opts.CorpusDir = "fuzz_failures";
  std::string ReplayDir;
  bool DumpMetrics = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "steno_fuzz: %s needs a value\n", Arg.c_str());
        std::exit(2);
      }
      return Argv[++I];
    };
    unsigned long long N = 0;
    if (Arg == "--seed") {
      if (!parseUnsigned(next(), N)) {
        usage();
        return 2;
      }
      Opts.Seed = N;
    } else if (Arg == "--iters") {
      if (!parseUnsigned(next(), N)) {
        usage();
        return 2;
      }
      Opts.Iters = static_cast<unsigned>(N);
    } else if (Arg == "--jit-every") {
      if (!parseUnsigned(next(), N)) {
        usage();
        return 2;
      }
      Opts.JitEvery = static_cast<unsigned>(N);
    } else if (Arg == "--backend") {
      if (!fuzz::parseBackendName(next(), Opts.Only)) {
        std::fprintf(stderr, "steno_fuzz: unknown backend\n");
        usage();
        return 2;
      }
      Opts.HasOnly = true;
    } else if (Arg == "--out") {
      Opts.CorpusDir = next();
    } else if (Arg == "--replay") {
      ReplayDir = next();
    } else if (Arg == "--verbose") {
      Opts.Verbose = true;
    } else if (Arg == "--metrics") {
      DumpMetrics = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "steno_fuzz: unknown option %s\n", Arg.c_str());
      usage();
      return 2;
    }
  }

  fuzz::DiffHarness Harness;

  if (!ReplayDir.empty()) {
    std::vector<std::pair<std::string, fuzz::QuerySpec>> Corpus;
    std::string Err;
    if (!fuzz::loadCorpus(ReplayDir, Corpus, &Err)) {
      std::fprintf(stderr, "steno_fuzz: %s\n", Err.c_str());
      return 2;
    }
    fuzz::DiffOptions DOpts;
    DOpts.Backends = fuzz::allBackends(true);
    if (Opts.HasOnly)
      DOpts.Backends = {Opts.Only};
    unsigned Failed = 0;
    for (const auto &[Path, Spec] : Corpus) {
      fuzz::DiffResult R = Harness.check(Spec, DOpts);
      if (R.BuildError || R.Mismatch) {
        ++Failed;
        std::fprintf(stderr, "steno_fuzz: FAIL %s\n%s\n", Path.c_str(),
                     R.Report.c_str());
      } else if (Opts.Verbose) {
        std::fprintf(stderr, "steno_fuzz: ok %s\n", Path.c_str());
      }
    }
    std::printf("steno_fuzz: replayed %zu corpus files, %u failed\n",
                Corpus.size(), Failed);
    return Failed ? 1 : 0;
  }

  fuzz::FuzzOutcome Out = fuzz::runFuzz(Harness, Opts);
  if (DumpMetrics)
    std::fputs(obs::dumpMetrics().c_str(), stderr);
  std::printf("steno_fuzz: seed=%llu queries=%u rejected=%u certified=%u "
              "mismatches=%u shrink_steps=%u\n",
              static_cast<unsigned long long>(Opts.Seed), Out.Queries,
              Out.Rejected, Out.Certified, Out.Mismatches, Out.ShrinkSteps);
  if (!Out.clean()) {
    for (const auto &[Spec, Path] : Out.Failures)
      std::fprintf(stderr, "steno_fuzz: reproducer: %s  (%s)\n",
                   Path.c_str(), fuzz::specSummary(Spec).c_str());
    return 1;
  }
  return 0;
}
