//===- tools/steno_router.cpp - Shard router over a Unix socket ----------===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
//
// The front-end process of the sharded serving layer (DESIGN.md §5k):
// listens on a Unix socket speaking the same client protocol as
// steno_serve (prepare/exec/stats/quit), and fans each execution out
// across N steno_serve workers using the §6 decomposition — per-shard
// homomorphic prefix + Agg partials combined by the router's Agg* stage,
// gated on the SafetyCertificate. Point it at running workers with
// repeated --shard flags, or let it spawn its own fleet:
//
//   steno_serve --socket /tmp/s0.sock &
//   steno_serve --socket /tmp/s1.sock &
//   steno_router --shard /tmp/s0.sock --shard /tmp/s1.sock &
//   nc -U /tmp/steno-router.sock
//
//   steno_router --spawn 4 --serve-bin ./steno_serve   # self-managed
//
// Exit: 0 on clean SIGINT/SIGTERM shutdown, 2 on usage/bind/spawn errors.
//
//===----------------------------------------------------------------------===//

#include "shard/Shard.h"
#include "shard/Spawn.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace steno;

namespace {

std::atomic<bool> Stop{false};
int ListenFdForSignal = -1;

void onSignal(int) {
  Stop.store(true);
  if (ListenFdForSignal >= 0)
    ::close(ListenFdForSignal);
}

void usage() {
  std::fprintf(
      stderr,
      "usage: steno_router [options]\n"
      "  --socket PATH        listen socket (default /tmp/steno-router.sock)\n"
      "  --shard PATH         a steno_serve worker socket (repeatable)\n"
      "  --spawn N            spawn N steno_serve workers instead\n"
      "  --serve-bin PATH     worker binary for --spawn\n"
      "  --shard-socket-dir D directory for spawned worker sockets\n"
      "                       (default /tmp)\n"
      "  --shard-workers N    execution pool size per spawned worker\n"
      "                       (default 1)\n"
      "  --no-recompile       spawned workers stay on the interpreter\n"
      "  --conns-per-shard N  connection pool bound per shard (default 4)\n"
      "  --deadline-ms N      default request deadline (default 30000)\n"
      "  --retry-budget-ms N  per-sub-request retry budget across shard\n"
      "                       deaths (default 15000)\n"
      "  --retry-backoff-ms N pause before reconnecting after a failure\n"
      "                       (default 50)\n"
      "  --strict-fp          refuse the split for FP-reassociating plans\n"
      "                       (bit-equal results, no fan-out for them)\n");
}

bool parseUnsigned(const char *S, unsigned long long &Out) {
  char *End = nullptr;
  Out = std::strtoull(S, &End, 10);
  return End && *End == '\0' && End != S;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string SocketPath = "/tmp/steno-router.sock";
  std::string ServeBin;
  std::string SpawnDir = "/tmp";
  unsigned SpawnCount = 0;
  unsigned ShardWorkers = 1;
  bool NoRecompile = false;
  shard::RouterOptions Opts;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "steno_router: %s needs a value\n",
                     Arg.c_str());
        std::exit(2);
      }
      return Argv[++I];
    };
    unsigned long long N = 0;
    if (Arg == "--socket") {
      SocketPath = next();
    } else if (Arg == "--shard") {
      Opts.ShardSockets.push_back(next());
    } else if (Arg == "--spawn" && parseUnsigned(next(), N)) {
      SpawnCount = static_cast<unsigned>(N);
    } else if (Arg == "--serve-bin") {
      ServeBin = next();
    } else if (Arg == "--shard-socket-dir") {
      SpawnDir = next();
    } else if (Arg == "--shard-workers" && parseUnsigned(next(), N)) {
      ShardWorkers = static_cast<unsigned>(N);
    } else if (Arg == "--no-recompile") {
      NoRecompile = true;
    } else if (Arg == "--conns-per-shard" && parseUnsigned(next(), N)) {
      Opts.ConnsPerShard = static_cast<unsigned>(N);
    } else if (Arg == "--deadline-ms" && parseUnsigned(next(), N)) {
      Opts.DefaultDeadline = std::chrono::milliseconds(N);
    } else if (Arg == "--retry-budget-ms" && parseUnsigned(next(), N)) {
      Opts.RetryBudget = std::chrono::milliseconds(N);
    } else if (Arg == "--retry-backoff-ms" && parseUnsigned(next(), N)) {
      Opts.RetryBackoff = std::chrono::milliseconds(N);
    } else if (Arg == "--strict-fp") {
      Opts.StrictFp = true;
    } else {
      usage();
      return 2;
    }
  }

  std::vector<shard::WorkerProcess> Workers;
  if (SpawnCount) {
    if (!Opts.ShardSockets.empty() || ServeBin.empty()) {
      std::fprintf(stderr, "steno_router: --spawn needs --serve-bin and "
                           "excludes --shard\n");
      return 2;
    }
    std::vector<std::string> ExtraArgs = {
        "--workers", std::to_string(ShardWorkers)};
    if (NoRecompile)
      ExtraArgs.push_back("--no-recompile");
    for (unsigned I = 0; I != SpawnCount; ++I) {
      std::string Sock = SpawnDir + "/steno-shard-" +
                         std::to_string(::getpid()) + "-" +
                         std::to_string(I) + ".sock";
      Workers.emplace_back(ServeBin, Sock, ExtraArgs);
      std::string Err;
      if (!Workers.back().start(&Err)) {
        std::fprintf(stderr, "steno_router: %s\n", Err.c_str());
        for (shard::WorkerProcess &W : Workers)
          W.kill9();
        return 2;
      }
      Opts.ShardSockets.push_back(Sock);
    }
  }
  if (Opts.ShardSockets.empty()) {
    std::fprintf(stderr, "steno_router: no shards (--shard or --spawn)\n");
    usage();
    return 2;
  }

  int ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    std::perror("steno_router: socket");
    return 2;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof Addr.sun_path) {
    std::fprintf(stderr, "steno_router: socket path too long\n");
    return 2;
  }
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof Addr.sun_path - 1);
  ::unlink(SocketPath.c_str());
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) <
          0 ||
      ::listen(ListenFd, 64) < 0) {
    std::perror("steno_router: bind/listen");
    return 2;
  }

  ListenFdForSignal = ListenFd;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGPIPE, SIG_IGN);

  shard::ShardRouter Router(Opts);
  std::fprintf(stderr,
               "steno_router: listening on %s fronting %u shard(s)\n",
               SocketPath.c_str(), Router.shards());

  std::vector<std::thread> Connections;
  while (!Stop.load()) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (Stop.load() || errno == EBADF)
        break;
      if (errno == EINTR)
        continue;
      std::perror("steno_router: accept");
      break;
    }
    Connections.emplace_back([&Router, Fd] {
      shard::serveRouterConnection(Router, Fd);
      ::close(Fd);
    });
  }

  for (std::thread &T : Connections)
    T.join();
  ::unlink(SocketPath.c_str());
  for (shard::WorkerProcess &W : Workers)
    W.kill9();
  std::fprintf(stderr, "steno_router: shut down; %s\n",
               Router.statsJson().c_str());
  return 0;
}
