//===- tools/steno_loadgen.cpp - Closed-loop load generator --------------===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
//
// Drives an in-process serve::QueryService with N closed-loop clients
// (each waits for its response before sending the next request) over a
// mix of paper-shaped queries plus generated fuzz specs, verifying every
// Ok response against the reference interpreter and every response id
// for uniqueness. This is the serving-layer acceptance harness: it
// writes BENCH_serve.json and exits nonzero when anything was lost,
// duplicated, mismatched, or errored.
//
//   steno_loadgen --clients 8 --seconds 30 --seed 1     # CI configuration
//
// Exit status: 0 clean; 1 on lost/duplicate/mismatched/errored
// responses; 2 on usage or setup errors.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Diff.h"
#include "fuzz/Gen.h"
#include "serve/Serve.h"
#include "steno/RefExec.h"
#include "support/Random.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

using namespace steno;
using Clock = std::chrono::steady_clock;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: steno_loadgen [options]\n"
      "  --clients N        closed-loop client threads (default 8)\n"
      "  --seconds N        run duration (default 10)\n"
      "  --seed N           generated-spec seed (default 1)\n"
      "  --gen N            generated specs added to the mix (default 4)\n"
      "  --deadline-ms N    per-request deadline (default 5000)\n"
      "  --workers N        service execution pool (default 4)\n"
      "  --max-queue N      admission bound (default 64)\n"
      "  --compile-workers N  background JIT threads (default 1)\n"
      "  --no-recompile     stay on the interpreter backend\n");
}

bool parseUnsigned(const char *S, unsigned long long &Out) {
  char *End = nullptr;
  Out = std::strtoull(S, &End, 10);
  return End && *End == '\0' && End != S;
}

/// The paper-shaped core of the query mix (EXPERIMENTS.md benchmarks,
/// restated as fuzz specs): Sum, Scale, filtered Count, Ret-pop's nested
/// flatten, Group, Sort, and the forced-sequential non-associative fold.
std::vector<fuzz::QuerySpec> paperMix() {
  using namespace fuzz;
  std::vector<QuerySpec> Mix;

  { // Sum: xs.Select(x => x*x).Sum()
    QuerySpec S;
    S.Sources.push_back({0, ElemTy::Double, DataClass::Uniform, 4096, 11});
    OpSpec Sel;
    Sel.K = OpK::Select;
    Sel.T = TransTmpl::Square;
    OpSpec Agg;
    Agg.K = OpK::Agg;
    Agg.A = AggKind::Sum;
    S.Ops = {Sel, Agg};
    Mix.push_back(S);
  }
  { // Scale: xs.Select(x => x * k).Sum() with a captured k
    QuerySpec S;
    S.Sources.push_back({0, ElemTy::Double, DataClass::Uniform, 4096, 12});
    S.HasCaptureD = true;
    S.CaptureD = 2.5;
    OpSpec Sel;
    Sel.K = OpK::Select;
    Sel.T = TransTmpl::CapScale;
    OpSpec Agg;
    Agg.K = OpK::Agg;
    Agg.A = AggKind::Sum;
    S.Ops = {Sel, Agg};
    Mix.push_back(S);
  }
  { // Filtered count: xs.Where(x => x > 10).Count()
    QuerySpec S;
    S.Sources.push_back({0, ElemTy::Double, DataClass::Skewed, 4096, 13});
    OpSpec Wh;
    Wh.K = OpK::Where;
    Wh.P = PredTmpl::GtC;
    Wh.DArg = 10.0;
    OpSpec Agg;
    Agg.K = OpK::Agg;
    Agg.A = AggKind::Count;
    S.Ops = {Wh, Agg};
    Mix.push_back(S);
  }
  { // Ret-pop shape: xs.SelectMany(ys).Sum() (Figure 11's flatten)
    QuerySpec S;
    S.Sources.push_back({0, ElemTy::Double, DataClass::Uniform, 256, 14});
    S.Sources.push_back({1, ElemTy::Double, DataClass::Uniform, 16, 15});
    OpSpec SM;
    SM.K = OpK::SelectMany;
    SM.Slot = 1;
    OpSpec Agg;
    Agg.K = OpK::Agg;
    Agg.A = AggKind::Sum;
    S.Ops = {SM, Agg};
    Mix.push_back(S);
  }
  { // Group: bucketed GroupByAggregate over a Gaussian-ish skew
    QuerySpec S;
    S.Sources.push_back({0, ElemTy::Double, DataClass::Skewed, 4096, 16});
    OpSpec GA;
    GA.K = OpK::GroupAgg;
    GA.Key = KeyTmpl::Bucket;
    GA.DArg = 25.0;
    GA.G = GroupStep::Sum;
    S.Ops = {GA};
    Mix.push_back(S);
  }
  { // Sort: xs.OrderBy(abs).ToArray()
    QuerySpec S;
    S.Sources.push_back({0, ElemTy::Double, DataClass::Uniform, 2048, 17});
    OpSpec Ord;
    Ord.K = OpK::OrderBy;
    Ord.Key = KeyTmpl::Abs;
    OpSpec Arr;
    Arr.K = OpK::ToArray;
    S.Ops = {Ord, Arr};
    Mix.push_back(S);
  }
  { // Non-associative fold: certified unsafe, forced sequential
    QuerySpec S;
    S.Sources.push_back({0, ElemTy::Int64, DataClass::Uniform, 2048, 18});
    OpSpec Agg;
    Agg.K = OpK::Agg;
    Agg.A = AggKind::FoldNonAssoc;
    S.Ops = {Agg};
    Mix.push_back(S);
  }
  return Mix;
}

struct MixEntry {
  std::string Text;
  serve::PreparedHandle Handle;
  QueryResult Expected;
};

struct ClientOutcome {
  std::uint64_t Sent = 0;
  std::uint64_t Ok = 0, Shed = 0, Timeouts = 0, Errors = 0;
  std::uint64_t Mismatches = 0;
  std::uint64_t Degraded = 0, Native = 0;
  std::vector<double> LatencyMicros;
  std::vector<std::uint64_t> Ids;
  std::string FirstMismatch;
};

bool resultsMatch(const QueryResult &Got, const QueryResult &Want) {
  if (Got.isScalar() != Want.isScalar() ||
      Got.rows().size() != Want.rows().size())
    return false;
  for (std::size_t I = 0; I != Got.rows().size(); ++I)
    if (!fuzz::fuzzValueNear(Got.rows()[I], Want.rows()[I]))
      return false;
  return true;
}

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  double Idx = P * static_cast<double>(Sorted.size() - 1);
  return Sorted[static_cast<std::size_t>(Idx + 0.5)];
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Clients = 8;
  unsigned Seconds = 10;
  std::uint64_t Seed = 1;
  unsigned GenCount = 4;
  std::chrono::milliseconds Deadline{5000};
  serve::ServeOptions Opts;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "steno_loadgen: %s needs a value\n",
                     Arg.c_str());
        std::exit(2);
      }
      return Argv[++I];
    };
    unsigned long long N = 0;
    if (Arg == "--clients" && parseUnsigned(next(), N)) {
      Clients = static_cast<unsigned>(N);
    } else if (Arg == "--seconds" && parseUnsigned(next(), N)) {
      Seconds = static_cast<unsigned>(N);
    } else if (Arg == "--seed" && parseUnsigned(next(), N)) {
      Seed = N;
    } else if (Arg == "--gen" && parseUnsigned(next(), N)) {
      GenCount = static_cast<unsigned>(N);
    } else if (Arg == "--deadline-ms" && parseUnsigned(next(), N)) {
      Deadline = std::chrono::milliseconds(N);
    } else if (Arg == "--workers" && parseUnsigned(next(), N)) {
      Opts.Workers = static_cast<unsigned>(N);
    } else if (Arg == "--max-queue" && parseUnsigned(next(), N)) {
      Opts.MaxQueue = static_cast<unsigned>(N);
    } else if (Arg == "--compile-workers" && parseUnsigned(next(), N)) {
      Opts.CompileWorkers = static_cast<unsigned>(N);
    } else if (Arg == "--no-recompile") {
      Opts.BackgroundRecompile = false;
    } else {
      usage();
      return 2;
    }
  }
  if (Clients == 0) {
    usage();
    return 2;
  }

  serve::QueryService Svc(Opts);
  std::shared_ptr<serve::Session> Setup = Svc.openSession();

  // Assemble the mix: the paper queries plus prescreened generated specs.
  std::vector<fuzz::QuerySpec> Specs = paperMix();
  {
    support::SplitMix64 Rng(Seed);
    fuzz::GenOptions GOpts;
    unsigned Added = 0, Attempts = 0;
    while (Added < GenCount && Attempts < GenCount * 50 + 50) {
      ++Attempts;
      fuzz::QuerySpec S = fuzz::generateSpec(Rng, GOpts);
      std::string Err;
      if (Setup->prepare(fuzz::serializeSpec(S), &Err)) {
        Specs.push_back(S);
        ++Added;
      }
    }
  }

  // Prepare each spec once (handles are shared by every client — exactly
  // the long-lived prepared-statement usage the cache exists for) and
  // compute its expected result with the reference interpreter.
  std::vector<MixEntry> Mix;
  for (const fuzz::QuerySpec &S : Specs) {
    MixEntry E;
    E.Text = fuzz::serializeSpec(S);
    std::string Err;
    E.Handle = Setup->prepare(E.Text, &Err);
    if (!E.Handle) {
      std::fprintf(stderr, "steno_loadgen: prepare failed: %s\n%s\n",
                   Err.c_str(), E.Text.c_str());
      return 2;
    }
    E.Expected = runReference(E.Handle->query(), E.Handle->bindings());
    Mix.push_back(std::move(E));
  }
  std::fprintf(stderr, "steno_loadgen: %zu specs in the mix\n", Mix.size());

  // The closed loop: each client owns a session, cycles the mix, and
  // verifies in place.
  Clock::time_point End = Clock::now() + std::chrono::seconds(Seconds);
  std::vector<ClientOutcome> Outcomes(Clients);
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C < Clients; ++C) {
    Threads.emplace_back([&, C] {
      ClientOutcome &Out = Outcomes[C];
      std::shared_ptr<serve::Session> Sess = Svc.openSession();
      std::size_t Cursor = C; // stagger the mix across clients
      while (Clock::now() < End) {
        const MixEntry &E = Mix[Cursor++ % Mix.size()];
        ++Out.Sent;
        Clock::time_point T0 = Clock::now();
        serve::Response R = Sess->execute(E.Handle, Deadline);
        double Micros = std::chrono::duration<double, std::micro>(
                            Clock::now() - T0)
                            .count();
        Out.LatencyMicros.push_back(Micros);
        Out.Ids.push_back(R.Id);
        switch (R.St) {
        case serve::Status::Ok:
          ++Out.Ok;
          if (R.Degraded)
            ++Out.Degraded;
          if (R.NativePlan)
            ++Out.Native;
          if (!resultsMatch(R.Result, E.Expected)) {
            ++Out.Mismatches;
            if (Out.FirstMismatch.empty())
              Out.FirstMismatch = E.Text;
          }
          break;
        case serve::Status::Shed:
          ++Out.Shed;
          break;
        case serve::Status::Timeout:
          ++Out.Timeouts;
          break;
        case serve::Status::Error:
          ++Out.Errors;
          break;
        }
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  Svc.drainRecompiles();

  // Merge and audit.
  ClientOutcome Total;
  std::vector<double> Lat;
  std::unordered_set<std::uint64_t> SeenIds;
  std::uint64_t DuplicateIds = 0, Responses = 0;
  for (const ClientOutcome &O : Outcomes) {
    Total.Sent += O.Sent;
    Total.Ok += O.Ok;
    Total.Shed += O.Shed;
    Total.Timeouts += O.Timeouts;
    Total.Errors += O.Errors;
    Total.Mismatches += O.Mismatches;
    Total.Degraded += O.Degraded;
    Total.Native += O.Native;
    if (Total.FirstMismatch.empty())
      Total.FirstMismatch = O.FirstMismatch;
    Lat.insert(Lat.end(), O.LatencyMicros.begin(), O.LatencyMicros.end());
    Responses += O.Ids.size();
    for (std::uint64_t Id : O.Ids)
      if (Id != 0 && !SeenIds.insert(Id).second)
        ++DuplicateIds;
  }
  std::uint64_t Lost = Total.Sent - Responses;
  std::sort(Lat.begin(), Lat.end());
  double P50 = percentile(Lat, 0.50), P90 = percentile(Lat, 0.90),
         P99 = percentile(Lat, 0.99);
  double Rps = Seconds > 0 ? static_cast<double>(Total.Sent) / Seconds : 0;

  // The amortization headline: a prepared execution vs the one-off
  // native compile the background upgrade paid (§7.1 break-even).
  double ColdCompileMillis = 0;
  unsigned NativeHandles = 0;
  for (const MixEntry &E : Mix)
    if (E.Handle->nativeReady()) {
      ColdCompileMillis += E.Handle->nativeCompileMillis();
      ++NativeHandles;
    }
  if (NativeHandles)
    ColdCompileMillis /= NativeHandles;
  double Speedup =
      P50 > 0 && ColdCompileMillis > 0 ? ColdCompileMillis * 1000 / P50 : 0;

  serve::QueryService::Stats S = Svc.stats();
  std::printf("steno_loadgen: %llu requests in %us (%.0f rps), "
              "%llu ok / %llu shed / %llu timeout / %llu error\n",
              static_cast<unsigned long long>(Total.Sent), Seconds, Rps,
              static_cast<unsigned long long>(Total.Ok),
              static_cast<unsigned long long>(Total.Shed),
              static_cast<unsigned long long>(Total.Timeouts),
              static_cast<unsigned long long>(Total.Errors));
  std::printf("  latency p50 %.1fus p90 %.1fus p99 %.1fus; degraded %llu, "
              "native %llu\n",
              P50, P90, P99,
              static_cast<unsigned long long>(Total.Degraded),
              static_cast<unsigned long long>(Total.Native));
  std::printf("  lost %llu, duplicate ids %llu, mismatches %llu\n",
              static_cast<unsigned long long>(Lost),
              static_cast<unsigned long long>(DuplicateIds),
              static_cast<unsigned long long>(Total.Mismatches));
  if (ColdCompileMillis > 0)
    std::printf("  cold native compile %.1fms vs prepared p50 %.1fus "
                "(%.0fx amortization)\n",
                ColdCompileMillis, P50, Speedup);
  if (!Total.FirstMismatch.empty())
    std::fprintf(stderr, "steno_loadgen: first mismatching spec:\n%s\n",
                 Total.FirstMismatch.c_str());

  const char *Dir = std::getenv("STENO_BENCH_OUT");
  std::string Path =
      (Dir && *Dir ? std::string(Dir) + "/" : std::string()) +
      "BENCH_serve.json";
  if (std::FILE *F = std::fopen(Path.c_str(), "w")) {
    std::fprintf(
        F,
        "{\n  \"binary\": \"serve\",\n  \"clients\": %u,\n"
        "  \"seconds\": %u,\n  \"specs\": %zu,\n  \"requests\": %llu,\n"
        "  \"throughput_rps\": %.1f,\n  \"ok\": %llu,\n  \"shed\": %llu,\n"
        "  \"timeouts\": %llu,\n  \"errors\": %llu,\n"
        "  \"degraded_runs\": %llu,\n  \"native_runs\": %llu,\n"
        "  \"lost\": %llu,\n  \"duplicate_ids\": %llu,\n"
        "  \"mismatches\": %llu,\n  \"latency_p50_micros\": %.1f,\n"
        "  \"latency_p90_micros\": %.1f,\n  \"latency_p99_micros\": %.1f,\n"
        "  \"prepared_p50_micros\": %.1f,\n"
        "  \"cold_compile_millis\": %.2f,\n"
        "  \"amortization_x\": %.1f,\n"
        "  \"recompiles_done\": %llu,\n  \"recompiles_failed\": %llu\n}\n",
        Clients, Seconds, Mix.size(),
        static_cast<unsigned long long>(Total.Sent), Rps,
        static_cast<unsigned long long>(Total.Ok),
        static_cast<unsigned long long>(Total.Shed),
        static_cast<unsigned long long>(Total.Timeouts),
        static_cast<unsigned long long>(Total.Errors),
        static_cast<unsigned long long>(Total.Degraded),
        static_cast<unsigned long long>(Total.Native),
        static_cast<unsigned long long>(Lost),
        static_cast<unsigned long long>(DuplicateIds),
        static_cast<unsigned long long>(Total.Mismatches), P50, P90, P99,
        P50, ColdCompileMillis, Speedup,
        static_cast<unsigned long long>(S.RecompilesDone),
        static_cast<unsigned long long>(S.RecompilesFailed));
    std::fclose(F);
    std::fprintf(stderr, "steno_loadgen: wrote %s\n", Path.c_str());
  } else {
    std::fprintf(stderr, "steno_loadgen: cannot write %s\n", Path.c_str());
  }

  bool Bad = Lost || DuplicateIds || Total.Mismatches || Total.Errors;
  return Bad ? 1 : 0;
}
