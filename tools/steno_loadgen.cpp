//===- tools/steno_loadgen.cpp - Closed-loop load generator --------------===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
//
// Drives an in-process serve::QueryService with N closed-loop clients
// (each waits for its response before sending the next request) over a
// mix of paper-shaped queries plus generated fuzz specs, verifying every
// Ok response against the reference interpreter and every response id
// for uniqueness. This is the serving-layer acceptance harness: it
// writes BENCH_serve.json and exits nonzero when anything was lost,
// duplicated, mismatched, or errored.
//
//   steno_loadgen --clients 8 --seconds 30 --seed 1     # CI configuration
//
// With --shards N the harness instead spawns N steno_serve worker
// processes (--serve-bin), fronts them with an in-process
// shard::ShardRouter, and drives the same closed-loop mix through the
// router — the sharded-serving acceptance harness. --chaos-kill-ms
// additionally SIGKILLs a round-robin victim worker mid-stream and
// respawns it after --chaos-down-ms; the audit then also requires zero
// timeouts and bounded retry latency, proving the router's exactly-once
// retry protocol absorbed every death.
//
//   steno_loadgen --clients 4 --seconds 10 --shards 3
//       --serve-bin ./steno_serve --chaos-kill-ms 2000   # chaos soak
//
// Exit status: 0 clean; 1 on lost/duplicate/mismatched/errored
// responses (and, sharded, timeouts or unbounded latency); 2 on usage
// or setup errors.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Diff.h"
#include "fuzz/Gen.h"
#include "serve/Serve.h"
#include "shard/Shard.h"
#include "shard/Spawn.h"
#include "steno/RefExec.h"
#include "support/Random.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unistd.h>
#include <unordered_set>
#include <vector>

using namespace steno;
using Clock = std::chrono::steady_clock;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: steno_loadgen [options]\n"
      "  --clients N        closed-loop client threads (default 8)\n"
      "  --seconds N        run duration (default 10)\n"
      "  --seed N           generated-spec seed (default 1)\n"
      "  --gen N            generated specs added to the mix (default 4)\n"
      "  --deadline-ms N    per-request deadline (default 5000)\n"
      "  --workers N        service execution pool (default 4)\n"
      "  --max-queue N      admission bound (default 64)\n"
      "  --compile-workers N  background JIT threads (default 1)\n"
      "  --no-recompile     stay on the interpreter backend\n"
      "sharded mode (spawns worker processes + an in-process router):\n"
      "  --shards N         drive N steno_serve workers via ShardRouter\n"
      "  --serve-bin PATH   steno_serve binary (required with --shards)\n"
      "  --shard-workers N  execution pool per worker (default 1)\n"
      "  --shard-no-recompile  workers stay on the interpreter\n"
      "  --socket-dir DIR   directory for worker sockets (default /tmp)\n"
      "  --chaos-kill-ms N  SIGKILL a round-robin worker every N ms\n"
      "  --chaos-down-ms N  dead time before the respawn (default 300)\n");
}

bool parseUnsigned(const char *S, unsigned long long &Out) {
  char *End = nullptr;
  Out = std::strtoull(S, &End, 10);
  return End && *End == '\0' && End != S;
}

/// The paper-shaped core of the query mix (EXPERIMENTS.md benchmarks,
/// restated as fuzz specs): Sum, Scale, filtered Count, Ret-pop's nested
/// flatten, Group, Sort, and the forced-sequential non-associative fold.
std::vector<fuzz::QuerySpec> paperMix() {
  using namespace fuzz;
  std::vector<QuerySpec> Mix;

  { // Sum: xs.Select(x => x*x).Sum()
    QuerySpec S;
    S.Sources.push_back({0, ElemTy::Double, DataClass::Uniform, 4096, 11});
    OpSpec Sel;
    Sel.K = OpK::Select;
    Sel.T = TransTmpl::Square;
    OpSpec Agg;
    Agg.K = OpK::Agg;
    Agg.A = AggKind::Sum;
    S.Ops = {Sel, Agg};
    Mix.push_back(S);
  }
  { // Scale: xs.Select(x => x * k).Sum() with a captured k
    QuerySpec S;
    S.Sources.push_back({0, ElemTy::Double, DataClass::Uniform, 4096, 12});
    S.HasCaptureD = true;
    S.CaptureD = 2.5;
    OpSpec Sel;
    Sel.K = OpK::Select;
    Sel.T = TransTmpl::CapScale;
    OpSpec Agg;
    Agg.K = OpK::Agg;
    Agg.A = AggKind::Sum;
    S.Ops = {Sel, Agg};
    Mix.push_back(S);
  }
  { // Filtered count: xs.Where(x => x > 10).Count()
    QuerySpec S;
    S.Sources.push_back({0, ElemTy::Double, DataClass::Skewed, 4096, 13});
    OpSpec Wh;
    Wh.K = OpK::Where;
    Wh.P = PredTmpl::GtC;
    Wh.DArg = 10.0;
    OpSpec Agg;
    Agg.K = OpK::Agg;
    Agg.A = AggKind::Count;
    S.Ops = {Wh, Agg};
    Mix.push_back(S);
  }
  { // Ret-pop shape: xs.SelectMany(ys).Sum() (Figure 11's flatten)
    QuerySpec S;
    S.Sources.push_back({0, ElemTy::Double, DataClass::Uniform, 256, 14});
    S.Sources.push_back({1, ElemTy::Double, DataClass::Uniform, 16, 15});
    OpSpec SM;
    SM.K = OpK::SelectMany;
    SM.Slot = 1;
    OpSpec Agg;
    Agg.K = OpK::Agg;
    Agg.A = AggKind::Sum;
    S.Ops = {SM, Agg};
    Mix.push_back(S);
  }
  { // Group: bucketed GroupByAggregate over a Gaussian-ish skew
    QuerySpec S;
    S.Sources.push_back({0, ElemTy::Double, DataClass::Skewed, 4096, 16});
    OpSpec GA;
    GA.K = OpK::GroupAgg;
    GA.Key = KeyTmpl::Bucket;
    GA.DArg = 25.0;
    GA.G = GroupStep::Sum;
    S.Ops = {GA};
    Mix.push_back(S);
  }
  { // Sort: xs.OrderBy(abs).ToArray()
    QuerySpec S;
    S.Sources.push_back({0, ElemTy::Double, DataClass::Uniform, 2048, 17});
    OpSpec Ord;
    Ord.K = OpK::OrderBy;
    Ord.Key = KeyTmpl::Abs;
    OpSpec Arr;
    Arr.K = OpK::ToArray;
    S.Ops = {Ord, Arr};
    Mix.push_back(S);
  }
  { // Non-associative fold: certified unsafe, forced sequential
    QuerySpec S;
    S.Sources.push_back({0, ElemTy::Int64, DataClass::Uniform, 2048, 18});
    OpSpec Agg;
    Agg.K = OpK::Agg;
    Agg.A = AggKind::FoldNonAssoc;
    S.Ops = {Agg};
    Mix.push_back(S);
  }
  return Mix;
}

struct MixEntry {
  std::string Text;
  serve::PreparedHandle Handle;
  QueryResult Expected;
};

struct ClientOutcome {
  std::uint64_t Sent = 0;
  std::uint64_t Ok = 0, Shed = 0, Timeouts = 0, Errors = 0;
  std::uint64_t Mismatches = 0;
  std::uint64_t Degraded = 0, Native = 0;
  std::vector<double> LatencyMicros;
  std::vector<std::uint64_t> Ids;
  std::string FirstMismatch;
};

bool resultsMatch(const QueryResult &Got, const QueryResult &Want) {
  if (Got.isScalar() != Want.isScalar() ||
      Got.rows().size() != Want.rows().size())
    return false;
  for (std::size_t I = 0; I != Got.rows().size(); ++I)
    if (!fuzz::fuzzValueNear(Got.rows()[I], Want.rows()[I]))
      return false;
  return true;
}

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  double Idx = P * static_cast<double>(Sorted.size() - 1);
  return Sorted[static_cast<std::size_t>(Idx + 0.5)];
}

/// A mix entry for sharded mode: the expected result comes from a local
/// buildSpec + reference run (the BuiltQuery stays alive because the
/// result may borrow its buffers), and the handle is a router routing
/// decision instead of a service prepared statement.
struct ShardMixEntry {
  std::string Text;
  shard::RoutedHandle Handle;
  std::shared_ptr<fuzz::BuiltQuery> Built;
  QueryResult Expected;
};

/// Sharded mode: spawn the worker fleet, front it with an in-process
/// ShardRouter, drive the closed-loop mix through the router, optionally
/// SIGKILL/respawn workers mid-stream, and audit. Returns the process
/// exit status.
int runSharded(unsigned Clients, unsigned Seconds, std::uint64_t Seed,
               unsigned GenCount, std::chrono::milliseconds Deadline,
               unsigned ShardCount, const std::string &ServeBin,
               unsigned ShardWorkers, bool ShardNoRecompile,
               const std::string &SocketDir, unsigned ChaosKillMs,
               unsigned ChaosDownMs) {
  // Writes race against chaos kills; a dead worker's socket must error,
  // not signal.
  std::signal(SIGPIPE, SIG_IGN);

  // Spawn the fleet.
  std::vector<std::string> ExtraArgs = {"--workers",
                                        std::to_string(ShardWorkers)};
  if (ShardNoRecompile)
    ExtraArgs.push_back("--no-recompile");
  std::vector<shard::WorkerProcess> Workers;
  for (unsigned I = 0; I != ShardCount; ++I) {
    std::string Sock = SocketDir + "/steno-shard-" +
                       std::to_string(::getpid()) + "-" +
                       std::to_string(I) + ".sock";
    Workers.emplace_back(ServeBin, Sock, ExtraArgs);
    std::string Err;
    if (!Workers.back().start(&Err)) {
      std::fprintf(stderr, "steno_loadgen: %s\n", Err.c_str());
      for (shard::WorkerProcess &W : Workers)
        W.kill9();
      return 2;
    }
  }

  shard::RouterOptions ROpts;
  for (const shard::WorkerProcess &W : Workers)
    ROpts.ShardSockets.push_back(W.socket());
  ROpts.DefaultDeadline = Deadline;
  // A sub-request must be able to out-wait a chaos kill: dead time plus
  // the respawned worker's startup, with slack.
  ROpts.RetryBudget = std::chrono::milliseconds(
      std::max<std::uint64_t>(Deadline.count(),
                              ChaosDownMs + 5000));
  shard::ShardRouter Router(ROpts);

  // Assemble the mix: the paper queries plus prescreened generated
  // specs, each with a locally computed reference result.
  std::vector<fuzz::QuerySpec> Specs = paperMix();
  {
    support::SplitMix64 Rng(Seed);
    fuzz::GenOptions GOpts;
    unsigned Added = 0, Attempts = 0;
    while (Added < GenCount && Attempts < GenCount * 50 + 50) {
      ++Attempts;
      fuzz::QuerySpec S = fuzz::generateSpec(Rng, GOpts);
      std::string Err;
      if (Router.prepare(fuzz::serializeSpec(S), &Err)) {
        Specs.push_back(S);
        ++Added;
      }
    }
  }
  std::vector<ShardMixEntry> Mix;
  for (const fuzz::QuerySpec &S : Specs) {
    ShardMixEntry E;
    E.Text = fuzz::serializeSpec(S);
    std::string Err;
    E.Handle = Router.prepare(E.Text, &Err);
    if (!E.Handle) {
      std::fprintf(stderr, "steno_loadgen: router prepare failed: %s\n%s\n",
                   Err.c_str(), E.Text.c_str());
      for (shard::WorkerProcess &W : Workers)
        W.kill9();
      return 2;
    }
    E.Built = std::make_shared<fuzz::BuiltQuery>();
    if (!fuzz::buildSpec(S, *E.Built, &Err)) {
      std::fprintf(stderr, "steno_loadgen: buildSpec failed: %s\n",
                   Err.c_str());
      for (shard::WorkerProcess &W : Workers)
        W.kill9();
      return 2;
    }
    E.Expected = runReference(E.Built->Q, E.Built->B);
    Mix.push_back(std::move(E));
  }
  shard::ShardRouter::Stats PrepStats = Router.stats();
  std::fprintf(stderr,
               "steno_loadgen: %zu specs in the mix across %u shards "
               "(%llu split, %llu fallback)\n",
               Mix.size(), Router.shards(),
               static_cast<unsigned long long>(PrepStats.SplitPrepared),
               static_cast<unsigned long long>(PrepStats.FallbackPrepared));

  // The chaos schedule: SIGKILL a round-robin victim every ChaosKillMs,
  // leave it dead for ChaosDownMs, respawn, repeat until the run ends.
  Clock::time_point End = Clock::now() + std::chrono::seconds(Seconds);
  std::atomic<bool> ChaosFailed{false};
  std::atomic<std::uint64_t> Kills{0};
  std::thread Chaos;
  if (ChaosKillMs > 0) {
    Chaos = std::thread([&] {
      unsigned Victim = 0;
      while (Clock::now() < End && !ChaosFailed.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(ChaosKillMs));
        if (Clock::now() >= End)
          break;
        unsigned V = Victim++ % Workers.size();
        std::fprintf(stderr, "steno_loadgen: chaos kill shard %u (pid %d)\n",
                     V, static_cast<int>(Workers[V].pid()));
        Workers[V].kill9();
        ++Kills;
        std::this_thread::sleep_for(std::chrono::milliseconds(ChaosDownMs));
        std::string Err;
        if (!Workers[V].start(&Err)) {
          std::fprintf(stderr, "steno_loadgen: chaos respawn failed: %s\n",
                       Err.c_str());
          ChaosFailed.store(true);
        }
      }
    });
  }

  // The closed loop, against the router.
  std::vector<ClientOutcome> Outcomes(Clients);
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C < Clients; ++C) {
    Threads.emplace_back([&, C] {
      ClientOutcome &Out = Outcomes[C];
      std::size_t Cursor = C; // stagger the mix across clients
      while (Clock::now() < End) {
        const ShardMixEntry &E = Mix[Cursor++ % Mix.size()];
        ++Out.Sent;
        Clock::time_point T0 = Clock::now();
        serve::Response R = Router.execute(E.Handle, Deadline);
        double Micros = std::chrono::duration<double, std::micro>(
                            Clock::now() - T0)
                            .count();
        Out.LatencyMicros.push_back(Micros);
        Out.Ids.push_back(R.Id);
        switch (R.St) {
        case serve::Status::Ok:
          ++Out.Ok;
          if (R.Degraded)
            ++Out.Degraded;
          if (R.NativePlan)
            ++Out.Native;
          if (!resultsMatch(R.Result, E.Expected)) {
            ++Out.Mismatches;
            if (Out.FirstMismatch.empty())
              Out.FirstMismatch = E.Text;
          }
          break;
        case serve::Status::Shed:
          ++Out.Shed;
          break;
        case serve::Status::Timeout:
          ++Out.Timeouts;
          break;
        case serve::Status::Error:
          ++Out.Errors;
          break;
        }
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  if (Chaos.joinable())
    Chaos.join();
  for (shard::WorkerProcess &W : Workers) {
    W.kill9();
    ::unlink(W.socket().c_str());
  }

  // Merge and audit. Sharded mode is stricter than in-process mode:
  // with the retry budget sized to out-wait every chaos kill, timeouts
  // and unbounded latency are protocol failures too.
  ClientOutcome Total;
  std::vector<double> Lat;
  std::unordered_set<std::uint64_t> SeenIds;
  std::uint64_t DuplicateIds = 0, Responses = 0;
  for (const ClientOutcome &O : Outcomes) {
    Total.Sent += O.Sent;
    Total.Ok += O.Ok;
    Total.Shed += O.Shed;
    Total.Timeouts += O.Timeouts;
    Total.Errors += O.Errors;
    Total.Mismatches += O.Mismatches;
    Total.Degraded += O.Degraded;
    Total.Native += O.Native;
    if (Total.FirstMismatch.empty())
      Total.FirstMismatch = O.FirstMismatch;
    Lat.insert(Lat.end(), O.LatencyMicros.begin(), O.LatencyMicros.end());
    Responses += O.Ids.size();
    for (std::uint64_t Id : O.Ids)
      if (Id != 0 && !SeenIds.insert(Id).second)
        ++DuplicateIds;
  }
  std::uint64_t Lost = Total.Sent - Responses;
  std::sort(Lat.begin(), Lat.end());
  double P50 = percentile(Lat, 0.50), P99 = percentile(Lat, 0.99);
  double MaxLat = Lat.empty() ? 0 : Lat.back();
  double Rps = Seconds > 0 ? static_cast<double>(Total.Sent) / Seconds : 0;
  double LatBoundMicros =
      (static_cast<double>(Deadline.count()) +
       static_cast<double>(ROpts.RetryBudget.count()) + 2000.0) *
      1000.0;
  bool LatUnbounded = MaxLat > LatBoundMicros;

  shard::ShardRouter::Stats RS = Router.stats();
  std::printf("steno_loadgen: sharded %llu requests in %us (%.0f rps), "
              "%llu ok / %llu shed / %llu timeout / %llu error\n",
              static_cast<unsigned long long>(Total.Sent), Seconds, Rps,
              static_cast<unsigned long long>(Total.Ok),
              static_cast<unsigned long long>(Total.Shed),
              static_cast<unsigned long long>(Total.Timeouts),
              static_cast<unsigned long long>(Total.Errors));
  std::printf("  latency p50 %.1fus p99 %.1fus max %.1fus "
              "(bound %.0fus); native %llu\n",
              P50, P99, MaxLat, LatBoundMicros,
              static_cast<unsigned long long>(Total.Native));
  std::printf("  lost %llu, duplicate ids %llu, mismatches %llu; "
              "chaos kills %llu\n",
              static_cast<unsigned long long>(Lost),
              static_cast<unsigned long long>(DuplicateIds),
              static_cast<unsigned long long>(Total.Mismatches),
              static_cast<unsigned long long>(Kills.load()));
  std::printf("  router: %llu split / %llu fallback execs, %llu retries, "
              "%llu reprepares, %llu conn deaths\n",
              static_cast<unsigned long long>(RS.SplitExecs),
              static_cast<unsigned long long>(RS.FallbackExecs),
              static_cast<unsigned long long>(RS.Retries),
              static_cast<unsigned long long>(RS.Reprepares),
              static_cast<unsigned long long>(RS.Deaths));
  std::printf("  %s\n", Router.statsJson().c_str());
  if (!Total.FirstMismatch.empty())
    std::fprintf(stderr, "steno_loadgen: first mismatching spec:\n%s\n",
                 Total.FirstMismatch.c_str());
  if (LatUnbounded)
    std::fprintf(stderr,
                 "steno_loadgen: retry latency exceeded the bound\n");
  if (ChaosFailed.load())
    std::fprintf(stderr, "steno_loadgen: chaos respawn failed\n");

  bool Bad = Lost || DuplicateIds || Total.Mismatches || Total.Errors ||
             Total.Timeouts || LatUnbounded || ChaosFailed.load();
  return Bad ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Clients = 8;
  unsigned Seconds = 10;
  std::uint64_t Seed = 1;
  unsigned GenCount = 4;
  std::chrono::milliseconds Deadline{5000};
  serve::ServeOptions Opts;
  unsigned ShardCount = 0;
  std::string ServeBin;
  std::string SocketDir = "/tmp";
  unsigned ShardWorkers = 1;
  bool ShardNoRecompile = false;
  unsigned ChaosKillMs = 0;
  unsigned ChaosDownMs = 300;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "steno_loadgen: %s needs a value\n",
                     Arg.c_str());
        std::exit(2);
      }
      return Argv[++I];
    };
    unsigned long long N = 0;
    if (Arg == "--clients" && parseUnsigned(next(), N)) {
      Clients = static_cast<unsigned>(N);
    } else if (Arg == "--seconds" && parseUnsigned(next(), N)) {
      Seconds = static_cast<unsigned>(N);
    } else if (Arg == "--seed" && parseUnsigned(next(), N)) {
      Seed = N;
    } else if (Arg == "--gen" && parseUnsigned(next(), N)) {
      GenCount = static_cast<unsigned>(N);
    } else if (Arg == "--deadline-ms" && parseUnsigned(next(), N)) {
      Deadline = std::chrono::milliseconds(N);
    } else if (Arg == "--workers" && parseUnsigned(next(), N)) {
      Opts.Workers = static_cast<unsigned>(N);
    } else if (Arg == "--max-queue" && parseUnsigned(next(), N)) {
      Opts.MaxQueue = static_cast<unsigned>(N);
    } else if (Arg == "--compile-workers" && parseUnsigned(next(), N)) {
      Opts.CompileWorkers = static_cast<unsigned>(N);
    } else if (Arg == "--no-recompile") {
      Opts.BackgroundRecompile = false;
    } else if (Arg == "--shards" && parseUnsigned(next(), N)) {
      ShardCount = static_cast<unsigned>(N);
    } else if (Arg == "--serve-bin") {
      ServeBin = next();
    } else if (Arg == "--socket-dir") {
      SocketDir = next();
    } else if (Arg == "--shard-workers" && parseUnsigned(next(), N)) {
      ShardWorkers = static_cast<unsigned>(N);
    } else if (Arg == "--shard-no-recompile") {
      ShardNoRecompile = true;
    } else if (Arg == "--chaos-kill-ms" && parseUnsigned(next(), N)) {
      ChaosKillMs = static_cast<unsigned>(N);
    } else if (Arg == "--chaos-down-ms" && parseUnsigned(next(), N)) {
      ChaosDownMs = static_cast<unsigned>(N);
    } else {
      usage();
      return 2;
    }
  }
  if (Clients == 0) {
    usage();
    return 2;
  }
  if (ShardCount > 0) {
    if (ServeBin.empty()) {
      std::fprintf(stderr, "steno_loadgen: --shards needs --serve-bin\n");
      return 2;
    }
    return runSharded(Clients, Seconds, Seed, GenCount, Deadline,
                      ShardCount, ServeBin, ShardWorkers, ShardNoRecompile,
                      SocketDir, ChaosKillMs, ChaosDownMs);
  }

  serve::QueryService Svc(Opts);
  std::shared_ptr<serve::Session> Setup = Svc.openSession();

  // Assemble the mix: the paper queries plus prescreened generated specs.
  std::vector<fuzz::QuerySpec> Specs = paperMix();
  {
    support::SplitMix64 Rng(Seed);
    fuzz::GenOptions GOpts;
    unsigned Added = 0, Attempts = 0;
    while (Added < GenCount && Attempts < GenCount * 50 + 50) {
      ++Attempts;
      fuzz::QuerySpec S = fuzz::generateSpec(Rng, GOpts);
      std::string Err;
      if (Setup->prepare(fuzz::serializeSpec(S), &Err)) {
        Specs.push_back(S);
        ++Added;
      }
    }
  }

  // Prepare each spec once (handles are shared by every client — exactly
  // the long-lived prepared-statement usage the cache exists for) and
  // compute its expected result with the reference interpreter.
  std::vector<MixEntry> Mix;
  for (const fuzz::QuerySpec &S : Specs) {
    MixEntry E;
    E.Text = fuzz::serializeSpec(S);
    std::string Err;
    E.Handle = Setup->prepare(E.Text, &Err);
    if (!E.Handle) {
      std::fprintf(stderr, "steno_loadgen: prepare failed: %s\n%s\n",
                   Err.c_str(), E.Text.c_str());
      return 2;
    }
    E.Expected = runReference(E.Handle->query(), E.Handle->bindings());
    Mix.push_back(std::move(E));
  }
  std::fprintf(stderr, "steno_loadgen: %zu specs in the mix\n", Mix.size());

  // The closed loop: each client owns a session, cycles the mix, and
  // verifies in place.
  Clock::time_point End = Clock::now() + std::chrono::seconds(Seconds);
  std::vector<ClientOutcome> Outcomes(Clients);
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C < Clients; ++C) {
    Threads.emplace_back([&, C] {
      ClientOutcome &Out = Outcomes[C];
      std::shared_ptr<serve::Session> Sess = Svc.openSession();
      std::size_t Cursor = C; // stagger the mix across clients
      while (Clock::now() < End) {
        const MixEntry &E = Mix[Cursor++ % Mix.size()];
        ++Out.Sent;
        Clock::time_point T0 = Clock::now();
        serve::Response R = Sess->execute(E.Handle, Deadline);
        double Micros = std::chrono::duration<double, std::micro>(
                            Clock::now() - T0)
                            .count();
        Out.LatencyMicros.push_back(Micros);
        Out.Ids.push_back(R.Id);
        switch (R.St) {
        case serve::Status::Ok:
          ++Out.Ok;
          if (R.Degraded)
            ++Out.Degraded;
          if (R.NativePlan)
            ++Out.Native;
          if (!resultsMatch(R.Result, E.Expected)) {
            ++Out.Mismatches;
            if (Out.FirstMismatch.empty())
              Out.FirstMismatch = E.Text;
          }
          break;
        case serve::Status::Shed:
          ++Out.Shed;
          break;
        case serve::Status::Timeout:
          ++Out.Timeouts;
          break;
        case serve::Status::Error:
          ++Out.Errors;
          break;
        }
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  Svc.drainRecompiles();

  // Merge and audit.
  ClientOutcome Total;
  std::vector<double> Lat;
  std::unordered_set<std::uint64_t> SeenIds;
  std::uint64_t DuplicateIds = 0, Responses = 0;
  for (const ClientOutcome &O : Outcomes) {
    Total.Sent += O.Sent;
    Total.Ok += O.Ok;
    Total.Shed += O.Shed;
    Total.Timeouts += O.Timeouts;
    Total.Errors += O.Errors;
    Total.Mismatches += O.Mismatches;
    Total.Degraded += O.Degraded;
    Total.Native += O.Native;
    if (Total.FirstMismatch.empty())
      Total.FirstMismatch = O.FirstMismatch;
    Lat.insert(Lat.end(), O.LatencyMicros.begin(), O.LatencyMicros.end());
    Responses += O.Ids.size();
    for (std::uint64_t Id : O.Ids)
      if (Id != 0 && !SeenIds.insert(Id).second)
        ++DuplicateIds;
  }
  std::uint64_t Lost = Total.Sent - Responses;
  std::sort(Lat.begin(), Lat.end());
  double P50 = percentile(Lat, 0.50), P90 = percentile(Lat, 0.90),
         P99 = percentile(Lat, 0.99);
  double Rps = Seconds > 0 ? static_cast<double>(Total.Sent) / Seconds : 0;

  // The amortization headline: a prepared execution vs the one-off
  // native compile the background upgrade paid (§7.1 break-even).
  double ColdCompileMillis = 0;
  unsigned NativeHandles = 0;
  for (const MixEntry &E : Mix)
    if (E.Handle->nativeReady()) {
      ColdCompileMillis += E.Handle->nativeCompileMillis();
      ++NativeHandles;
    }
  if (NativeHandles)
    ColdCompileMillis /= NativeHandles;
  double Speedup =
      P50 > 0 && ColdCompileMillis > 0 ? ColdCompileMillis * 1000 / P50 : 0;

  serve::QueryService::Stats S = Svc.stats();
  std::printf("steno_loadgen: %llu requests in %us (%.0f rps), "
              "%llu ok / %llu shed / %llu timeout / %llu error\n",
              static_cast<unsigned long long>(Total.Sent), Seconds, Rps,
              static_cast<unsigned long long>(Total.Ok),
              static_cast<unsigned long long>(Total.Shed),
              static_cast<unsigned long long>(Total.Timeouts),
              static_cast<unsigned long long>(Total.Errors));
  std::printf("  latency p50 %.1fus p90 %.1fus p99 %.1fus; degraded %llu, "
              "native %llu\n",
              P50, P90, P99,
              static_cast<unsigned long long>(Total.Degraded),
              static_cast<unsigned long long>(Total.Native));
  std::printf("  lost %llu, duplicate ids %llu, mismatches %llu\n",
              static_cast<unsigned long long>(Lost),
              static_cast<unsigned long long>(DuplicateIds),
              static_cast<unsigned long long>(Total.Mismatches));
  if (ColdCompileMillis > 0)
    std::printf("  cold native compile %.1fms vs prepared p50 %.1fus "
                "(%.0fx amortization)\n",
                ColdCompileMillis, P50, Speedup);
  if (!Total.FirstMismatch.empty())
    std::fprintf(stderr, "steno_loadgen: first mismatching spec:\n%s\n",
                 Total.FirstMismatch.c_str());

  const char *Dir = std::getenv("STENO_BENCH_OUT");
  std::string Path =
      (Dir && *Dir ? std::string(Dir) + "/" : std::string()) +
      "BENCH_serve.json";
  if (std::FILE *F = std::fopen(Path.c_str(), "w")) {
    std::fprintf(
        F,
        "{\n  \"binary\": \"serve\",\n  \"clients\": %u,\n"
        "  \"seconds\": %u,\n  \"specs\": %zu,\n  \"requests\": %llu,\n"
        "  \"throughput_rps\": %.1f,\n  \"ok\": %llu,\n  \"shed\": %llu,\n"
        "  \"timeouts\": %llu,\n  \"errors\": %llu,\n"
        "  \"degraded_runs\": %llu,\n  \"native_runs\": %llu,\n"
        "  \"lost\": %llu,\n  \"duplicate_ids\": %llu,\n"
        "  \"mismatches\": %llu,\n  \"latency_p50_micros\": %.1f,\n"
        "  \"latency_p90_micros\": %.1f,\n  \"latency_p99_micros\": %.1f,\n"
        "  \"prepared_p50_micros\": %.1f,\n"
        "  \"cold_compile_millis\": %.2f,\n"
        "  \"amortization_x\": %.1f,\n"
        "  \"recompiles_done\": %llu,\n  \"recompiles_failed\": %llu\n}\n",
        Clients, Seconds, Mix.size(),
        static_cast<unsigned long long>(Total.Sent), Rps,
        static_cast<unsigned long long>(Total.Ok),
        static_cast<unsigned long long>(Total.Shed),
        static_cast<unsigned long long>(Total.Timeouts),
        static_cast<unsigned long long>(Total.Errors),
        static_cast<unsigned long long>(Total.Degraded),
        static_cast<unsigned long long>(Total.Native),
        static_cast<unsigned long long>(Lost),
        static_cast<unsigned long long>(DuplicateIds),
        static_cast<unsigned long long>(Total.Mismatches), P50, P90, P99,
        P50, ColdCompileMillis, Speedup,
        static_cast<unsigned long long>(S.RecompilesDone),
        static_cast<unsigned long long>(S.RecompilesFailed));
    std::fclose(F);
    std::fprintf(stderr, "steno_loadgen: wrote %s\n", Path.c_str());
  } else {
    std::fprintf(stderr, "steno_loadgen: cannot write %s\n", Path.c_str());
  }

  bool Bad = Lost || DuplicateIds || Total.Mismatches || Total.Errors;
  return Bad ? 1 : 0;
}
