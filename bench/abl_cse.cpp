//===- bench/abl_cse.cpp - Ablation E: §9 CSE ------------------*- C++ -*-===//
//
// §9 names common-subexpression elimination as the next optimization
// Steno's conservative design left on the table. This repo implements it
// (expr/Cse.h); this ablation measures the same query compiled with the
// pass off and on, for workloads whose inlined lambdas repeat work:
//
//   dist2:  sum((p[d]-c[d]) * (p[d]-c[d])) over points (the k-means
//           distance kernel — the subtraction is computed twice without
//           CSE)
//   poly:   sqrt(x*x+1) / (sqrt(x*x+1) + 2) per element
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "expr/Dsl.h"
#include "steno/Steno.h"

#include <cstdio>

using namespace steno;
using namespace steno::bench;
using namespace steno::expr;
using namespace steno::expr::dsl;
using query::Query;

namespace {

double timeQuery(const Query &Q, const Bindings &B, bool Cse,
                 const char *Name) {
  CompileOptions Options;
  Options.EnableCse = Cse;
  Options.Name = Name;
  CompiledQuery CQ = compileQuery(Q, Options);
  return bestSeconds(
      [&] {
        doNotOptimize(
            static_cast<std::int64_t>(CQ.run(B).rows().size()));
      },
      3);
}

void report(const char *Name, double OffS, double OnS) {
  std::printf("%-8s %14.1f %14.1f %9.2fx\n", Name, OffS * 1e3, OnS * 1e3,
              OffS / OnS);
}

} // namespace

int main() {
  header("Ablation E: common-subexpression elimination (§9)");
  std::printf("\n%-8s %14s %14s %9s\n", "query", "CSE off (ms)",
              "CSE on (ms)", "gain");

  // dist2 kernel: points x centroid-row, repeated subtraction.
  {
    const std::int64_t Dim = 16;
    const std::int64_t NumPoints = scaled(500000);
    std::vector<double> Points =
        uniformDoubles(NumPoints * Dim, 61, -1, 1);
    std::vector<double> Centroid = uniformDoubles(Dim, 62, -1, 1);
    Bindings B;
    B.bindPointArray(0, Points.data(), NumPoints, Dim);
    B.bindDoubleArray(1, Centroid.data(), Dim);

    auto P = param("p", Type::vecTy());
    auto D = param("d", Type::int64Ty());
    E DimE = E(Dim);
    Query Dist2 =
        Query::range(E(0), DimE)
            .select(lambda({D}, (P[D] - slice(1, E(0), DimE)[D]) *
                                    (P[D] - slice(1, E(0), DimE)[D])))
            .sum();
    Query Q = Query::pointArray(0).selectNested(P, Dist2).sum();
    report("dist2", timeQuery(Q, B, false, "dist2_off"),
           timeQuery(Q, B, true, "dist2_on"));
  }

  // poly: per-element repeated sqrt.
  {
    const std::int64_t N = scaled(5000000);
    std::vector<double> Xs = uniformDoubles(N, 63, 0, 10);
    Bindings B;
    B.bindDoubleArray(0, Xs.data(), N);
    auto X = param("x", Type::doubleTy());
    E Root = sqrt(X * X + 1.0);
    Query Q = Query::doubleArray(0)
                  .select(lambda({X}, Root / (Root + 2.0)))
                  .sum();
    report("poly", timeQuery(Q, B, false, "poly_off"),
           timeQuery(Q, B, true, "poly_on"));
  }

  std::printf("\n(the host compiler can CSE pure arithmetic itself, so "
              "gains appear where it cannot prove it profitable or the "
              "expression defeats its heuristics — e.g. repeated libm "
              "calls)\n");
  return 0;
}
