//===- bench/abl_overhead.cpp - Ablation C: overhead anatomy ---*- C++ -*-===//
//
// Decomposes the per-element overheads the paper's introduction names:
//   1. two virtual calls per element per operator (iterator chains of
//      increasing depth vs the fused equivalents),
//   2. the indirect call into the user function (std::function vs an
//      inlined lambda),
//   3. the state-machine logic of stateful operators.
//
// Built on google-benchmark so per-element nanosecond costs come out of
// its calibrated timing loop.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "fused/Fused.h"
#include "linq/Linq.h"

#include "benchmark/benchmark.h"

#include <functional>
#include <vector>

using namespace steno;

namespace {

const std::int64_t N = 1 << 16; // items per iteration

const std::vector<double> &data() {
  static const std::vector<double> Xs = bench::uniformDoubles(N, 41, 0, 1);
  return Xs;
}

/// Iterator chain of the requested depth: Depth stacked Selects, then Sum.
void linqChain(benchmark::State &State) {
  const std::vector<double> &Xs = data();
  int Depth = static_cast<int>(State.range(0));
  linq::Seq<double> S = linq::fromSpan(Xs.data(), Xs.size());
  for (int I = 0; I < Depth; ++I)
    S = S.select([](double X) { return X + 1.0; });
  for (auto _ : State) {
    benchmark::DoNotOptimize(S.sum());
  }
  State.SetItemsProcessed(State.iterations() * N);
}

/// The fused equivalent: the compiler collapses the whole chain.
template <int Depth> double fusedChainOnce(const std::vector<double> &Xs) {
  double Acc = 0;
  for (double X : Xs) {
    double V = X;
    for (int I = 0; I < Depth; ++I)
      V += 1.0;
    Acc += V;
  }
  return Acc;
}

template <int Depth> void fusedChain(benchmark::State &State) {
  const std::vector<double> &Xs = data();
  for (auto _ : State)
    benchmark::DoNotOptimize(fusedChainOnce<Depth>(Xs));
  State.SetItemsProcessed(State.iterations() * N);
}

/// Indirect user-function call per element (the delegate cost).
void stdFunctionCall(benchmark::State &State) {
  const std::vector<double> &Xs = data();
  std::function<double(double)> Fn = [](double X) { return X * X; };
  benchmark::DoNotOptimize(Fn);
  for (auto _ : State) {
    double Acc = 0;
    for (double X : Xs)
      Acc += Fn(X);
    benchmark::DoNotOptimize(Acc);
  }
  State.SetItemsProcessed(State.iterations() * N);
}

/// The same body inlined.
void inlinedCall(benchmark::State &State) {
  const std::vector<double> &Xs = data();
  for (auto _ : State) {
    double Acc = 0;
    for (double X : Xs)
      Acc += X * X;
    benchmark::DoNotOptimize(Acc);
  }
  State.SetItemsProcessed(State.iterations() * N);
}

/// State-machine cost: a Where that passes everything, LINQ vs fused.
void linqWherePassAll(benchmark::State &State) {
  const std::vector<double> &Xs = data();
  auto S = linq::fromSpan(Xs.data(), Xs.size())
               .where([](double X) { return X >= 0.0; });
  for (auto _ : State)
    benchmark::DoNotOptimize(S.sum());
  State.SetItemsProcessed(State.iterations() * N);
}

void fusedWherePassAll(benchmark::State &State) {
  const std::vector<double> &Xs = data();
  for (auto _ : State) {
    double V = fused::from(Xs) |
               fused::where([](double X) { return X >= 0.0; }) |
               fused::sum();
    benchmark::DoNotOptimize(V);
  }
  State.SetItemsProcessed(State.iterations() * N);
}

} // namespace

BENCHMARK(linqChain)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(fusedChain<1>);
BENCHMARK(fusedChain<2>);
BENCHMARK(fusedChain<4>);
BENCHMARK(fusedChain<8>);
BENCHMARK(stdFunctionCall);
BENCHMARK(inlinedCall);
BENCHMARK(linqWherePassAll);
BENCHMARK(fusedWherePassAll);

BENCHMARK_MAIN();
