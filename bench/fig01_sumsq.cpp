//===- bench/fig01_sumsq.cpp - Reproduces paper Figure 1 -------*- C++ -*-===//
//
// Figure 1: "Relative execution time for computing the sum of squares of
// 10^7 doubles using LINQ, an imperative loop, and a Steno-optimized
// query. Steno achieves a 7.4x speedup over LINQ." The paper normalizes
// to LINQ = 100%; the for loop and Steno land at 13.5% / 13.6%.
//
// This binary reports the same three bars (plus the static fused variant)
// normalized the same way.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "expr/Dsl.h"
#include "fused/Fused.h"
#include "linq/Linq.h"
#include "steno/Steno.h"

#include <cstdio>

using namespace steno;
using namespace steno::bench;

int main() {
  const std::int64_t N = scaled(10000000); // the paper's 10^7 doubles
  std::vector<double> Xs = uniformDoubles(N, 1);
  header("Figure 1: sum of squares of " + std::to_string(N) +
         " doubles");

  // LINQ: xs.Select(x => x * x).Sum() through lazy iterators.
  double LinqS = bestSeconds([&] {
    double V = linq::fromSpan(Xs.data(), Xs.size())
                   .select([](double X) { return X * X; })
                   .sum();
    doNotOptimize(V);
  });

  // Imperative for loop.
  double LoopS = bestSeconds([&] {
    double Acc = 0;
    for (double X : Xs)
      Acc += X * X;
    doNotOptimize(Acc);
  });

  // Steno: the declarative query, optimized and JIT-compiled once (the
  // figure's Steno bar excludes the one-off compilation, which §7.1
  // reports separately; we print it for reference).
  using namespace steno::expr;
  using namespace steno::expr::dsl;
  auto X = param("x", Type::doubleTy());
  query::Query Q = query::Query::doubleArray(0)
                       .select(lambda({X}, X * X))
                       .sum();
  CompiledQuery CQ = compileQuery(Q, {});
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), N);
  double StenoS = bestSeconds([&] {
    doNotOptimize(CQ.run(B).scalarValue().asDouble());
  });

  // Static fused (the §9 compile-time endpoint).
  double FusedS = bestSeconds([&] {
    double V = fused::from(Xs) |
               fused::select([](double V2) { return V2 * V2; }) |
               fused::sum();
    doNotOptimize(V);
  });

  std::printf("\n%-22s %12s %14s %10s\n", "variant", "time (ms)",
              "rel. to LINQ", "speedup");
  auto Row = [&](const char *Name, double S) {
    std::printf("%-22s %12.1f %13.1f%% %9.2fx\n", Name, S * 1e3,
                100.0 * S / LinqS, LinqS / S);
  };
  Row("LINQ .Sum()", LinqS);
  Row("for loop", LoopS);
  Row("Steno .Sum() (jit)", StenoS);
  Row("Steno (static fused)", FusedS);
  std::printf("\none-off Steno compile+load: %.0f ms (paper: ~69 ms with "
              "csc; §7.1)\n",
              CQ.compileMillis());
  std::printf("paper's Figure 1: for loop 13.5%%, Steno 13.6%%, "
              "7.4x speedup over LINQ\n");

  JsonReport Json("fig01_sumsq");
  Json.add("linq_sum", LinqS, N);
  Json.add("for_loop", LoopS, N);
  Json.add("steno_jit", StenoS, N);
  Json.add("static_fused", FusedS, N);
  return 0;
}
