//===- bench/analysis_overhead.cpp - Cost of the analyze phase -*- C++ -*-===//
//
// Measures what STENO_ANALYZE=strict costs relative to off, on the
// Figure 1 and Figure 13 workloads:
//
//  - run-time ns/op of the compiled query (must be identical: analysis
//    is a pure compile phase and generates no code),
//  - compile-time per compileQuery with the Interp backend (isolates the
//    lower/validate/analyze/codegen pipeline from the external JIT
//    compiler, so the analyze share is visible).
//
// Results land in BENCH_analysis_overhead.json.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "expr/Dsl.h"
#include "steno/Steno.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace steno;
using namespace steno::bench;
using namespace steno::expr;
using namespace steno::expr::dsl;
using query::Query;

namespace {

CompileOptions opts(analysis::Mode Mode, Backend Exec, const char *Name) {
  CompileOptions O;
  O.Analyze = Mode;
  O.Exec = Exec;
  O.Name = Name;
  return O;
}

/// Best-of seconds for one compile with the Interp backend (no JIT), K
/// compiles per timed sample for clock resolution.
double compileSeconds(const Query &Q, analysis::Mode Mode,
                      const char *Name) {
  const int K = 20;
  return bestSeconds(
             [&] {
               for (int I = 0; I < K; ++I) {
                 CompiledQuery CQ =
                     compileQuery(Q, opts(Mode, Backend::Interp, Name));
                 doNotOptimize(
                     static_cast<std::int64_t>(CQ.generatedSource().size()));
               }
             },
             /*Reps=*/5) /
         K;
}

/// Best-of seconds for one run of the Native-compiled query.
double runSeconds(const Query &Q, analysis::Mode Mode, const char *Name,
                  const Bindings &B) {
  CompiledQuery CQ = compileQuery(Q, opts(Mode, Backend::Native, Name));
  return bestSeconds([&] {
    doNotOptimize(static_cast<std::int64_t>(CQ.run(B).rows().size()));
  });
}

void measure(JsonReport &Json, const char *Name, const Query &Q,
             const Bindings &B, std::int64_t Items) {
  double RunStrict = runSeconds(Q, analysis::Mode::Strict, Name, B);
  double RunOff = runSeconds(Q, analysis::Mode::Off, Name, B);
  double CompStrict = compileSeconds(Q, analysis::Mode::Strict, Name);
  double CompOff = compileSeconds(Q, analysis::Mode::Off, Name);

  std::printf("%-14s run %8.3f / %8.3f ns/op (strict/off, %+5.2f%%)   "
              "compile %8.1f / %8.1f us (analyze share %.1f%%)\n",
              Name, RunStrict * 1e9 / static_cast<double>(Items),
              RunOff * 1e9 / static_cast<double>(Items),
              100.0 * (RunStrict / RunOff - 1.0), CompStrict * 1e6,
              CompOff * 1e6, 100.0 * (1.0 - CompOff / CompStrict));

  std::string P = Name;
  Json.add(P + "_run_strict", RunStrict, Items);
  Json.add(P + "_run_off", RunOff, Items);
  Json.add(P + "_compile_strict", CompStrict, 1, 5);
  Json.add(P + "_compile_off", CompOff, 1, 5);
}

} // namespace

int main() {
  JsonReport Json("analysis_overhead");
  const std::int64_t N = scaled(10000000);
  std::vector<double> Xs = uniformDoubles(N, 1);
  std::vector<double> Gs = mixtureOfGaussians(scaled(1000000), 2);

  header("Analysis overhead: STENO_ANALYZE=strict vs off");

  auto X = param("x", Type::doubleTy());
  auto A = param("a", Type::doubleTy());

  // Figure 1: sum of squares.
  Bindings B1;
  B1.bindDoubleArray(0, Xs.data(), N);
  measure(Json, "fig01_sumsq",
          Query::doubleArray(0).select(lambda({X}, X * X)).sum(), B1, N);

  // Figure 13 Sum.
  measure(Json, "fig13_sum", Query::doubleArray(0).sum(), B1, N);

  // Figure 13 Group: binned histogram-style aggregation (dense keys).
  const std::int64_t Bins = 100;
  Bindings B2;
  B2.bindDoubleArray(0, Gs.data(),
                     static_cast<std::int64_t>(Gs.size()));
  Query Group = Query::doubleArray(0).groupByAggregateDense(
      lambda({X}, toInt64(X / 10.0)), E(Bins), E(0.0),
      lambda({A, X}, A + 1.0));
  measure(Json, "fig13_group", Group, B2,
          static_cast<std::int64_t>(Gs.size()));

  return 0;
}
