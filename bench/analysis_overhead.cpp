//===- bench/analysis_overhead.cpp - Cost of the analyze phase -*- C++ -*-===//
//
// Measures what STENO_ANALYZE=strict costs relative to off, on the
// Figure 1 and Figure 13 workloads:
//
//  - run-time ns/op of the compiled query (must be identical: analysis
//    is a pure compile phase and generates no code),
//  - compile-time per compileQuery with the Interp backend (isolates the
//    lower/validate/analyze/rewrite/codegen pipeline from the external
//    JIT compiler, so the analyze and rewrite shares are visible).
//
// Gate: with the plan rewriter ON (the default), the rewrite phase must
// cost at most 10% of the analyze phase on these workloads — they have
// no Pred operators and no int64 divisions, so rewriteChain's no-target
// pre-scan must keep the phase near-free. The process exits 1 when the
// budget is exceeded.
//
// Results land in BENCH_analysis_overhead.json.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "expr/Dsl.h"
#include "steno/Steno.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace steno;
using namespace steno::bench;
using namespace steno::expr;
using namespace steno::expr::dsl;
using query::Query;

namespace {

CompileOptions opts(analysis::Mode Mode, Backend Exec, const char *Name,
                    bool Rewrite = true, bool Adaptive = false) {
  CompileOptions O;
  O.Analyze = Mode;
  O.Exec = Exec;
  O.Name = Name;
  O.Rewrite = Rewrite;
  O.Adaptive = Adaptive;
  return O;
}

/// One timed sample of K compiles with the Interp backend (no JIT); K
/// amortizes clock resolution. Callers interleave samples of the
/// variants they compare so clock drift between timing blocks cancels
/// out of the deltas instead of masquerading as phase cost.
double compileSample(const Query &Q, analysis::Mode Mode, const char *Name,
                     bool Rewrite, bool Adaptive) {
  const int K = 20;
  return bestSeconds(
             [&] {
               for (int I = 0; I < K; ++I) {
                 CompiledQuery CQ = compileQuery(
                     Q,
                     opts(Mode, Backend::Interp, Name, Rewrite, Adaptive));
                 doNotOptimize(
                     static_cast<std::int64_t>(CQ.generatedSource().size()));
               }
             },
             /*Reps=*/1) /
         K;
}

/// Best-of seconds for one run of the Native-compiled query.
double runSeconds(const Query &Q, analysis::Mode Mode, const char *Name,
                  const Bindings &B) {
  CompiledQuery CQ = compileQuery(Q, opts(Mode, Backend::Native, Name));
  return bestSeconds([&] {
    doNotOptimize(static_cast<std::int64_t>(CQ.run(B).rows().size()));
  });
}

bool measure(JsonReport &Json, const char *Name, const Query &Q,
             const Bindings &B, std::int64_t Items) {
  double RunStrict = runSeconds(Q, analysis::Mode::Strict, Name, B);
  double RunOff = runSeconds(Q, analysis::Mode::Off, Name, B);
  // The compile-time variants whose deltas are gated below:
  //  - CompStrict: strict analysis, rewriter on (the default config),
  //  - CompOff:    analysis off       -> CompStrict - CompOff = analyze,
  //  - CompNoRw:   rewriter off       -> CompStrict - CompNoRw = rewrite,
  //  - CompAdapt:  Adaptive=true with empty stores -> the idle hook.
  // The four are sampled ROUND-ROBIN inside one loop: the gated deltas
  // are hundreds of nanoseconds on ~20us compiles, and sequential
  // best-of blocks drift by more than that between blocks.
  // Boustrophedon rotation: the order reverses every rep, so a variant
  // never holds one position in the rotation and first-order slowdown
  // over the run biases no delta.
  double Best[4] = {1e9, 1e9, 1e9, 1e9};
  auto sampleVariant = [&](int V) {
    double S = V == 0   ? compileSample(Q, analysis::Mode::Strict, Name,
                                        /*Rewrite=*/true, /*Adaptive=*/false)
               : V == 1 ? compileSample(Q, analysis::Mode::Off, Name,
                                        /*Rewrite=*/true, /*Adaptive=*/false)
               : V == 2 ? compileSample(Q, analysis::Mode::Strict, Name,
                                        /*Rewrite=*/false, /*Adaptive=*/false)
                        : compileSample(Q, analysis::Mode::Strict, Name,
                                        /*Rewrite=*/true, /*Adaptive=*/true);
    Best[V] = std::min(Best[V], S);
  };
  for (int Rep = 0; Rep != 16; ++Rep)
    for (int I = 0; I != 4; ++I)
      sampleVariant(Rep % 2 ? 3 - I : I);
  double CompStrict = Best[0], CompOff = Best[1], CompNoRw = Best[2],
         CompAdapt = Best[3];
  double AnalyzeCost = CompStrict - CompOff;
  double RewriteCost = CompStrict - CompNoRw;
  double AdaptCost = CompAdapt - CompStrict;

  std::printf("%-14s run %8.3f / %8.3f ns/op (strict/off, %+5.2f%%)   "
              "compile %8.1f / %8.1f us (analyze share %.1f%%, rewrite "
              "%.1f%% of analyze)\n",
              Name, RunStrict * 1e9 / static_cast<double>(Items),
              RunOff * 1e9 / static_cast<double>(Items),
              100.0 * (RunStrict / RunOff - 1.0), CompStrict * 1e6,
              CompOff * 1e6, 100.0 * (1.0 - CompOff / CompStrict),
              AnalyzeCost > 0 ? 100.0 * RewriteCost / AnalyzeCost : 0.0);

  std::string P = Name;
  Json.add(P + "_run_strict", RunStrict, Items);
  Json.add(P + "_run_off", RunOff, Items);
  Json.add(P + "_compile_strict", CompStrict, 1, 5);
  Json.add(P + "_compile_off", CompOff, 1, 5);
  Json.add(P + "_compile_strict_norewrite", CompNoRw, 1, 5);
  Json.add(P + "_compile_adaptive_idle", CompAdapt, 1, 5);

  // Gate only when the analyze phase is measurable at all, and spot each
  // delta a clock-jitter floor: the truths compared here are hundreds of
  // nanoseconds, and even interleaved best-of samples of these ~20us
  // compiles disagree by about a microsecond run to run.
  const double NoiseFloor = 2e-6;
  if (AnalyzeCost > 1e-6 &&
      RewriteCost > 0.10 * AnalyzeCost + NoiseFloor) {
    std::fprintf(stderr,
                 "analysis_overhead: FAIL %s: rewrite phase is %.1f%% of "
                 "the analyze phase (budget 10%%)\n",
                 Name, 100.0 * RewriteCost / AnalyzeCost);
    return false;
  }
  // The adaptive hook with nothing learned must stay within 1% of the
  // non-adaptive compile (plus the same clock-jitter floor).
  if (AdaptCost > 0.01 * CompStrict + NoiseFloor) {
    std::fprintf(stderr,
                 "analysis_overhead: FAIL %s: idle adaptive hook adds "
                 "%.2f%% to the compile (budget 1%%)\n",
                 Name, 100.0 * AdaptCost / CompStrict);
    return false;
  }
  return true;
}

} // namespace

int main() {
  JsonReport Json("analysis_overhead");
  const std::int64_t N = scaled(10000000);
  std::vector<double> Xs = uniformDoubles(N, 1);
  std::vector<double> Gs = mixtureOfGaussians(scaled(1000000), 2);

  header("Analysis overhead: STENO_ANALYZE=strict vs off");
  bool Ok = true;

  auto X = param("x", Type::doubleTy());
  auto A = param("a", Type::doubleTy());

  // Figure 1: sum of squares.
  Bindings B1;
  B1.bindDoubleArray(0, Xs.data(), N);
  Ok &= measure(Json, "fig01_sumsq",
                Query::doubleArray(0).select(lambda({X}, X * X)).sum(), B1,
                N);

  // Figure 13 Sum.
  Ok &= measure(Json, "fig13_sum", Query::doubleArray(0).sum(), B1, N);

  // Figure 13 Group: binned histogram-style aggregation (dense keys).
  const std::int64_t Bins = 100;
  Bindings B2;
  B2.bindDoubleArray(0, Gs.data(),
                     static_cast<std::int64_t>(Gs.size()));
  Query Group = Query::doubleArray(0).groupByAggregateDense(
      lambda({X}, toInt64(X / 10.0)), E(Bins), E(0.0),
      lambda({A, X}, A + 1.0));
  Ok &= measure(Json, "fig13_group", Group, B2,
                static_cast<std::int64_t>(Gs.size()));

  return Ok ? 0 : 1;
}
