//===- bench/sec71_breakeven.cpp - Reproduces §7.1's cost model -*-C++-*-===//
//
// §7.1's one-off-cost analysis: "Summing 10 million doubles with LINQ
// takes approximately 83 ms, whereas with Steno it takes 25 ms plus 69 ms
// for compilation. The break-even point is approximately 12 million
// doubles."
//
// This binary measures the same three quantities on this machine —
// LINQ per-element cost, Steno per-element cost, Steno one-off
// compile+load cost — solves for the break-even input size, and verifies
// it empirically with a sweep.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "expr/Dsl.h"
#include "linq/Linq.h"
#include "steno/Steno.h"

#include <cstdio>

using namespace steno;
using namespace steno::bench;
using namespace steno::expr;
using namespace steno::expr::dsl;
using query::Query;

int main() {
  const std::int64_t N = scaled(10000000);
  std::vector<double> Xs = uniformDoubles(N, 11);
  header("Section 7.1: one-off compilation cost and break-even point");

  // The three measured quantities, on the paper's Sum query.
  double LinqS = bestSeconds([&] {
    doNotOptimize(linq::fromSpan(Xs.data(), Xs.size()).sum());
  });

  Query Q = Query::doubleArray(0).sum();

  // Compile cost: repeat a few fresh compilations and take the median-ish
  // best (the paper's 69 ms is an average).
  double CompileMs = 1e300;
  for (int I = 0; I < 3; ++I) {
    CompiledQuery Fresh = compileQuery(Q, {});
    if (Fresh.compileMillis() < CompileMs)
      CompileMs = Fresh.compileMillis();
  }

  CompiledQuery CQ = compileQuery(Q, {});
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), N);
  double StenoS = bestSeconds(
      [&] { doNotOptimize(CQ.run(B).scalarValue().asDouble()); });

  double LinqPerElemNs = 1e9 * LinqS / static_cast<double>(N);
  double StenoPerElemNs = 1e9 * StenoS / static_cast<double>(N);
  std::printf("\nLINQ Sum(%lld):  %8.1f ms  (%.2f ns/element)\n",
              static_cast<long long>(N), LinqS * 1e3, LinqPerElemNs);
  std::printf("Steno Sum(%lld): %8.1f ms  (%.2f ns/element)\n",
              static_cast<long long>(N), StenoS * 1e3, StenoPerElemNs);
  std::printf("Steno one-off compile+load: %.0f ms\n", CompileMs);

  // Model: LINQ(n) = a_linq * n; Steno(n) = compile + a_steno * n.
  double BreakEven =
      CompileMs * 1e6 / (LinqPerElemNs - StenoPerElemNs);
  std::printf("\nmodelled break-even: %.2g elements "
              "(paper: ~1.2e7 with csc's 69 ms compile)\n",
              BreakEven);

  // Empirical sweep: total time (compile amortized over ONE run) for
  // LINQ vs Steno across input sizes.
  std::printf("\n%14s %14s %20s %12s\n", "n", "LINQ (ms)",
              "Steno+compile (ms)", "winner");
  for (double Frac :
       {0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    std::int64_t M = static_cast<std::int64_t>(
        static_cast<double>(N) * Frac);
    if (M < 1 || static_cast<size_t>(M) > Xs.size() * 4)
      continue;
    std::vector<double> Sub = uniformDoubles(M, 12);
    double L = bestSeconds(
        [&] {
          doNotOptimize(linq::fromSpan(Sub.data(), Sub.size()).sum());
        },
        2);
    Bindings SubB;
    SubB.bindDoubleArray(0, Sub.data(), M);
    double S = bestSeconds(
        [&] { doNotOptimize(CQ.run(SubB).scalarValue().asDouble()); },
        2);
    double StenoTotalMs = CompileMs + S * 1e3;
    std::printf("%14lld %14.1f %20.1f %12s\n",
                static_cast<long long>(M), L * 1e3, StenoTotalMs,
                L * 1e3 < StenoTotalMs ? "LINQ" : "Steno");
  }
  std::printf("\n(cached compiled queries pay the compile cost zero "
              "times after the first use — the amortized column is the "
              "Steno run time alone, %.1f ms at n=%lld)\n",
              StenoS * 1e3, static_cast<long long>(N));
  return 0;
}
