//===- bench/abl_groupby.cpp - Ablation B: §4.3 specialization --*- C++ -*-===//
//
// Measures the GroupBy-Aggregate specialization in isolation: the same
// group-then-fold query compiled with the §4.3 pass disabled (bags
// materialized in a Lookup, then folded) and enabled (one-pass partial
// aggregates), across key cardinalities — plus the dense-key sink the
// paper's closing §4.3 remark sketches (O(1) keys when the key range is
// known), measured via the static fused library.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "expr/Dsl.h"
#include "fused/Fused.h"
#include "steno/Steno.h"

#include <cstdio>

using namespace steno;
using namespace steno::bench;
using namespace steno::expr;
using namespace steno::expr::dsl;
using query::Query;

int main() {
  const std::int64_t N = scaled(5000000);
  std::vector<double> Xs = uniformDoubles(N, 31, 0, 1.0);
  header("Ablation B: GroupBy vs fused GroupByAggregate (§4.3), " +
         std::to_string(N) + " elements");

  std::printf("\n%8s %16s %16s %14s %10s\n", "keys", "bags (ms)",
              "fused GBA (ms)", "dense (ms)", "GBA gain");

  for (std::int64_t Keys : {10, 100, 1000, 10000, 100000}) {
    double Scale = static_cast<double>(Keys);
    auto X = param("x", Type::doubleTy());
    auto G = param("g", Type::pairTy(Type::int64Ty(), Type::vecTy()));
    auto A = param("a", Type::doubleTy());
    auto V = param("v", Type::doubleTy());
    Query BagSum = Query::overVec(G.second())
                       .aggregate(E(0.0), lambda({A, V}, A + V),
                                  lambda({A}, pair(G.first(), A)));
    Query Q = Query::doubleArray(0)
                  .groupBy(lambda({X}, toInt64(X * Scale)))
                  .selectNested(G, BagSum);

    Bindings B;
    B.bindDoubleArray(0, Xs.data(), N);

    CompileOptions NoSpec;
    NoSpec.SpecializeGroupByAggregate = false;
    NoSpec.Name = "grp_bags";
    CompiledQuery Bags = compileQuery(Q, NoSpec);

    CompileOptions Spec;
    Spec.Name = "grp_fused";
    CompiledQuery Fused = compileQuery(Q, Spec);

    double BagsS = bestSeconds(
        [&] {
          doNotOptimize(
              static_cast<std::int64_t>(Bags.run(B).rows().size()));
        },
        2);
    double FusedS = bestSeconds(
        [&] {
          doNotOptimize(
              static_cast<std::int64_t>(Fused.run(B).rows().size()));
        },
        2);

    // Dense-key static sink (key range known a priori).
    double DenseS = bestSeconds(
        [&] {
          auto Slots =
              fused::from(Xs) |
              fused::denseGroupByAggregate(
                  Keys,
                  [Scale](double Xv) {
                    return static_cast<std::int64_t>(Xv * Scale);
                  },
                  0.0, [](double Acc, double Xv) { return Acc + Xv; });
          doNotOptimize(Slots[0]);
        },
        2);

    std::printf("%8lld %16.1f %16.1f %14.1f %9.2fx\n",
                static_cast<long long>(Keys), BagsS * 1e3, FusedS * 1e3,
                DenseS * 1e3, BagsS / FusedS);
  }

  std::printf("\n'bags' materializes every group's members (Figure 7(b) "
              "Lookup); 'fused GBA' keeps one accumulator per key (§4.3); "
              "'dense' replaces the hash sink with an array when the key "
              "range is known\n");
  return 0;
}
