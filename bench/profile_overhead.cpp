//===- bench/profile_overhead.cpp - Cost of the profiling subsystem ------===//
//
// Measures what operator-level profiling (obs::ProfileStore) costs on the
// native backend, per workload:
//
//   baseline  the unprofiled plan's entry function invoked straight
//             through jit::run — the exact machine code of `off`, minus
//             CompiledQuery::run's profiling plumbing (the sink null
//             check and the merge call that never fires)
//   off       CompiledQuery::run of a Profile=false plan. The generated
//             TU is byte-identical to baseline's (no counter arrays, no
//             timers), so any delta is run()-plumbing and noise.
//   on        CompiledQuery::run of a Profile=true plan: stack-local
//             counter/timer accumulation in the generated loop plus one
//             ProfileStore merge per run.
//
// Gate: off must stay within 5% of baseline (the ISSUE's "profiling off
// is free" budget) — the process exits 1 when the ratio exceeds 1.05, so
// the bench-smoke CI job fails loudly instead of recording a regression.
// The on/off ratio is reported for information but not gated: timed
// operators pay two clock reads per op invocation by design.
//
// Writes BENCH_profile_overhead.json (see BenchUtil.h JsonReport).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "expr/Dsl.h"
#include "jit/Jit.h"
#include "obs/Profile.h"
#include "steno/Steno.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

using namespace steno;
using namespace steno::bench;
using namespace steno::expr;
using namespace steno::expr::dsl;
using query::Query;

namespace {

CompileOptions nativeOptions(bool Profile, const std::string &Name) {
  CompileOptions O;
  O.Exec = Backend::Native;
  O.Profile = Profile;
  O.Name = Name;
  return O;
}

struct Workload {
  const char *Name;
  Query Q;
};

bool measure(const Workload &W, const Bindings &B, std::int64_t Items,
             JsonReport &Json) {
  const int Reps = 5;
  CompiledQuery Off = compileQuery(W.Q, nativeOptions(false, W.Name));
  CompiledQuery On = compileQuery(W.Q, nativeOptions(true, W.Name));

  // The baseline shares Off's generated TU but skips run()'s plumbing:
  // recompile the identical source and call the entry point directly.
  std::string Err;
  std::unique_ptr<jit::CompiledModule> Module = jit::CompiledModule::compile(
      Off.generatedSource(), Off.program().Name, &Err);
  if (!Module) {
    std::fprintf(stderr, "profile_overhead: baseline compile failed: %s\n",
                 Err.c_str());
    return false;
  }

  double BaseS = bestSeconds(
      [&] {
        jit::ExecOutput Out =
            jit::run(Module->entry(), B.sources(), B.values(),
                     Off.program().ResultType);
        doNotOptimize(static_cast<std::int64_t>(Out.Rows.size()));
      },
      Reps);
  double OffS = bestSeconds(
      [&] { doNotOptimize(Off.run(B).scalarValue().asDouble()); }, Reps);
  double OnS = bestSeconds(
      [&] { doNotOptimize(On.run(B).scalarValue().asDouble()); }, Reps);

  double OffOverhead = OffS / BaseS - 1.0;
  double OnOverhead = OnS / OffS - 1.0;
  std::printf("  %-10s baseline %8.2f ms   off %8.2f ms (%+5.1f%%)   "
              "on %8.2f ms (%+5.1f%% vs off)\n",
              W.Name, BaseS * 1e3, OffS * 1e3, 100.0 * OffOverhead,
              OnS * 1e3, 100.0 * OnOverhead);

  std::string Prefix = std::string(W.Name) + "_";
  Json.add(Prefix + "baseline", BaseS, Items, Reps);
  Json.add(Prefix + "off", OffS, Items, Reps);
  Json.add(Prefix + "on", OnS, Items, Reps);

  if (OffS > BaseS * 1.05) {
    std::fprintf(stderr,
                 "profile_overhead: FAIL %s: profiling-off run is %.1f%% "
                 "over baseline (budget 5%%)\n",
                 W.Name, 100.0 * OffOverhead);
    return false;
  }
  return true;
}

} // namespace

int main() {
  header("profiling overhead (native backend)");
  const std::int64_t N = scaled(4000000);
  std::vector<double> Data = uniformDoubles(N, /*Seed=*/42);
  Bindings B;
  B.bindDoubleArray(0, Data.data(), N);

  auto X = param("x", Type::doubleTy());
  Workload Workloads[] = {
      {"sumsq", Query::doubleArray(0).select(lambda({X}, X * X)).sum()},
      {"filter",
       Query::doubleArray(0)
           .where(lambda({X}, X > 500.0))
           .select(lambda({X}, X * 2.0))
           .sum()},
  };

  JsonReport Json("profile_overhead");
  std::printf("  N = %lld doubles per run, best of 5\n",
              static_cast<long long>(N));
  bool Ok = true;
  for (const Workload &W : Workloads)
    Ok = measure(W, B, N, Json) && Ok;

  // Show the artifact the instrumentation buys at this price.
  if (auto Snap = obs::ProfileStore::global().snapshot(
          compileQuery(Workloads[1].Q, nativeOptions(true, "filter"))
              .planHash()))
    std::printf("\n%s", obs::renderExplainAnalyze(*Snap).c_str());

  return Ok ? 0 : 1;
}
