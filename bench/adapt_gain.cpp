//===- bench/adapt_gain.cpp - Warm-over-cold adaptive planning win -------===//
//
// Measures what feedback-driven predicate reordering buys on a
// skewed-selectivity Where chain written in the pessimal order: three
// structurally identical `x > C` filters where the first passes ~99% of
// the rows, the second ~98% and the third ~1%. The static ranker sees
// three identical costs and selectivity estimates, so the stable sort
// keeps the written order and every row walks all three predicate ASTs.
// After a profiled cold phase ripens the FeedbackStore, the warm
// recompile ranks by observed (selectivity - 1) / cost and hoists the
// 1%-pass filter to the front: ~99% of the rows then evaluate one
// predicate instead of three.
//
// Gate: on the Interp backend — where each surviving predicate costs a
// real per-element AST walk — the warm plan must deliver at least 1.3x
// the cold plan's throughput (the ISSUE budget). The process exits 1
// otherwise, so the bench-smoke CI job fails loudly. Cold is measured
// unprofiled (static plan, adaptivity off) so the ratio isolates the
// plan-order win from profiling overhead.
//
// Writes BENCH_adapt_gain.json (see BenchUtil.h JsonReport).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "adapt/Adapt.h"
#include "analysis/Rewrite.h"
#include "expr/Dsl.h"
#include "obs/Profile.h"
#include "steno/Steno.h"

#include <cstdint>
#include <cstdio>
#include <random>
#include <vector>

using namespace steno;
using namespace steno::bench;
using namespace steno::expr;
using namespace steno::expr::dsl;
using query::Query;

namespace {

E xi() { return param("xi", Type::int64Ty()); }
E ci(long long V) { return E(static_cast<std::int64_t>(V)); }

/// Pessimal written order over uniform [0, 9999] data: pass-~99%,
/// pass-~98%, pass-~1%. All three are the same `x > C` template, so the
/// static cost model cannot tell them apart.
Query skewedPredChain() {
  return Query::int64Array(0)
      .where(lambda({xi()}, xi() > ci(99)))
      .where(lambda({xi()}, xi() > ci(199)))
      .where(lambda({xi()}, xi() > ci(9899)))
      .sum();
}

CompileOptions opts(bool Adaptive, bool Profile, const char *Name) {
  CompileOptions O;
  O.Exec = Backend::Interp;
  O.Analyze = analysis::Mode::Off;
  O.Rewrite = true;
  O.Adaptive = Adaptive;
  O.Profile = Profile;
  O.Name = Name;
  return O;
}

unsigned reorders(const CompiledQuery &CQ) {
  if (!CQ.rewriteResult())
    return 0;
  unsigned N = 0;
  for (const quil::RewriteCertificate &C : CQ.rewriteResult()->Certs)
    N += C.Rule == quil::RewriteRule::ReorderPreds;
  return N;
}

} // namespace

int main() {
  header("adaptive planning warm-over-cold gain (skewed pred chain)");
  const std::int64_t N = scaled(2000000);
  std::vector<std::int64_t> Data(static_cast<std::size_t>(N));
  std::mt19937_64 Rng(11);
  std::uniform_int_distribution<std::int64_t> Dist(0, 9999);
  for (auto &V : Data)
    V = Dist(Rng);
  Bindings B;
  B.bindInt64Array(0, Data.data(), N);

  obs::ProfileStore::global().clear();
  adapt::FeedbackStore &FS = adapt::FeedbackStore::global();
  FS.clear();

  JsonReport Json("adapt_gain");
  Query Q = skewedPredChain();

  // Cold: the static plan in the written (pessimal) order.
  CompiledQuery Cold = compileQuery(Q, opts(false, false, "adapt_cold"));
  double ColdSec = bestSeconds(
      [&] { doNotOptimize(Cold.run(B).scalarValue().asInt64()); },
      /*Reps=*/5);

  // Seed: profiled adaptive runs past the min-sample threshold (not
  // timed — this is the learning phase the warm compile consumes).
  CompiledQuery Seed = compileQuery(Q, opts(true, true, "adapt_seed"));
  std::uint64_t SeedRuns = FS.minSamples() + 1;
  for (std::uint64_t I = 0; I != SeedRuns; ++I)
    doNotOptimize(Seed.run(B).scalarValue().asInt64());

  // Warm: recompile with feedback; the observed ranks must reorder.
  CompiledQuery Warm = compileQuery(Q, opts(true, false, "adapt_warm"));
  if (reorders(Warm) == 0) {
    std::fprintf(stderr, "adapt_gain: FAIL warm recompile did not reorder "
                         "the predicate chain\n");
    return 1;
  }
  double WarmSec = bestSeconds(
      [&] { doNotOptimize(Warm.run(B).scalarValue().asInt64()); },
      /*Reps=*/5);

  double Gain = ColdSec / WarmSec;
  std::printf("  cold %8.2f ms   warm %8.2f ms   throughput gain %.2fx "
              "(%llu seed runs)\n",
              ColdSec * 1e3, WarmSec * 1e3, Gain,
              static_cast<unsigned long long>(SeedRuns));

  Json.add("interp_cold", ColdSec, N, 5);
  Json.add("interp_warm", WarmSec, N, 5);

  if (Gain < 1.3) {
    std::fprintf(stderr,
                 "adapt_gain: FAIL warm-over-cold throughput %.2fx is "
                 "below the 1.3x budget\n",
                 Gain);
    return 1;
  }
  return 0;
}
