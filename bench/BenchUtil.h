//===- bench/BenchUtil.h - Shared benchmark harness helpers ----*- C++ -*-===//
///
/// \file
/// Timing and reporting helpers shared by the per-figure benchmark
/// binaries. Each binary reproduces one table/figure of the paper and
/// prints rows in the paper's shape (see EXPERIMENTS.md for the mapping).
///
/// Sizes are the paper's where a laptop allows, and scale with the
/// STENO_BENCH_SCALE environment variable (a double multiplier; set it
/// below 1 for quick smoke runs, e.g. STENO_BENCH_SCALE=0.1).
///
//===----------------------------------------------------------------------===//

#ifndef STENO_BENCH_BENCHUTIL_H
#define STENO_BENCH_BENCHUTIL_H

#include "support/Random.h"
#include "support/Timing.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

namespace steno {
namespace bench {

/// Global size multiplier from STENO_BENCH_SCALE (default 1.0).
inline double scaleFactor() {
  static const double Scale = [] {
    const char *Env = std::getenv("STENO_BENCH_SCALE");
    double V = Env ? std::atof(Env) : 1.0;
    return V > 0 ? V : 1.0;
  }();
  return Scale;
}

/// N scaled by STENO_BENCH_SCALE, at least 1.
inline std::int64_t scaled(std::int64_t N) {
  double V = static_cast<double>(N) * scaleFactor();
  return V < 1 ? 1 : static_cast<std::int64_t>(V);
}

/// Runs \p Fn \p Reps times (after one untimed warmup) and returns the
/// best wall-clock seconds. "Best of N" suppresses scheduler noise on a
/// busy machine; the relative numbers the paper reports are ratios of
/// such bests.
inline double bestSeconds(const std::function<void()> &Fn, int Reps = 3) {
  Fn(); // warmup (page faults, code fill)
  double Best = 1e300;
  for (int I = 0; I < Reps; ++I) {
    support::WallTimer T;
    Fn();
    double S = T.seconds();
    if (S < Best)
      Best = S;
  }
  return Best;
}

/// Defeats dead-code elimination of a computed value.
inline void doNotOptimize(double V) {
  __asm__ __volatile__("" : : "g"(V) : "memory");
}

inline void doNotOptimize(std::int64_t V) {
  __asm__ __volatile__("" : : "g"(V) : "memory");
}

/// Uniform doubles in [Lo, Hi), deterministic.
inline std::vector<double> uniformDoubles(std::int64_t N,
                                          std::uint64_t Seed,
                                          double Lo = 0.0,
                                          double Hi = 1000.0) {
  support::SplitMix64 Rng(Seed);
  std::vector<double> Out(static_cast<size_t>(N));
  for (double &V : Out)
    V = Rng.nextDouble(Lo, Hi);
  return Out;
}

/// The paper's Group input: a one-dimensional mixture of Gaussians.
inline std::vector<double> mixtureOfGaussians(std::int64_t N,
                                              std::uint64_t Seed) {
  support::SplitMix64 Rng(Seed);
  const double Means[] = {100.0, 400.0, 750.0};
  const double Sigmas[] = {40.0, 90.0, 30.0};
  const double Weights[] = {0.5, 0.3, 0.2};
  std::vector<double> Out;
  Out.reserve(static_cast<size_t>(N));
  while (Out.size() < static_cast<size_t>(N)) {
    double U = Rng.nextDouble();
    int C = U < Weights[0] ? 0 : (U < Weights[0] + Weights[1] ? 1 : 2);
    double V = Means[C] + Sigmas[C] * Rng.nextGaussian();
    if (V >= 0.0 && V < 1000.0)
      Out.push_back(V);
  }
  return Out;
}

/// Prints a section header for a figure/table.
inline void header(const std::string &Title) {
  std::printf("\n=== %s ===\n", Title.c_str());
}

/// Machine-readable companion to the human tables: collects one entry per
/// measured variant and writes BENCH_<binary>.json on destruction, so the
/// repo's perf trajectory can be tracked across commits without scraping
/// stdout. Files land in $STENO_BENCH_OUT if set, else the working
/// directory.
class JsonReport {
public:
  /// \p Binary names the output file (BENCH_<Binary>.json).
  explicit JsonReport(std::string Binary) : Binary(std::move(Binary)) {}

  JsonReport(const JsonReport &) = delete;
  JsonReport &operator=(const JsonReport &) = delete;

  /// Records one variant: \p Seconds per iteration over \p Items
  /// elements, measured as best-of-\p Reps.
  void add(const std::string &Name, double Seconds, std::int64_t Items,
           int Reps = 3) {
    char Buf[256];
    double NsPerOp = Items > 0 ? Seconds * 1e9 / static_cast<double>(Items)
                               : Seconds * 1e9;
    double RowsPerSec =
        Seconds > 0 ? static_cast<double>(Items) / Seconds : 0;
    std::snprintf(Buf, sizeof Buf,
                  "    {\"name\": \"%s\", \"reps\": %d, \"ns_per_op\": "
                  "%.3f, \"rows_per_sec\": %.1f, \"seconds\": %.6f, "
                  "\"items\": %lld}",
                  Name.c_str(), Reps, NsPerOp, RowsPerSec, Seconds,
                  static_cast<long long>(Items));
    if (!Entries.empty())
      Entries += ",\n";
    Entries += Buf;
  }

  ~JsonReport() {
    const char *Dir = std::getenv("STENO_BENCH_OUT");
    std::string Path = (Dir && *Dir ? std::string(Dir) + "/" : std::string()) +
                       "BENCH_" + Binary + ".json";
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "bench: cannot write %s\n", Path.c_str());
      return;
    }
    std::fprintf(F,
                 "{\n  \"binary\": \"%s\",\n  \"scale\": %g,\n"
                 "  \"results\": [\n%s\n  ]\n}\n",
                 Binary.c_str(), scaleFactor(), Entries.c_str());
    std::fclose(F);
  }

private:
  std::string Binary;
  std::string Entries;
};

} // namespace bench
} // namespace steno

#endif // STENO_BENCH_BENCHUTIL_H
