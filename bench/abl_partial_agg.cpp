//===- bench/abl_partial_agg.cpp - §6/Figure 12 partial Agg ----*- C++ -*-===//
//
// Measures the value of the paper's parallel optimization: appending a
// partial Agg_i to each partition's subquery and combining with Agg*
// (Figure 12), versus shipping every element to a single aggregating
// vertex. On a cluster the difference is network I/O; in this substrate
// it is materialization + a second pass, which preserves the shape
// (partial aggregation wins, and its advantage grows with partition
// count).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "dryad/HomomorphicApply.h"
#include "dryad/Partition.h"
#include "dryad/ThreadPool.h"
#include "fused/Fused.h"

#include <cstdio>

using namespace steno;
using namespace steno::bench;
using namespace steno::dryad;

int main() {
  const std::int64_t N = scaled(20000000);
  std::vector<double> Flat = uniformDoubles(N, 51, 0, 1);
  header("Ablation D: partial aggregation (Agg_i + Agg*, Figure 12) vs "
         "central aggregation, " +
         std::to_string(N) + " doubles");

  std::printf("\n%6s %18s %18s %9s\n", "parts", "partial agg (ms)",
              "central agg (ms)", "benefit");

  for (unsigned Parts : {1u, 2u, 4u, 8u, 16u}) {
    std::vector<DoublePartition> Partitions =
        partitionDoubles(Flat, Parts);
    ThreadPool Pool(Parts);

    // Figure 12: per-partition Agg_i (a fused sum-of-squares), then the
    // Agg* combine over P partials.
    double PartialS = bestSeconds(
        [&] {
          std::vector<double> Partials = homomorphicApply(
              Pool, Partitions, [](const DoublePartition &P) {
                return fused::from(P.Data) |
                       fused::select([](double X) { return X * X; }) |
                       fused::sum();
              });
          double Total = 0;
          for (double V : Partials)
            Total += V;
          doNotOptimize(Total);
        },
        2);

    // Central aggregation: each vertex only transforms (homomorphic
    // prefix), materializing its output partition; a single downstream
    // vertex consumes everything.
    double CentralS = bestSeconds(
        [&] {
          std::vector<std::vector<double>> Shipped = homomorphicApply(
              Pool, Partitions, [](const DoublePartition &P) {
                return fused::from(P.Data) |
                       fused::select([](double X) { return X * X; }) |
                       fused::toVector<double>();
              });
          double Total = 0;
          for (const std::vector<double> &Part : Shipped)
            for (double V : Part)
              Total += V;
          doNotOptimize(Total);
        },
        2);

    std::printf("%6u %18.1f %18.1f %8.2fx\n", Parts, PartialS * 1e3,
                CentralS * 1e3, CentralS / PartialS);
  }

  std::printf("\npartial aggregation sends P accumulators to Agg* "
              "instead of N elements (§6: 'reduces the amount of "
              "coordination between partitions')\n");
  return 0;
}
