//===- bench/par_skew.cpp - Static partitioning vs work stealing -*- C++ -*-===//
//
// The motivating measurement for the morsel scheduler (dryad/Morsel.h):
// a static Partitioner (paper §6, plinq::partitionSpan) makes the whole
// fan-out wait on the slowest chunk at the join barrier, so a skewed
// per-element cost caps the speedup near #workers / skew-factor. The
// work-stealing scheduler rebalances at morsel granularity and should
// approach linear speedup on the same input.
//
// Workload: sum of spin(x), where spin's iteration count depends on the
// element value — "heavy" elements cost ~16x a light one. Two inputs
// with IDENTICAL total work:
//
//   uniform   heavy elements scattered evenly (every 8th)
//   skewed    all heavy elements contiguous at the front (first N/8)
//
// Variants, at 1/2/4/8 workers:
//
//   static    partitionSpan into W chunks + homomorphicApply (barrier)
//   steal     plinq::asParallel morsel dispatch (work stealing)
//
// BENCH_par_skew.json rows are named <variant>_<input>_w<W>; CI's
// bench-smoke job feeds the file to bench/check_par_skew.py, which
// enforces the skew-speedup floor on multi-core runners.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "dryad/HomomorphicApply.h"
#include "dryad/ThreadPool.h"
#include "plinq/Plinq.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace steno;
using namespace steno::bench;

namespace {

constexpr int LightIters = 24;
constexpr int HeavyIters = 384; // 16x a light element

/// A value-dependent compute kernel the optimizer cannot collapse.
/// Elements >= 0.5 are the heavy ones.
inline double spin(double X) {
  int Iters = X >= 0.5 ? HeavyIters : LightIters;
  double V = X;
  for (int I = 0; I < Iters; ++I)
    V = V * 1.0000001 + 1e-9;
  return V;
}

/// Light values in [0, 0.5); positions selected by \p Heavy get +0.5.
std::vector<double> makeInput(std::int64_t N, bool Skewed) {
  support::SplitMix64 Rng(97);
  std::vector<double> Out(static_cast<std::size_t>(N));
  for (std::size_t I = 0; I != Out.size(); ++I) {
    double V = Rng.nextDouble(0.0, 0.5);
    bool Heavy = Skewed ? (I < Out.size() / 8) : (I % 8 == 0);
    Out[I] = Heavy ? V + 0.5 : V;
  }
  return Out;
}

struct Span {
  const double *Data;
  std::size_t N;
};

/// Static baseline: one chunk per worker, barrier at the join.
double staticSum(dryad::ThreadPool &Pool, const std::vector<double> &Xs,
                 unsigned Parts) {
  std::vector<Span> Spans;
  std::size_t Base = Xs.size() / Parts;
  std::size_t Extra = Xs.size() % Parts;
  std::size_t Pos = 0;
  for (unsigned P = 0; P != Parts; ++P) {
    std::size_t Len = Base + (P < Extra ? 1 : 0);
    Spans.push_back(Span{Xs.data() + Pos, Len});
    Pos += Len;
  }
  std::vector<double> Partials =
      dryad::homomorphicApply(Pool, Spans, [](const Span &S) {
        double T = 0;
        for (std::size_t I = 0; I != S.N; ++I)
          T += spin(S.Data[I]);
        return T;
      });
  double Total = 0;
  for (double V : Partials)
    Total += V;
  return Total;
}

/// Morsel-driven: dynamic dispatch with stealing.
double stealSum(dryad::ThreadPool &Pool, const std::vector<double> &Xs) {
  return plinq::asParallel(Pool, Xs)
      .select([](double X) { return spin(X); })
      .sum();
}

} // namespace

int main() {
  const std::int64_t N = scaled(1 << 20);
  const unsigned WorkerCounts[] = {1, 2, 4, 8};
  std::vector<double> Uniform = makeInput(N, /*Skewed=*/false);
  std::vector<double> Skewed = makeInput(N, /*Skewed=*/true);

  JsonReport Report("par_skew");
  header("Static partitioning vs work stealing under skew, " +
         std::to_string(N) + " elements (heavy:light cost " +
         std::to_string(HeavyIters / LightIters) + ":1, 1/8 heavy)");

  std::printf("\n%-8s %-9s %12s %12s %10s\n", "input", "workers",
              "static (ms)", "steal (ms)", "steal/static");
  for (const char *InputName : {"uniform", "skew"}) {
    const std::vector<double> &Xs =
        std::string(InputName) == "uniform" ? Uniform : Skewed;
    for (unsigned W : WorkerCounts) {
      dryad::ThreadPool Pool(W);
      double StaticS =
          bestSeconds([&] { doNotOptimize(staticSum(Pool, Xs, W)); });
      double StealS =
          bestSeconds([&] { doNotOptimize(stealSum(Pool, Xs)); });
      Report.add("static_" + std::string(InputName) + "_w" +
                     std::to_string(W),
                 StaticS, N);
      Report.add("steal_" + std::string(InputName) + "_w" +
                     std::to_string(W),
                 StealS, N);
      std::printf("%-8s %-9u %12.1f %12.1f %9.2fx\n", InputName, W,
                  StaticS * 1e3, StealS * 1e3, StaticS / StealS);
    }
  }
  std::printf("\n(static speedup on the skewed input caps near "
              "W/(1 + (W-1)/8's share of the heavy chunk); stealing "
              "should stay near-linear. On a single hardware thread "
              "both collapse to sequential time and the ratio is "
              "meaningless — check_par_skew.py skips enforcement "
              "there.)\n");
  return 0;
}
