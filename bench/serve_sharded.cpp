//===- bench/serve_sharded.cpp - 1→N shard serving scaling curve ---------===//
//
// Measures what multi-process sharding buys the serving layer: an
// Agg-heavy splittable query (sum of squares over a large synthesized
// source) driven closed-loop through shard::ShardRouter at 1, 2 and 4
// steno_serve worker processes. At one shard the router routes whole
// (the single-shard fallback — the honest baseline including all wire
// overhead); at N it fans per-shard pexec partials out and combines
// with the Agg* stage, so throughput should scale with the fleet until
// the combine or the wire dominates.
//
// Gate: 4 shards must deliver at least 1.8x the 1-shard throughput
// (the ISSUE budget; perfect scaling is 4x, the budget leaves room for
// wire framing and the scalar combine). The process exits 1 otherwise,
// so the bench-smoke CI job fails loudly. Skipped (exit 0, "skipped"
// JSON) on machines with fewer than 4 hardware threads, where the
// workers would contend for cores and the curve measures the scheduler.
//
// The worker binary comes from --serve-bin, else $STENO_SERVE_BIN, else
// ../tools/steno_serve next to this binary. Workers run --no-recompile
// so every configuration measures the same interpreter vertex.
//
// Writes BENCH_serve_sharded.json with the scaling curve.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "fuzz/Spec.h"
#include "shard/Shard.h"
#include "shard/Spawn.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace steno;
using namespace steno::bench;

namespace {

constexpr unsigned kClients = 8;
constexpr unsigned kSeconds = 3;
constexpr double kGate = 1.8;

/// The Agg-heavy splittable workload: sum of squares over a source big
/// enough that per-request execution dominates wire framing.
std::string workloadSpec() {
  fuzz::QuerySpec S;
  S.Sources.push_back({0, fuzz::ElemTy::Double, fuzz::DataClass::Uniform,
                       static_cast<std::uint32_t>(scaled(200000)), 77});
  fuzz::OpSpec Sel;
  Sel.K = fuzz::OpK::Select;
  Sel.T = fuzz::TransTmpl::Square;
  fuzz::OpSpec Agg;
  Agg.K = fuzz::OpK::Agg;
  Agg.A = fuzz::AggKind::Sum;
  S.Ops = {Sel, Agg};
  return fuzz::serializeSpec(S);
}

/// Spawns \p N workers, drives the closed loop, returns requests/sec
/// (0 on any failure).
double measure(const std::string &ServeBin, unsigned N) {
  std::vector<shard::WorkerProcess> Workers;
  for (unsigned I = 0; I != N; ++I) {
    std::string Sock = "/tmp/steno-bench-shard-" +
                       std::to_string(::getpid()) + "-" +
                       std::to_string(I) + ".sock";
    Workers.emplace_back(ServeBin, Sock,
                         std::vector<std::string>{"--workers", "1",
                                                  "--no-recompile"});
    std::string Err;
    if (!Workers.back().start(&Err)) {
      std::fprintf(stderr, "serve_sharded: %s\n", Err.c_str());
      for (shard::WorkerProcess &W : Workers)
        W.kill9();
      return 0;
    }
  }

  shard::RouterOptions Opts;
  for (const shard::WorkerProcess &W : Workers)
    Opts.ShardSockets.push_back(W.socket());
  Opts.DefaultDeadline = std::chrono::milliseconds(30000);
  double Rps = 0;
  {
    shard::ShardRouter Router(Opts);
    std::string Err;
    shard::RoutedHandle H = Router.prepare(workloadSpec(), &Err);
    if (!H) {
      std::fprintf(stderr, "serve_sharded: prepare: %s\n", Err.c_str());
    } else {
      // Warmup: one request per shard connection path.
      serve::Response W = Router.execute(H);
      if (W.St != serve::Status::Ok) {
        std::fprintf(stderr, "serve_sharded: warmup: %s\n",
                     W.Message.c_str());
      } else {
        auto End = std::chrono::steady_clock::now() +
                   std::chrono::seconds(kSeconds);
        std::atomic<std::uint64_t> Ok{0}, Bad{0};
        std::vector<std::thread> Threads;
        for (unsigned C = 0; C != kClients; ++C)
          Threads.emplace_back([&] {
            while (std::chrono::steady_clock::now() < End) {
              serve::Response R = Router.execute(H);
              (R.St == serve::Status::Ok ? Ok : Bad)
                  .fetch_add(1, std::memory_order_relaxed);
            }
          });
        for (std::thread &T : Threads)
          T.join();
        if (Bad.load())
          std::fprintf(stderr, "serve_sharded: %llu failed requests at "
                               "%u shards\n",
                       static_cast<unsigned long long>(Bad.load()), N);
        else
          Rps = static_cast<double>(Ok.load()) / kSeconds;
      }
    }
  }
  for (shard::WorkerProcess &W : Workers) {
    W.kill9();
    ::unlink(W.socket().c_str());
  }
  return Rps;
}

void writeJson(const std::string &Body) {
  const char *Dir = std::getenv("STENO_BENCH_OUT");
  std::string Path =
      (Dir && *Dir ? std::string(Dir) + "/" : std::string()) +
      "BENCH_serve_sharded.json";
  if (std::FILE *F = std::fopen(Path.c_str(), "w")) {
    std::fputs(Body.c_str(), F);
    std::fclose(F);
    std::fprintf(stderr, "serve_sharded: wrote %s\n", Path.c_str());
  } else {
    std::fprintf(stderr, "serve_sharded: cannot write %s\n", Path.c_str());
  }
}

} // namespace

int main(int Argc, char **Argv) {
  std::signal(SIGPIPE, SIG_IGN);

  std::string ServeBin;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--serve-bin") == 0 && I + 1 < Argc)
      ServeBin = Argv[++I];
  if (ServeBin.empty())
    if (const char *Env = std::getenv("STENO_SERVE_BIN"))
      ServeBin = Env;
  if (ServeBin.empty()) {
    std::string Self = Argv[0];
    std::size_t Slash = Self.rfind('/');
    ServeBin = (Slash == std::string::npos ? std::string(".")
                                           : Self.substr(0, Slash)) +
               "/../tools/steno_serve";
  }
  if (::access(ServeBin.c_str(), X_OK) != 0) {
    std::fprintf(stderr, "serve_sharded: no steno_serve at %s\n",
                 ServeBin.c_str());
    return 2;
  }

  // STENO_BENCH_FORCE=1 runs the curve anyway (without the gate) so the
  // plumbing stays testable on small machines.
  bool Forced = std::getenv("STENO_BENCH_FORCE") != nullptr;
  if (std::thread::hardware_concurrency() < 4 && !Forced) {
    std::printf("serve_sharded: skipped (needs >= 4 hardware threads)\n");
    writeJson("{\n  \"binary\": \"serve_sharded\",\n"
              "  \"skipped\": \"fewer than 4 hardware threads\"\n}\n");
    return 0;
  }

  header("Sharded serving scaling (sum of squares, 8 closed-loop clients)");
  const unsigned Counts[] = {1, 2, 4};
  double Rps[3] = {0, 0, 0};
  for (int I = 0; I != 3; ++I) {
    Rps[I] = measure(ServeBin, Counts[I]);
    if (Rps[I] <= 0) {
      std::fprintf(stderr, "serve_sharded: measurement failed at %u\n",
                   Counts[I]);
      return 2;
    }
    std::printf("  %u shard%s  %8.1f req/s  (%.2fx)\n", Counts[I],
                Counts[I] == 1 ? " " : "s", Rps[I], Rps[I] / Rps[0]);
  }
  double Speedup = Rps[2] / Rps[0];

  char Buf[512];
  std::snprintf(
      Buf, sizeof Buf,
      "{\n  \"binary\": \"serve_sharded\",\n  \"scale\": %g,\n"
      "  \"clients\": %u,\n  \"seconds\": %u,\n"
      "  \"rps_1\": %.1f,\n  \"rps_2\": %.1f,\n  \"rps_4\": %.1f,\n"
      "  \"speedup_4_over_1\": %.2f,\n  \"gate\": %.2f\n}\n",
      scaleFactor(), kClients, kSeconds, Rps[0], Rps[1], Rps[2], Speedup,
      kGate);
  writeJson(Buf);

  if (Speedup < kGate) {
    if (Forced) {
      std::printf("serve_sharded: %.2fx below the %.2fx gate, but forced "
                  "on an undersized machine — not gating\n",
                  Speedup, kGate);
      return 0;
    }
    std::fprintf(stderr,
                 "serve_sharded: FAIL speedup %.2fx < %.2fx gate\n",
                 Speedup, kGate);
    return 1;
  }
  std::printf("serve_sharded: OK %.2fx >= %.2fx gate\n", Speedup, kGate);
  return 0;
}
