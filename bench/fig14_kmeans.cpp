//===- bench/fig14_kmeans.cpp - Reproduces paper Figure 14 -----*- C++ -*-===//
//
// Figure 14 (§7.2): distributed k-means, unoptimized (LINQ vertices) vs
// Steno-optimized, varying the point dimension while holding the total
// input size (points x dimension) constant. The paper holds it at 10^9
// doubles across a 100-node cluster and reports speedups of 1.9x at
// d = 10, 1.19x at d = 100, converging near d = 1000 as the distance
// computation comes to dominate.
//
// Here the dryad substrate runs the same vertex programs over in-memory
// partitions (DESIGN.md documents the substitution); the default total is
// 2*10^7 doubles (scale with STENO_BENCH_SCALE). Reported per-dimension:
// one-iteration times for LINQ vertices, Steno vertices and hand loops,
// plus the LINQ/Steno speedup — the Figure 14 series.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "dryad/Dist.h"
#include "dryad/HomomorphicApply.h"
#include "workloads/Kmeans.h"

#include <cstdio>

using namespace steno;
using namespace steno::bench;
using namespace steno::workloads;

int main() {
  const std::int64_t TotalDoubles = scaled(20000000);
  const std::int64_t K = 10; // clusters
  const unsigned Parts = 8; // simulated vertices
  const std::int64_t Dims[] = {5, 10, 20, 50, 100, 200, 500, 1000};

  header("Figure 14: distributed k-means, speedup vs dimension");
  std::printf("total input held constant at %lld doubles "
              "(points x dim); k = %lld; %u partitions\n\n",
              static_cast<long long>(TotalDoubles),
              static_cast<long long>(K), Parts);

  dryad::ThreadPool Pool(Parts);

  std::printf("%6s %10s %12s %12s %12s %9s %9s\n", "dim", "points",
              "linq (ms)", "steno (ms)", "hand (ms)", "spdup",
              "vs hand");

  for (std::int64_t Dim : Dims) {
    std::int64_t NumPoints = TotalDoubles / Dim;
    if (NumPoints < K)
      continue;
    KmeansData Data = KmeansData::make(NumPoints, Dim, K, 99);
    std::vector<dryad::DoublePartition> Partitions =
        dryad::partitionPoints(Data.Points, Dim, Parts);

    // Compile the Steno vertex once per dimension (the query embeds the
    // static dim); amortized across the job's iterations as in §7.2.
    dryad::DistOptions Options;
    Options.Name = "kmeans_d" + std::to_string(Dim);
    dryad::DistributedQuery Step =
        dryad::DistributedQuery::compile(buildStepQuery(K, Dim), Options);

    const std::vector<double> &Centroids = Data.Centroids;
    std::vector<Bindings> PartBindings;
    for (const dryad::DoublePartition &P : Partitions) {
      Bindings B;
      B.bindPointArray(0, P.Data.data(), P.count(), Dim);
      B.bindDoubleArray(1, Centroids.data(),
                        static_cast<std::int64_t>(Centroids.size()));
      PartBindings.push_back(std::move(B));
    }

    double LinqS = bestSeconds(
        [&] {
          std::vector<double> Slots =
              mergePartials(dryad::homomorphicApply(
                  Pool, Partitions,
                  [&](const dryad::DoublePartition &P) {
                    return linqVertexPartials(P, Centroids, K, Dim);
                  }));
          doNotOptimize(Slots[0]);
        },
        2);

    double StenoS = bestSeconds(
        [&] {
          QueryResult R = Step.run(Pool, PartBindings);
          doNotOptimize(
              static_cast<std::int64_t>(R.rows().size()));
        },
        2);

    double HandS = bestSeconds(
        [&] {
          std::vector<double> Slots =
              mergePartials(dryad::homomorphicApply(
                  Pool, Partitions,
                  [&](const dryad::DoublePartition &P) {
                    return handVertexPartials(P, Centroids, K, Dim);
                  }));
          doNotOptimize(Slots[0]);
        },
        2);

    std::printf("%6lld %10lld %12.1f %12.1f %12.1f %8.2fx %8.2fx\n",
                static_cast<long long>(Dim),
                static_cast<long long>(NumPoints), LinqS * 1e3,
                StenoS * 1e3, HandS * 1e3, LinqS / StenoS,
                StenoS / HandS);
  }

  std::printf("\npaper's Figure 14: 1.9x at d=10, 1.19x at d=100, "
              "converging for d >= 1000 as per-element compute "
              "dominates the iterator overhead\n");
  return 0;
}
