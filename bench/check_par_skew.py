#!/usr/bin/env python3
"""Gate the par_skew benchmark against its recorded baseline.

Usage: check_par_skew.py BENCH_par_skew.json [baselines/par_skew.json]

Enforces two thresholds at 8 workers:
  - skew speedup (static seconds / steal seconds on the skewed input)
    must not regress below min_skew_speedup_w8;
  - uniform overhead (steal seconds / static seconds - 1 on the uniform
    input) must not exceed max_uniform_regression_w8;
  - absolute skew scaling (steal rows/s at 8 workers / rows/s at 1
    worker on the skewed input) must not fall below
    min_skew_scaling_w1_w8 — the scheduler must not merely beat static
    partitioning, it must actually scale.

The thresholds are measured at 8 workers and need ~4+ hardware threads
to manifest: on a 2-3 core runner the 8 static chunks already timeshare
(the OS scheduler implicitly rebalances them), so stealing shows no
skew win there and the gate would fail spuriously. The check therefore
SKIPS (exit 0, loud message) when os.cpu_count() < 4 — it only
enforces on multi-core runners like CI's bench-smoke job.
"""

import json
import os
import sys


def die(msg):
    print(f"check_par_skew: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) < 2:
        die(f"usage: {sys.argv[0]} BENCH_par_skew.json [baseline.json]")
    bench_path = sys.argv[1]
    baseline_path = (
        sys.argv[2]
        if len(sys.argv) > 2
        else os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "baselines", "par_skew.json")
    )

    cpus = os.cpu_count() or 1
    if cpus < 4:
        print(f"check_par_skew: SKIP: only {cpus} hardware thread(s); "
              "the 8-worker skew-speedup floor needs ~4+ cores (fewer "
              "cores timeshare the static chunks, implicitly "
              "rebalancing). Thresholds are enforced on multi-core CI "
              "runners.")
        return

    with open(bench_path) as f:
        bench = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    seconds = {r["name"]: r["seconds"] for r in bench["results"]}
    for name in ("static_skew_w8", "steal_skew_w8", "static_uniform_w8",
                 "steal_uniform_w8", "steal_skew_w1"):
        if name not in seconds:
            die(f"{bench_path} is missing result '{name}'")
        if seconds[name] <= 0:
            die(f"result '{name}' has non-positive seconds")

    thresholds = baseline["thresholds"]
    skew_speedup = seconds["static_skew_w8"] / seconds["steal_skew_w8"]
    uniform_regression = (
        seconds["steal_uniform_w8"] / seconds["static_uniform_w8"] - 1.0
    )
    # rows/s scaling of the stealing variant itself: same input, same
    # work, so the seconds ratio IS the throughput ratio.
    skew_scaling = seconds["steal_skew_w1"] / seconds["steal_skew_w8"]

    print(f"check_par_skew: skew speedup (steal vs static, 8 workers): "
          f"{skew_speedup:.2f}x (floor {thresholds['min_skew_speedup_w8']}x)")
    print(f"check_par_skew: uniform overhead (steal vs static, 8 workers): "
          f"{uniform_regression * 100:+.1f}% "
          f"(ceiling +{thresholds['max_uniform_regression_w8'] * 100:.0f}%)")

    print(f"check_par_skew: skew scaling (steal, 1 -> 8 workers): "
          f"{skew_scaling:.2f}x "
          f"(floor {thresholds['min_skew_scaling_w1_w8']}x)")

    if skew_speedup < thresholds["min_skew_speedup_w8"]:
        die(f"work stealing no longer beats static partitioning under "
            f"skew: {skew_speedup:.2f}x < "
            f"{thresholds['min_skew_speedup_w8']}x")
    if uniform_regression > thresholds["max_uniform_regression_w8"]:
        die(f"morsel dispatch overhead regressed on uniform input: "
            f"{uniform_regression * 100:+.1f}% > "
            f"+{thresholds['max_uniform_regression_w8'] * 100:.0f}%")
    if skew_scaling < thresholds["min_skew_scaling_w1_w8"]:
        die(f"work stealing does not scale on the skewed input: "
            f"{skew_scaling:.2f}x rows/s from 1 to 8 workers < "
            f"{thresholds['min_skew_scaling_w1_w8']}x")
    print("check_par_skew: OK")


if __name__ == "__main__":
    main()
