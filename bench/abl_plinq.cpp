//===- bench/abl_plinq.cpp - Ablation F: PLINQ vs HomomorphicApply -*-C++-*-===//
//
// §6's intra-machine story: DryadLINQ used to run homomorphic subqueries
// with PLINQ, whose per-element iterator composition "suffers from
// similar virtual call overheads to sequential LINQ"; the paper replaces
// it with HomomorphicApply, which maps the Steno-compiled query body
// across partitions with one indirect call per *partition*. This
// ablation measures that replacement on the SumSq workload:
//
//   linq (sequential)        one iterator chain, one thread
//   plinq                    iterator chains, one per partition
//   HomomorphicApply(fused)  fused loop body per partition
//   steno runParallel        the compiled dynamic query, view-partitioned
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "dryad/Dist.h"
#include "dryad/HomomorphicApply.h"
#include "expr/Dsl.h"
#include "fused/Fused.h"
#include "linq/Linq.h"
#include "plinq/Plinq.h"

#include <cstdio>

using namespace steno;
using namespace steno::bench;

int main() {
  const std::int64_t N = scaled(10000000);
  const unsigned Parts = 8;
  std::vector<double> Xs = uniformDoubles(N, 71);
  dryad::ThreadPool Pool(Parts);

  header("Ablation F: PLINQ vs HomomorphicApply (§6), sum of squares of " +
         std::to_string(N) + " doubles, " + std::to_string(Parts) +
         " partitions");

  double LinqS = bestSeconds([&] {
    doNotOptimize(linq::fromSpan(Xs.data(), Xs.size())
                      .select([](double X) { return X * X; })
                      .sum());
  });

  double PlinqS = bestSeconds([&] {
    doNotOptimize(plinq::asParallel(Pool, Xs)
                      .select([](double X) { return X * X; })
                      .sum());
  });

  // HomomorphicApply over a statically fused body.
  std::vector<plinq::ParSeq<double>> Dummy; // (just for symmetry docs)
  std::vector<linq::Seq<double>> Chunks =
      plinq::partitionSpan(Xs.data(), Xs.size(), Parts);
  // Raw spans for the fused body (no iterator interface).
  struct Span {
    const double *Data;
    std::size_t N;
  };
  std::vector<Span> Spans;
  {
    std::size_t Base = Xs.size() / Parts;
    std::size_t Extra = Xs.size() % Parts;
    std::size_t Pos = 0;
    for (unsigned P = 0; P != Parts; ++P) {
      std::size_t Len = Base + (P < Extra ? 1 : 0);
      Spans.push_back(Span{Xs.data() + Pos, Len});
      Pos += Len;
    }
  }
  double HomS = bestSeconds([&] {
    std::vector<double> Partials = dryad::homomorphicApply(
        Pool, Spans, [](const Span &S) {
          return fused::from(S.Data, S.N) |
                 fused::select([](double X) { return X * X; }) |
                 fused::sum();
        });
    double Total = 0;
    for (double V : Partials)
      Total += V;
    doNotOptimize(Total);
  });

  // The dynamic pipeline end-to-end: compiled once, view-partitioned.
  using namespace steno::expr;
  using namespace steno::expr::dsl;
  auto X = param("x", Type::doubleTy());
  query::Query Q = query::Query::doubleArray(0)
                       .select(lambda({X}, X * X))
                       .sum();
  dryad::DistributedQuery DQ = dryad::DistributedQuery::compile(Q);
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), N);
  double StenoS = bestSeconds([&] {
    doNotOptimize(
        DQ.runParallel(Pool, B).scalarValue().asDouble());
  });

  std::printf("\n%-26s %12s %14s %9s\n", "variant", "time (ms)",
              "rel. to LINQ", "speedup");
  auto Row = [&](const char *Name, double S) {
    std::printf("%-26s %12.1f %13.1f%% %8.2fx\n", Name, S * 1e3,
                100.0 * S / LinqS, LinqS / S);
  };
  Row("linq (sequential)", LinqS);
  Row("plinq (iterators)", PlinqS);
  Row("HomomorphicApply(fused)", HomS);
  Row("steno runParallel", StenoS);
  std::printf("\n(on a single hardware thread the parallel variants gain "
              "nothing from concurrency, isolating the per-element cost "
              "difference §6 describes)\n");
  (void)Chunks;
  (void)Dummy;
  return 0;
}
