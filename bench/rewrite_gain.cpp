//===- bench/rewrite_gain.cpp - Run-time win from the plan rewriter ------===//
//
// Measures what STENO_REWRITE=on buys on a dead-predicate-heavy query:
// three filters that are provably always-true by interval reasoning
// (x % 8 < 8, abs(x % 3) >= 0, x % 5 <= 4), a Skip 0, and a division
// whose divisor interval [1, 7] lets the rewriter elide the ckdiv trap.
// The rewriter reduces the plan to Src -> Select -> Agg; the unrewritten
// plan evaluates every predicate per element and keeps the trap check.
//
// Gate: on the Interp backend — where each surviving operator costs a
// real per-element AST walk, so the plan-level win is isolated from the
// C++ optimizer — rewrite-on must be at least 20% faster than
// rewrite-off (the ISSUE budget). The process exits 1 otherwise, so the
// bench-smoke CI job fails loudly. The Native-backend ratio is reported
// for information: g++ -O2 folds constant-true predicates on its own, so
// the native win is smaller by design.
//
// Writes BENCH_rewrite_gain.json (see BenchUtil.h JsonReport).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "expr/Dsl.h"
#include "steno/Steno.h"

#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

using namespace steno;
using namespace steno::bench;
using namespace steno::expr;
using namespace steno::expr::dsl;
using query::Query;

namespace {

E xi() { return param("xi", Type::int64Ty()); }
E ci(long long V) { return E(static_cast<std::int64_t>(V)); }

/// The dead-pred-heavy pipeline. Every Where is provably true for every
/// int64 element (the facts need interval reasoning, not just literal
/// folding), Skip 0 is a provable no-op, and the Select divisor
/// 1 + abs(xi % 7) has interval [1, 7].
Query deadPredHeavy() {
  return Query::int64Array(0)
      .where(lambda({xi()}, (xi() % ci(8)) < ci(8)))
      .where(lambda({xi()}, abs(xi() % ci(3)) >= ci(0)))
      .skip(ci(0))
      .where(lambda({xi()}, (xi() % ci(5)) <= ci(4)))
      .select(lambda({xi()}, xi() / (ci(1) + abs(xi() % ci(7)))))
      .sum();
}

CompileOptions opts(Backend Exec, bool Rewrite, const char *Name) {
  CompileOptions O;
  O.Exec = Exec;
  O.Rewrite = Rewrite;
  O.Analyze = analysis::Mode::Off; // isolate run time from diagnostics
  O.Name = Name;
  return O;
}

double runSeconds(const Query &Q, Backend Exec, bool Rewrite,
                  const char *Name, const Bindings &B) {
  CompiledQuery CQ = compileQuery(Q, opts(Exec, Rewrite, Name));
  return bestSeconds(
      [&] { doNotOptimize(CQ.run(B).scalarValue().asInt64()); },
      /*Reps=*/5);
}

} // namespace

int main() {
  header("plan-rewriter run-time gain (dead-pred-heavy query)");
  const std::int64_t N = scaled(2000000);
  std::vector<std::int64_t> Data(static_cast<std::size_t>(N));
  std::mt19937_64 Rng(7);
  std::uniform_int_distribution<std::int64_t> Dist(-1000, 1000);
  for (auto &V : Data)
    V = Dist(Rng);
  Bindings B;
  B.bindInt64Array(0, Data.data(), N);

  JsonReport Json("rewrite_gain");
  Query Q = deadPredHeavy();

  double InterpOn = runSeconds(Q, Backend::Interp, true, "rw_gain_i_on", B);
  double InterpOff =
      runSeconds(Q, Backend::Interp, false, "rw_gain_i_off", B);
  double NativeOn = runSeconds(Q, Backend::Native, true, "rw_gain_n_on", B);
  double NativeOff =
      runSeconds(Q, Backend::Native, false, "rw_gain_n_off", B);

  double InterpGain = 1.0 - InterpOn / InterpOff;
  double NativeGain = 1.0 - NativeOn / NativeOff;
  std::printf("  interp  on %8.2f ms   off %8.2f ms   gain %5.1f%%\n",
              InterpOn * 1e3, InterpOff * 1e3, 100.0 * InterpGain);
  std::printf("  native  on %8.2f ms   off %8.2f ms   gain %5.1f%%\n",
              NativeOn * 1e3, NativeOff * 1e3, 100.0 * NativeGain);

  Json.add("interp_rewrite_on", InterpOn, N, 5);
  Json.add("interp_rewrite_off", InterpOff, N, 5);
  Json.add("native_rewrite_on", NativeOn, N, 5);
  Json.add("native_rewrite_off", NativeOff, N, 5);

  if (InterpGain < 0.20) {
    std::fprintf(stderr,
                 "rewrite_gain: FAIL interp gain %.1f%% is below the 20%% "
                 "budget\n",
                 100.0 * InterpGain);
    return 1;
  }
  return 0;
}
