//===- bench/fig13_micro.cpp - Reproduces paper Figure 13 ------*- C++ -*-===//
//
// Figure 13 (§7.1): the four sequential microbenchmarks —
//   Sum    sum of 10^7 doubles
//   SumSq  sum of squares of 10^7 doubles
//   Cart   Cartesian product of 10^7 x 10^3 doubles, multiplied & summed
//   Group  binned histogram of 10^7 mixture-of-Gaussians doubles
// each measured as: LINQ, Steno including compilation, Steno excluding
// compilation, and hand-optimized — normalized to the LINQ time.
//
// Paper results: speedups 3.32x (Sum) .. 14.1x (Group); Steno-vs-hand
// overhead 53% for Sum (a missed JIT temporary elimination) and <3% for
// the others.
//
// Cart defaults to 10^5 x 10^3 pairs here (10^8 inner elements) so the
// LINQ variant finishes in seconds on one core; scale with
// STENO_BENCH_SCALE.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "support/Timing.h"
#include "expr/Dsl.h"
#include "linq/Linq.h"
#include "steno/Steno.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

using namespace steno;
using namespace steno::bench;
using namespace steno::expr;
using namespace steno::expr::dsl;
using query::Query;

namespace {

struct Result {
  double LinqS = 0;
  double StenoInclS = 0;
  double StenoExclS = 0;
  double HandS = 0;
};

void report(const char *Name, const Result &R, JsonReport &Json,
            std::int64_t Items) {
  std::printf("\n%s (normalized to LINQ = 100%%)\n", Name);
  auto Row = [&](const char *Variant, double S) {
    std::printf("  %-26s %10.1f ms %9.1f%% %8.2fx\n", Variant, S * 1e3,
                100.0 * S / R.LinqS, R.LinqS / S);
  };
  Row("LINQ", R.LinqS);
  Row("Steno (incl. compilation)", R.StenoInclS);
  Row("Steno (excl. compilation)", R.StenoExclS);
  Row("hand-optimized", R.HandS);
  std::printf("  Steno-vs-hand overhead: %+.1f%%\n",
              100.0 * (R.StenoExclS / R.HandS - 1.0));
  std::string Prefix = std::string(Name) + "_";
  Json.add(Prefix + "linq", R.LinqS, Items);
  Json.add(Prefix + "steno_incl_compile", R.StenoInclS, Items);
  Json.add(Prefix + "steno_excl_compile", R.StenoExclS, Items);
  Json.add(Prefix + "hand", R.HandS, Items);
}

/// Times the Steno path both with and without the one-off compilation.
void timeSteno(const Query &Q, const Bindings &B, Result &R,
               int Reps = 3) {
  // Including compilation: compile + one run, fresh each repetition.
  R.StenoInclS = bestSeconds(
      [&] {
        CompiledQuery CQ = compileQuery(Q, {});
        doNotOptimize(
            static_cast<double>(CQ.run(B).rows().size()));
      },
      /*Reps=*/2);
  // Excluding compilation: reuse the cached compiled query (§7.1).
  CompiledQuery CQ = compileQuery(Q, {});
  R.StenoExclS = bestSeconds(
      [&] {
        doNotOptimize(static_cast<double>(CQ.run(B).rows().size()));
      },
      Reps);
}

//===--------------------------------------------------------------------===//
// Sum
//===--------------------------------------------------------------------===//

Result runSum(const std::vector<double> &Xs) {
  // Sub-15ms measurements drift with CPU frequency on this box, so the
  // three cheap variants are timed INTERLEAVED per repetition (drift
  // affects them equally) and best-of is taken per variant.
  Result R;
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), static_cast<std::int64_t>(Xs.size()));
  Query Q = Query::doubleArray(0).sum();
  CompiledQuery CQ = compileQuery(Q, {});
  R.LinqS = R.HandS = R.StenoExclS = 1e300;
  for (int Rep = 0; Rep < 9; ++Rep) {
    support::WallTimer T;
    doNotOptimize(linq::fromSpan(Xs.data(), Xs.size()).sum());
    R.LinqS = std::min(R.LinqS, T.seconds());
    T.reset();
    double Acc = 0;
    for (double X : Xs)
      Acc += X;
    doNotOptimize(Acc);
    R.HandS = std::min(R.HandS, T.seconds());
    T.reset();
    doNotOptimize(CQ.run(B).scalarValue().asDouble());
    R.StenoExclS = std::min(R.StenoExclS, T.seconds());
  }
  R.StenoInclS = bestSeconds(
      [&] {
        CompiledQuery Fresh = compileQuery(Q, {});
        doNotOptimize(Fresh.run(B).scalarValue().asDouble());
      },
      2);
  return R;
}

//===--------------------------------------------------------------------===//
// SumSq
//===--------------------------------------------------------------------===//

Result runSumSq(const std::vector<double> &Xs) {
  Result R;
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), static_cast<std::int64_t>(Xs.size()));
  auto X = param("x", Type::doubleTy());
  Query Q = Query::doubleArray(0).select(lambda({X}, X * X)).sum();
  CompiledQuery CQ = compileQuery(Q, {});
  R.LinqS = R.HandS = R.StenoExclS = 1e300;
  for (int Rep = 0; Rep < 9; ++Rep) {
    support::WallTimer T;
    doNotOptimize(linq::fromSpan(Xs.data(), Xs.size())
                      .select([](double V) { return V * V; })
                      .sum());
    R.LinqS = std::min(R.LinqS, T.seconds());
    T.reset();
    double Acc = 0;
    for (double V : Xs)
      Acc += V * V;
    doNotOptimize(Acc);
    R.HandS = std::min(R.HandS, T.seconds());
    T.reset();
    doNotOptimize(CQ.run(B).scalarValue().asDouble());
    R.StenoExclS = std::min(R.StenoExclS, T.seconds());
  }
  R.StenoInclS = bestSeconds(
      [&] {
        CompiledQuery Fresh = compileQuery(Q, {});
        doNotOptimize(Fresh.run(B).scalarValue().asDouble());
      },
      2);
  return R;
}

//===--------------------------------------------------------------------===//
// Cart
//===--------------------------------------------------------------------===//

Result runCart(const std::vector<double> &Xs,
               const std::vector<double> &Ys) {
  Result R;
  R.LinqS = bestSeconds(
      [&] {
        double V = linq::fromSpan(Xs.data(), Xs.size())
                       .selectMany([&Ys](double X) {
                         return linq::fromSpan(Ys.data(), Ys.size())
                             .select([X](double Y) { return X * Y; });
                       })
                       .sum();
        doNotOptimize(V);
      },
      /*Reps=*/2);
  R.HandS = bestSeconds([&] {
    double Acc = 0;
    for (double X : Xs)
      for (double Y : Ys)
        Acc += X * Y;
    doNotOptimize(Acc);
  });
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), static_cast<std::int64_t>(Xs.size()));
  B.bindDoubleArray(1, Ys.data(), static_cast<std::int64_t>(Ys.size()));
  auto X = param("x", Type::doubleTy());
  auto Y = param("y", Type::doubleTy());
  Query Q = Query::doubleArray(0)
                .selectMany(X, Query::doubleArray(1)
                                   .select(lambda({Y}, X * Y)))
                .sum();
  timeSteno(Q, B, R, /*Reps=*/2);
  return R;
}

//===--------------------------------------------------------------------===//
// Group
//===--------------------------------------------------------------------===//

Result runGroup(const std::vector<double> &Xs) {
  const std::int64_t Bins = 1000;
  Result R;
  // LINQ: GroupBy with a counting result selector (bags materialized, as
  // unoptimized LINQ does).
  R.LinqS = bestSeconds(
      [&] {
        auto Rows =
            linq::fromSpan(Xs.data(), Xs.size())
                .groupBy(
                    [](double X) {
                      return static_cast<std::int64_t>(X);
                    },
                    [](std::int64_t Key,
                       const std::vector<double> &Bag) {
                      return std::make_pair(
                          Key,
                          static_cast<std::int64_t>(Bag.size()));
                    })
                .toVector();
        doNotOptimize(static_cast<std::int64_t>(Rows.size()));
      },
      /*Reps=*/2);
  // Hand-optimized: one pass with a hash map from bin to count — what a
  // programmer writes when the key range is not statically known (the
  // generated GroupByAggregate sink is also hash-based; the dense-array
  // variant for known key ranges is measured in abl_groupby).
  (void)Bins;
  R.HandS = bestSeconds([&] {
    std::unordered_map<std::int64_t, std::int64_t> Counts;
    for (double X : Xs)
      ++Counts[static_cast<std::int64_t>(X)];
    doNotOptimize(static_cast<std::int64_t>(Counts.size()));
  });
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), static_cast<std::int64_t>(Xs.size()));
  auto X = param("x", Type::doubleTy());
  auto G = param("g", Type::pairTy(Type::int64Ty(), Type::vecTy()));
  auto C = param("c", Type::int64Ty());
  auto V = param("v", Type::doubleTy());
  Query BagCount = Query::overVec(G.second())
                       .aggregate(E(0), lambda({C, V}, C + 1),
                                  lambda({C}, pair(G.first(), C)));
  Query Q = Query::doubleArray(0)
                .groupBy(lambda({X}, toInt64(X)))
                .selectNested(G, BagCount);
  timeSteno(Q, B, R, /*Reps=*/2);
  return R;
}

} // namespace

int main() {
  const std::int64_t N = scaled(10000000);
  const std::int64_t CartOuter = scaled(100000);
  const std::int64_t CartInner = 1000;

  header("Figure 13: sequential microbenchmarks");
  std::printf("Sum/SumSq/Group over %lld doubles; Cart over %lld x %lld\n",
              static_cast<long long>(N),
              static_cast<long long>(CartOuter),
              static_cast<long long>(CartInner));

  JsonReport Json("fig13_micro");

  std::vector<double> Uniform = uniformDoubles(N, 2);
  report("Sum", runSum(Uniform), Json, N);
  report("SumSq", runSumSq(Uniform), Json, N);

  std::vector<double> CartXs = uniformDoubles(CartOuter, 3, 0, 1);
  std::vector<double> CartYs = uniformDoubles(CartInner, 4, 0, 1);
  report("Cart", runCart(CartXs, CartYs), Json, CartOuter * CartInner);

  std::vector<double> Mog = mixtureOfGaussians(N, 5);
  report("Group", runGroup(Mog), Json, N);

  std::printf("\npaper's Figure 13: speedups 3.32x (Sum) .. 14.1x "
              "(Group); Steno-vs-hand overhead 53%% (Sum), <3%% "
              "(others)\n");
  return 0;
}
