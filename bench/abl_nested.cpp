//===- bench/abl_nested.cpp - Ablation A: nested-loop generation -*-C++-*-===//
//
// Isolates the contribution of §5 (nested loop generation) from plain
// iterator fusion on the Cart query. The paper argues that without the
// Figure 11 stack transition "the Sum and nested SelectMany operators
// must consume from iterators, which limits the potential performance
// improvement"; this ablation measures exactly that configuration:
//
//   linq              every boundary is an iterator (the baseline)
//   fused-outer-only  the outer loop is fused, but each nested collection
//                     is consumed through a type-erased iterator boundary
//   steno (jit)       full fusion including nested loops
//   hand              plain nested for loops
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "expr/Dsl.h"
#include "linq/Linq.h"
#include "steno/Steno.h"

#include <cstdio>

using namespace steno;
using namespace steno::bench;
using namespace steno::expr;
using namespace steno::expr::dsl;
using query::Query;

int main() {
  const std::int64_t Outer = scaled(100000);
  const std::int64_t Inner = 1000;
  std::vector<double> Xs = uniformDoubles(Outer, 21, 0, 1);
  std::vector<double> Ys = uniformDoubles(Inner, 22, 0, 1);

  header("Ablation A: iterator fusion with/without nested-loop "
         "generation (Cart, " +
         std::to_string(Outer) + " x " + std::to_string(Inner) + ")");

  // Full iterator chains.
  double LinqS = bestSeconds(
      [&] {
        double V = linq::fromSpan(Xs.data(), Xs.size())
                       .selectMany([&Ys](double X) {
                         return linq::fromSpan(Ys.data(), Ys.size())
                             .select([X](double Y) { return X * Y; });
                       })
                       .sum();
        doNotOptimize(V);
      },
      2);

  // Outer loop fused; the nested query still crosses an opaque iterator
  // boundary per inner element (what a naive "optimize each query
  // separately" scheme yields, §5's strawman).
  double OuterOnlyS = bestSeconds(
      [&] {
        double Acc = 0;
        for (double X : Xs) {
          linq::Seq<double> InnerSeq =
              linq::fromSpan(Ys.data(), Ys.size())
                  .select([X](double Y) { return X * Y; });
          auto E = InnerSeq.getEnumerator();
          while (E->moveNext())
            Acc += E->current();
        }
        doNotOptimize(Acc);
      },
      2);

  // Full Steno.
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), Outer);
  B.bindDoubleArray(1, Ys.data(), Inner);
  auto X = param("x", Type::doubleTy());
  auto Y = param("y", Type::doubleTy());
  Query Q = Query::doubleArray(0)
                .selectMany(X, Query::doubleArray(1)
                                   .select(lambda({Y}, X * Y)))
                .sum();
  CompiledQuery CQ = compileQuery(Q, {});
  double StenoS = bestSeconds(
      [&] { doNotOptimize(CQ.run(B).scalarValue().asDouble()); }, 2);

  // Hand loops.
  double HandS = bestSeconds(
      [&] {
        double Acc = 0;
        for (double Xv : Xs)
          for (double Yv : Ys)
            Acc += Xv * Yv;
        doNotOptimize(Acc);
      },
      2);

  std::printf("\n%-20s %12s %14s %9s\n", "variant", "time (ms)",
              "rel. to LINQ", "speedup");
  auto Row = [&](const char *Name, double S) {
    std::printf("%-20s %12.1f %13.1f%% %8.2fx\n", Name, S * 1e3,
                100.0 * S / LinqS, LinqS / S);
  };
  Row("linq (no fusion)", LinqS);
  Row("fused-outer-only", OuterOnlyS);
  Row("steno (jit)", StenoS);
  Row("hand loops", HandS);
  std::printf("\nthe gap between fused-outer-only and steno is the "
              "contribution of nested-loop generation (§5)\n");
  return 0;
}
