//===- bench/vec_batch.cpp - Batched vs scalar interpretation --*- C++ -*-===//
//
// Measures the vectorized columnar batch path (DESIGN.md §5i) against
// the element-at-a-time scalar path on the paper's single-thread
// workloads: the Figure 1 sum-of-squares chain and a Figure 13-style
// filtered chain that exercises selection vectors. Sweeps the batch
// size (64 / 256 / 1024 / 4096) to show the amortization curve — per-
// element interpreter dispatch is replaced by one dispatch per batch,
// so the win should saturate once the batch covers the dispatch cost.
//
// The JIT comparison is informational: the native scalar loop is
// already fused, so batching buys at most the compiler's SIMD latitude.
//
// Gate (CI bench-smoke): the batched interpreter at the default batch
// size must hold at least a 1.5x throughput advantage over the scalar
// interpreter on the Figure 1 chain; exits 1 otherwise.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "expr/Dsl.h"
#include "steno/Steno.h"

#include <cstdio>
#include <cstdlib>

using namespace steno;
using namespace steno::bench;
using namespace steno::expr;
using namespace steno::expr::dsl;
using query::Query;

namespace {

CompiledQuery compileVariant(const Query &Q, Backend Exec, bool Vectorize,
                             const std::string &Name) {
  CompileOptions O;
  O.Exec = Exec;
  O.Vectorize = Vectorize;
  O.Name = Name;
  return compileQuery(Q, O);
}

double runSeconds(const CompiledQuery &CQ, const Bindings &B) {
  return bestSeconds(
      [&] { doNotOptimize(CQ.run(B).scalarValue().asDouble()); });
}

} // namespace

int main() {
  const std::int64_t N = scaled(10000000);
  std::vector<double> Xs = uniformDoubles(N, 1);
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), N);

  auto X = param("x", Type::doubleTy());
  // Figure 1: Select(x => x*x).Sum().
  Query Fig01 = Query::doubleArray(0).select(lambda({X}, X * X)).sum();
  // Figure 13-style filtered chain: Where survivors go sparse, so the
  // batched path runs its selection-vector kernels.
  Query Fig13F = Query::doubleArray(0)
                     .where(lambda({X}, X > E(250.0)))
                     .select(lambda({X}, X * X + E(1.0)))
                     .sum();

  struct Shape {
    const char *Name;
    const Query *Q;
  } Shapes[] = {{"fig01", &Fig01}, {"fig13_filtered", &Fig13F}};

  const char *BatchSizes[] = {"64", "256", "1024", "4096"};

  header("Vectorized batch execution: interpreter, " + std::to_string(N) +
         " doubles");
  std::printf("%-28s %12s %12s %10s\n", "variant", "time (ms)",
              "Melem/s", "speedup");

  JsonReport Json("vec_batch");
  double Fig01Scalar = 0, Fig01Vec1024 = 0;

  for (const Shape &S : Shapes) {
    CompiledQuery Scalar = compileVariant(
        *S.Q, Backend::Interp, false, std::string(S.Name) + "_scalar");
    double ScalarS = runSeconds(Scalar, B);
    Json.add(std::string(S.Name) + "_interp_scalar", ScalarS, N);
    std::printf("%-28s %12.1f %12.1f %9s\n",
                (std::string(S.Name) + " interp scalar").c_str(),
                ScalarS * 1e3, static_cast<double>(N) / ScalarS / 1e6,
                "1.00x");
    if (S.Q == &Fig01)
      Fig01Scalar = ScalarS;

    for (const char *BS : BatchSizes) {
      ::setenv("STENO_BATCH_SIZE", BS, 1); // read at plan time
      CompiledQuery Vec =
          compileVariant(*S.Q, Backend::Interp, true,
                         std::string(S.Name) + "_vec_b" + BS);
      ::unsetenv("STENO_BATCH_SIZE");
      if (!Vec.vectorized()) {
        std::fprintf(stderr, "vec_batch: %s did not vectorize\n", S.Name);
        return 1;
      }
      double VecS = runSeconds(Vec, B);
      Json.add(std::string(S.Name) + "_interp_vec_b" + BS, VecS, N);
      std::printf("%-28s %12.1f %12.1f %9.2fx\n",
                  (std::string(S.Name) + " interp batch=" + BS).c_str(),
                  VecS * 1e3, static_cast<double>(N) / VecS / 1e6,
                  ScalarS / VecS);
      if (S.Q == &Fig01 && std::string(BS) == "1024")
        Fig01Vec1024 = VecS;
    }
  }

  // JIT, informational: scalar fused loop vs generated batch loops.
  header("Vectorized batch execution: native (informational)");
  {
    CompiledQuery JitScalar =
        compileVariant(Fig01, Backend::Native, false, "fig01_jit_scalar");
    CompiledQuery JitVec =
        compileVariant(Fig01, Backend::Native, true, "fig01_jit_vec");
    double ScalarS = runSeconds(JitScalar, B);
    double VecS = runSeconds(JitVec, B);
    Json.add("fig01_jit_scalar", ScalarS, N);
    Json.add("fig01_jit_vec", VecS, N);
    std::printf("%-28s %12.1f %12.1f %9s\n", "fig01 jit scalar",
                ScalarS * 1e3, static_cast<double>(N) / ScalarS / 1e6,
                "1.00x");
    std::printf("%-28s %12.1f %12.1f %9.2fx\n", "fig01 jit batched",
                VecS * 1e3, static_cast<double>(N) / VecS / 1e6,
                ScalarS / VecS);
  }

  double Speedup = Fig01Vec1024 > 0 ? Fig01Scalar / Fig01Vec1024 : 0;
  std::printf("\nfig01 batched(1024) vs scalar interp: %.2fx "
              "(gate: >= 1.50x)\n",
              Speedup);
  if (Speedup < 1.5) {
    std::fprintf(stderr,
                 "vec_batch: FAIL: batched interpreter speedup %.2fx "
                 "below the 1.5x floor\n",
                 Speedup);
    return 1;
  }
  return 0;
}
