//===- examples/kmeans.cpp - Distributed k-means (paper §7.2) --*- C++ -*-===//
//
// The paper's real-world distributed job: k-means clustering on a
// partitioned dataset, executed on the dryad substrate three ways —
// baseline linq iterator vertices, Steno-optimized vertices (the
// declarative query compiled to fused loops, run per partition with an
// Agg* merge), and hand-written loops. Prints per-iteration times and
// checks all three converge to the same centroids.
//
// Build & run:  ./build/examples/kmeans [points] [dim] [k] [partitions]
//
//===----------------------------------------------------------------------===//

#include "dryad/Dist.h"
#include "dryad/HomomorphicApply.h"
#include "workloads/Kmeans.h"
#include "support/Timing.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace steno;
using namespace steno::workloads;

int main(int Argc, char **Argv) {
  std::int64_t NumPoints =
      Argc > 1 ? std::atoll(Argv[1]) : std::int64_t{100000};
  std::int64_t Dim = Argc > 2 ? std::atoll(Argv[2]) : std::int64_t{16};
  std::int64_t K = Argc > 3 ? std::atoll(Argv[3]) : std::int64_t{8};
  unsigned Parts = Argc > 4 ? static_cast<unsigned>(std::atoi(Argv[4])) : 4;
  const int Iterations = 5;

  std::printf("k-means: %lld points, dim %lld, k %lld, %u partitions\n",
              static_cast<long long>(NumPoints),
              static_cast<long long>(Dim), static_cast<long long>(K),
              Parts);

  KmeansData Data = KmeansData::make(NumPoints, Dim, K, 4242);
  std::vector<dryad::DoublePartition> Partitions =
      dryad::partitionPoints(Data.Points, Dim, Parts);
  dryad::ThreadPool Pool(Parts);

  // Compile the Steno vertex once; the cost amortizes over iterations.
  support::WallTimer CompileTimer;
  dryad::DistOptions Options;
  Options.Name = "kmeans_step";
  dryad::DistributedQuery Step =
      dryad::DistributedQuery::compile(buildStepQuery(K, Dim), Options);
  std::printf("steno vertex compiled in %.0f ms (one-off; amortized "
              "across iterations)\n\n",
              CompileTimer.millis());

  auto RunSteno = [&](const std::vector<double> &Centroids) {
    std::vector<Bindings> PartBindings;
    for (const dryad::DoublePartition &P : Partitions) {
      Bindings B;
      B.bindPointArray(0, P.Data.data(), P.count(), Dim);
      B.bindDoubleArray(1, Centroids.data(),
                        static_cast<std::int64_t>(Centroids.size()));
      PartBindings.push_back(std::move(B));
    }
    QueryResult R = Step.run(Pool, PartBindings);
    std::vector<double> Slots(
        static_cast<size_t>(numSlots(K, Dim)), 0.0);
    for (const expr::Value &Row : R.rows())
      Slots[static_cast<size_t>(Row.first().asInt64())] =
          Row.second().asDouble();
    return Slots;
  };

  auto RunLinq = [&](const std::vector<double> &Centroids) {
    return mergePartials(dryad::homomorphicApply(
        Pool, Partitions, [&](const dryad::DoublePartition &P) {
          return linqVertexPartials(P, Centroids, K, Dim);
        }));
  };

  auto RunHand = [&](const std::vector<double> &Centroids) {
    return mergePartials(dryad::homomorphicApply(
        Pool, Partitions, [&](const dryad::DoublePartition &P) {
          return handVertexPartials(P, Centroids, K, Dim);
        }));
  };

  std::vector<double> CSteno = Data.Centroids;
  std::vector<double> CLinq = Data.Centroids;
  std::vector<double> CHand = Data.Centroids;

  std::printf("%4s  %12s  %12s  %12s  %9s\n", "iter", "linq (ms)",
              "steno (ms)", "hand (ms)", "speedup");
  for (int It = 0; It != Iterations; ++It) {
    support::WallTimer T;
    std::vector<double> SlotsLinq = RunLinq(CLinq);
    double LinqMs = T.millis();
    T.reset();
    std::vector<double> SlotsSteno = RunSteno(CSteno);
    double StenoMs = T.millis();
    T.reset();
    std::vector<double> SlotsHand = RunHand(CHand);
    double HandMs = T.millis();

    CLinq = centroidsFromSlots(SlotsLinq, CLinq, K, Dim);
    CSteno = centroidsFromSlots(SlotsSteno, CSteno, K, Dim);
    CHand = centroidsFromSlots(SlotsHand, CHand, K, Dim);
    std::printf("%4d  %12.1f  %12.1f  %12.1f  %8.2fx\n", It, LinqMs,
                StenoMs, HandMs, LinqMs / StenoMs);
  }

  // All three paths must agree.
  double MaxDelta = 0;
  for (size_t I = 0; I != CSteno.size(); ++I) {
    MaxDelta = std::max(MaxDelta, std::fabs(CSteno[I] - CLinq[I]));
    MaxDelta = std::max(MaxDelta, std::fabs(CSteno[I] - CHand[I]));
  }
  std::printf("\nmax centroid disagreement across implementations: %.3g\n",
              MaxDelta);
  std::printf("final centroids (first cluster): [");
  for (std::int64_t J = 0; J != std::min<std::int64_t>(Dim, 6); ++J)
    std::printf("%s%.3f", J ? ", " : "", CSteno[static_cast<size_t>(J)]);
  std::printf("%s]\n", Dim > 6 ? ", ..." : "");
  return MaxDelta < 1e-6 ? 0 : 1;
}
