//===- examples/quickstart.cpp - First steps with Steno/C++ ----*- C++ -*-===//
//
// The paper's running example (§2): "even squares". Shows the three ways
// to run a query in this library:
//   1. the linq baseline (lazy iterator chains — what Steno optimizes),
//   2. the Steno dynamic pipeline (query AST -> QUIL -> generated loops),
//   3. the static fused pipeline (compile-time fusion).
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "expr/Dsl.h"
#include "fused/Fused.h"
#include "linq/Linq.h"
#include "steno/Steno.h"

#include <cstdio>
#include <vector>

using namespace steno;

int main() {
  // Some data: 0, 1, ..., 19.
  std::vector<std::int64_t> Xs;
  for (std::int64_t I = 0; I < 20; ++I)
    Xs.push_back(I);

  //--------------------------------------------------------------------//
  // 1. The linq baseline: C#-style lazy iterators.
  //    var evenSquares = from x in xs where x % 2 == 0 select x * x;
  //--------------------------------------------------------------------//
  auto EvenSquares =
      linq::fromSpan(Xs.data(), Xs.size())
          .where([](std::int64_t X) { return X % 2 == 0; })
          .select([](std::int64_t X) { return X * X; });

  std::printf("linq:  ");
  for (std::int64_t V : EvenSquares)
    std::printf("%lld ", static_cast<long long>(V));
  std::printf("\n");

  //--------------------------------------------------------------------//
  // 2. Steno: the same query as an expression tree, optimized into a
  //    single imperative loop, compiled and loaded at run time (§3).
  //--------------------------------------------------------------------//
  using namespace steno::expr;
  using namespace steno::expr::dsl;
  auto X = param("x", Type::int64Ty());
  query::Query Q = query::Query::int64Array(0)
                       .where(lambda({X}, X % 2 == 0))
                       .select(lambda({X}, X * X));

  CompiledQuery CQ = compileQuery(Q, {});
  std::printf("steno: ");
  Bindings B;
  B.bindInt64Array(0, Xs.data(), static_cast<std::int64_t>(Xs.size()));
  QueryResult R = CQ.run(B);
  for (const Value &Row : R.rows())
    std::printf("%lld ", static_cast<long long>(Row.asInt64()));
  std::printf("\n");
  std::printf("(one-off compile+load cost: %.1f ms — cache the "
              "CompiledQuery to amortize it, §7.1)\n",
              CQ.compileMillis());

  //--------------------------------------------------------------------//
  // 3. The static fused pipeline: what §9's "do it in the compiler"
  //    endpoint looks like — zero run-time compilation.
  //--------------------------------------------------------------------//
  std::printf("fused: ");
  fused::from(Xs) |
      fused::where([](std::int64_t V) { return V % 2 == 0; }) |
      fused::select([](std::int64_t V) { return V * V; }) |
      fused::forEach([](std::int64_t V) {
        std::printf("%lld ", static_cast<long long>(V));
      });
  std::printf("\n");

  //--------------------------------------------------------------------//
  // Peek behind the curtain: the loop-based code Steno generated.
  //--------------------------------------------------------------------//
  std::printf("\n--- generated code for the steno query ---\n%s",
              CQ.generatedSource().c_str());
  return 0;
}
