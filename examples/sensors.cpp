//===- examples/sensors.cpp - Log-analytics style queries ------*- C++ -*-===//
//
// A small telemetry-analytics scenario in the style the paper's intro
// motivates (data-center log processing): a stream of sensor readings is
// reduced to per-device statistics with a GroupBy-Aggregate, filtered with
// a HAVING-style predicate over groups, and ranked with OrderBy — all as
// one declarative query that Steno turns into two loops (the fill loop and
// the sink iteration loop) with no iterators in between.
//
// Build & run:  ./build/examples/sensors [num_readings]
//
//===----------------------------------------------------------------------===//

#include "expr/Dsl.h"
#include "linq/Linq.h"
#include "steno/Steno.h"
#include "support/Random.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace steno;

int main(int Argc, char **Argv) {
  size_t N = Argc > 1 ? static_cast<size_t>(std::atoll(Argv[1])) : 500000;
  const std::int64_t NumDevices = 64;

  // Synthesize readings: encode (device, value) as device*1000 + value
  // with value in [0, 1000). Device 13 is running hot.
  support::SplitMix64 Rng(7);
  std::vector<double> Readings;
  Readings.reserve(N);
  for (size_t I = 0; I != N; ++I) {
    std::int64_t Device = static_cast<std::int64_t>(Rng.nextBelow(
        static_cast<std::uint64_t>(NumDevices)));
    double Base = Device == 13 ? 700.0 : 400.0;
    double Value = Base + 80.0 * Rng.nextGaussian();
    Value = std::min(std::max(Value, 0.0), 999.0);
    Readings.push_back(static_cast<double>(Device) * 1000.0 + Value);
  }

  using namespace steno::expr;
  using namespace steno::expr::dsl;
  auto X = param("x", Type::doubleTy());
  auto A = param("a", Type::pairTy(Type::doubleTy(), Type::int64Ty()));
  auto KK = param("k", Type::int64Ty());
  auto Row = param("r", Type::pairTy(Type::int64Ty(), Type::doubleTy()));

  // Per-device mean temperature of the *hot* readings (> 500), devices
  // with at least 100 hot readings (HAVING), hottest devices first.
  query::Query Q =
      query::Query::doubleArray(0)
          .where(lambda({X}, X % 1000.0 > 500.0))
          .groupByAggregate(
              lambda({X}, toInt64(X / 1000.0)),
              pair(E(0.0), E(0)),
              lambda({A, X}, pair(A.first() + X % 1000.0,
                                  A.second() + 1)),
              lambda({KK, A},
                     cond(A.second() >= 100,
                          pair(KK, A.first() / toDouble(A.second())),
                          pair(E(-1), E(0.0)))))
          .where(lambda({Row}, Row.first() >= 0))
          .orderBy(lambda({Row}, -Row.second()))
          .take(E(5));

  CompiledQuery CQ = compileQuery(Q, {});
  std::printf("QUIL: %s\n", CQ.chain().symbols().c_str());
  std::printf("compiled in %.0f ms; generated %zu lines of loop code\n\n",
              CQ.compileMillis(),
              static_cast<size_t>(std::count(
                  CQ.generatedSource().begin(),
                  CQ.generatedSource().end(), '\n')));

  Bindings B;
  B.bindDoubleArray(0, Readings.data(),
                    static_cast<std::int64_t>(Readings.size()));
  QueryResult R = CQ.run(B);

  std::printf("top-5 hottest devices (mean of readings > 500):\n");
  for (const Value &Entry : R.rows())
    std::printf("  device %2lld: mean %.1f\n",
                static_cast<long long>(Entry.first().asInt64()),
                Entry.second().asDouble());

  // Cross-check with the linq baseline.
  auto Check =
      linq::fromSpan(Readings.data(), Readings.size())
          .where([](double V) {
            return V - std::floor(V / 1000.0) * 1000.0 > 500.0;
          })
          .groupBy([](double V) {
            return static_cast<std::int64_t>(V / 1000.0);
          })
          .where([](const linq::Grouping<std::int64_t, double> &G) {
            return G.values().size() >= 100;
          })
          .select([](const linq::Grouping<std::int64_t, double> &G) {
            double Sum = 0;
            for (double V : G.values())
              Sum += V - std::floor(V / 1000.0) * 1000.0;
            return std::make_pair(
                G.key(), Sum / static_cast<double>(G.values().size()));
          })
          .orderByDescending(
              [](std::pair<std::int64_t, double> P) { return P.second; })
          .take(5)
          .toVector();

  bool Agrees = Check.size() == R.rows().size();
  for (size_t I = 0; Agrees && I != Check.size(); ++I)
    Agrees = Check[I].first == R.rows()[I].first().asInt64();
  std::printf("\nlinq baseline agrees: %s\n", Agrees ? "yes" : "NO");
  return Agrees ? 0 : 1;
}
