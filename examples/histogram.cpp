//===- examples/histogram.cpp - The "Group" workload (§7.1) ----*- C++ -*-===//
//
// The paper's Group microbenchmark as an application: draw values from a
// one-dimensional mixture of Gaussians, compute a binned histogram with a
// GroupBy whose per-group work is a fold — exactly the shape the §4.3
// GroupBy-Aggregate specialization turns into a one-pass, bag-free sink —
// and print it.
//
// Build & run:  ./build/examples/histogram [num_samples]
//
//===----------------------------------------------------------------------===//

#include "expr/Dsl.h"
#include "steno/Steno.h"
#include "support/Random.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace steno;

namespace {

/// Three-component mixture of Gaussians on [0, 60].
std::vector<double> sampleMixture(size_t N, std::uint64_t Seed) {
  support::SplitMix64 Rng(Seed);
  const double Means[] = {12.0, 30.0, 48.0};
  const double Sigmas[] = {3.0, 6.0, 2.0};
  const double Weights[] = {0.5, 0.3, 0.2};
  std::vector<double> Out;
  Out.reserve(N);
  while (Out.size() < N) {
    double U = Rng.nextDouble();
    int Comp = U < Weights[0] ? 0 : (U < Weights[0] + Weights[1] ? 1 : 2);
    double V = Means[Comp] + Sigmas[Comp] * Rng.nextGaussian();
    if (V >= 0.0 && V < 60.0)
      Out.push_back(V);
  }
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  size_t N = Argc > 1 ? static_cast<size_t>(std::atoll(Argv[1])) : 200000;
  std::vector<double> Samples = sampleMixture(N, 2026);

  // The histogram query: group by bin, count per bin, in query syntax:
  //   samples.GroupBy(x => (long)x)
  //          .Select(g => new { g.Key, Count = g.Count() })
  using namespace steno::expr;
  using namespace steno::expr::dsl;
  auto X = param("x", Type::doubleTy());
  auto G = param("g", Type::pairTy(Type::int64Ty(), Type::vecTy()));
  auto C = param("c", Type::int64Ty());
  auto V = param("v", Type::doubleTy());

  query::Query BagCount =
      query::Query::overVec(G.second())
          .aggregate(E(0), lambda({C, V}, C + 1),
                     lambda({C}, pair(G.first(), C)));
  query::Query Histogram = query::Query::doubleArray(0)
                               .groupBy(lambda({X}, toInt64(X)))
                               .selectNested(G, BagCount);

  CompiledQuery CQ = compileQuery(Histogram, {});
  std::printf("GroupBy-Aggregate specialization fired: %s\n",
              CQ.groupBySpecialized() ? "yes" : "no");
  std::printf("QUIL after optimization: %s\n\n",
              CQ.chain().symbols().c_str());

  Bindings B;
  B.bindDoubleArray(0, Samples.data(),
                    static_cast<std::int64_t>(Samples.size()));
  QueryResult R = CQ.run(B);

  // Sort rows by bin for display (rows arrive in first-appearance order).
  std::vector<std::pair<std::int64_t, std::int64_t>> Rows;
  for (const Value &Row : R.rows())
    Rows.emplace_back(Row.first().asInt64(), Row.second().asInt64());
  std::sort(Rows.begin(), Rows.end());

  std::int64_t MaxCount = 1;
  for (const auto &[Bin, Count] : Rows)
    MaxCount = std::max(MaxCount, Count);

  std::printf("histogram of %zu mixture-of-Gaussians samples:\n", N);
  for (const auto &[Bin, Count] : Rows) {
    int Stars = static_cast<int>(60.0 * static_cast<double>(Count) /
                                 static_cast<double>(MaxCount));
    std::printf("%4lld | %-60.*s %lld\n", static_cast<long long>(Bin),
                Stars,
                "************************************************************",
                static_cast<long long>(Count));
  }
  return 0;
}
